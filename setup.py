"""Setuptools shim for legacy editable installs (offline environments
without the ``wheel`` package can `pip install -e . --no-use-pep517`)."""

from setuptools import setup

setup()
