"""Perf trajectory across commits: ``repro perf-history``.

Every PR that runs the bench suite commits an updated
``benchmarks/reports/BENCH_perf.json``; each committed revision is one
measured point of the repo's performance history.  This module walks
``git log`` for that file, loads every revision's document, and renders
a per-cell trajectory table — wall-clock and throughput per commit — so
perf wins and regressions are visible as data instead of anecdotes.

Ratios compare each revision against the *previous comparable* one:
scale-dependent cells only compare at equal ``scale``, and every cell
skips the ratio when ``cpu_count`` changed (a 1-core baseline against
an 8-core runner says nothing about the code).  The working tree's
uncommitted document, when present and different from HEAD's, appears
as a final ``worktree`` row.
"""

from __future__ import annotations

import json
import subprocess
from dataclasses import dataclass
from pathlib import Path
from typing import Any

#: Repo-relative path of the committed perf document.
PERF_REL_PATH = "benchmarks/reports/BENCH_perf.json"

#: Cells comparable across REPRO_BENCH_SCALE values (mirrors
#: ``benchmarks.perf.SCALE_FREE_CELLS``; duplicated here so the installed
#: package does not import from the benchmarks tree).
SCALE_FREE_CELLS = frozenset({
    "net.message_throughput", "latency.sampling",
    "grid.steady_state", "rntree.churn_maintenance",
})


@dataclass
class PerfPoint:
    """One measured revision of the perf document."""

    rev: str           # full commit hash, or "worktree"
    date: str          # committer date (YYYY-MM-DD), or "now"
    subject: str       # first line of the commit message
    doc: dict[str, Any]

    @property
    def short(self) -> str:
        return self.rev[:9] if self.rev != "worktree" else "worktree"

    @property
    def scale(self) -> float | None:
        return self.doc.get("scale")

    @property
    def cpu_count(self) -> int | None:
        return self.doc.get("cpu_count")

    def cell(self, name: str) -> dict[str, float] | None:
        return self.doc.get("entries", {}).get(name)


def _git(repo: Path, *args: str) -> str:
    out = subprocess.run(["git", "-C", str(repo), *args],
                         capture_output=True, text=True, check=True)
    return out.stdout


def _throughput_metric(cell: dict[str, float]) -> str | None:
    """The cell's headline throughput key (the one ending ``_per_s``)."""
    for key in cell:
        if key.endswith("_per_s"):
            return key
    return None


def collect_history(repo: str | Path = ".",
                    rel_path: str = PERF_REL_PATH,
                    include_worktree: bool = True) -> list[PerfPoint]:
    """All committed revisions of the perf document, oldest first.

    Revisions that fail to parse or carry an unknown schema are skipped
    (the history walk must not die on a pre-schema commit).
    """
    repo = Path(repo)
    try:
        log = _git(repo, "log", "--format=%H|%cs|%s", "--", rel_path)
    except (subprocess.CalledProcessError, FileNotFoundError):
        return []
    points: list[PerfPoint] = []
    for line in reversed(log.splitlines()):
        rev, _, rest = line.partition("|")
        date, _, subject = rest.partition("|")
        try:
            blob = _git(repo, "show", f"{rev}:{rel_path}")
            doc = json.loads(blob)
        except (subprocess.CalledProcessError, json.JSONDecodeError):
            continue
        if doc.get("schema") != 1 or "entries" not in doc:
            continue
        points.append(PerfPoint(rev=rev, date=date, subject=subject, doc=doc))
    if include_worktree:
        wt = repo / rel_path
        if wt.is_file():
            try:
                doc = json.loads(wt.read_text())
            except json.JSONDecodeError:
                doc = None
            if doc is not None and doc.get("schema") == 1 \
                    and (not points or doc != points[-1].doc):
                points.append(PerfPoint(rev="worktree", date="now",
                                        subject="(uncommitted run)", doc=doc))
    return points


def comparable(prev: PerfPoint, cur: PerfPoint, cell: str) -> bool:
    """Whether a prev->cur throughput ratio is meaningful for ``cell``."""
    if prev.cpu_count != cur.cpu_count:
        return False
    if cell not in SCALE_FREE_CELLS and prev.scale != cur.scale:
        return False
    return prev.cell(cell) is not None and cur.cell(cell) is not None


def cell_names(points: list[PerfPoint]) -> list[str]:
    names: dict[str, None] = {}
    for p in points:
        names.update(dict.fromkeys(p.doc.get("entries", {})))
    return list(names)


def history_report(points: list[PerfPoint],
                   only_cell: str | None = None) -> str:
    """Per-cell trajectory tables across every measured revision."""
    from repro.metrics.report import format_table

    if not points:
        return (f"no committed revisions of {PERF_REL_PATH} found — run the "
                "bench suite (pytest benchmarks/test_bench_perf.py) and "
                "commit the report")
    parts = [f"perf history: {len(points)} measured revision(s) of "
             f"{PERF_REL_PATH}"]
    for cell in cell_names(points):
        if only_cell is not None and cell != only_cell:
            continue
        rows = []
        prev: PerfPoint | None = None
        for p in points:
            entry = p.cell(cell)
            if entry is None:
                continue  # cell absent at this revision; keep last point
            metric = _throughput_metric(entry)
            thr = entry.get(metric) if metric else None
            if prev is not None and comparable(prev, p, cell) and thr:
                prev_thr = prev.cell(cell).get(metric)
                ratio = f"{thr / prev_thr:.2f}x" if prev_thr else "-"
            else:
                ratio = "-"
            rows.append([
                p.short, p.date,
                p.scale if p.scale is not None else "-",
                p.cpu_count if p.cpu_count is not None else "-",
                round(entry.get("wall_s", float("nan")), 3),
                round(thr, 1) if thr is not None else "-",
                ratio,
                p.subject[:44],
            ])
            prev = p
        if rows:
            parts.append(format_table(
                ["rev", "date", "scale", "cpus", "wall (s)",
                 "throughput", "vs prev", "commit"],
                rows, title=f"cell: {cell}"))
    parts.append("(ratios are throughput vs the previous comparable "
                 "revision; '-' = scale or cpu_count changed, so the "
                 "comparison would be apples-to-oranges)")
    return "\n\n".join(parts)
