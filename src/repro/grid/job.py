"""Jobs: profiles, lifecycle state, and per-job accounting.

"A job in our system is the data and associated profile that describes a
computation to be performed" (§2).  The profile is the replicated,
immutable description (client, requirements, input location, size); the
:class:`Job` object adds the mutable lifecycle state the owner and run
node track, plus the timestamps the metrics layer turns into the paper's
wait-time figures.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from functools import cached_property

from repro.grid.resources import Vector
from repro.util.ids import guid_for


class JobState(enum.Enum):
    CREATED = "created"          # built, not yet injected
    SUBMITTED = "submitted"      # inserted at an injection node
    MATCHING = "matching"        # owner assigned, matchmaking in progress
    QUEUED = "queued"            # in a run node's FIFO queue
    RUNNING = "running"          # executing on the run node
    COMPLETED = "completed"      # results returned to the client
    FAILED = "failed"            # permanently failed (sandbox kill / no match)
    LOST = "lost"                # both owner and run node died; client must resubmit


#: States from which a job can still make progress.
ACTIVE_STATES = frozenset(
    {JobState.SUBMITTED, JobState.MATCHING, JobState.QUEUED, JobState.RUNNING}
)


@dataclass(frozen=True)
class JobProfile:
    """The immutable, replicated job description (§2).

    ``work`` is the job's computational demand in seconds on a reference
    node; actual execution time may scale with the run node's CPU level
    when the grid is configured for heterogeneous speed
    (:attr:`repro.grid.system.GridConfig.scale_runtime_by_cpu`).
    """

    name: str
    client_id: int
    requirements: Vector
    work: float
    input_size_kb: float = 4.0
    output_size_kb: float = 4.0

    def __post_init__(self) -> None:
        if self.work <= 0:
            raise ValueError("work must be positive")
        if self.input_size_kb < 0 or self.output_size_kb < 0:
            raise ValueError("I/O sizes must be non-negative")

    @cached_property
    def guid(self) -> int:
        # sha1-derived and immutable, but probed on every heartbeat, ack,
        # and dispatch — computed once per profile instead of per access.
        # (cached_property writes to __dict__ directly, which a frozen
        # dataclass permits; the name field it hashes can never change.)
        return guid_for(self.name)


@dataclass(slots=True)
class Job:
    """Mutable job lifecycle state.

    ``slots=True`` matters at scale: a 10k-node workload carries tens of
    thousands of live Job objects, and the per-instance ``__dict__`` —
    which materializes (un-shares) the moment any attribute outside the
    ``__init__`` footprint is added — costs more than the fields
    themselves.  The JobTable back-references below are declared as
    fields for the same reason.
    """

    # Columnar-mirror back-references: the owning JobTable and this job's
    # row in it (set by JobTable.register; None/-1 outside any grid).
    # ``default_factory`` + ``init=False`` makes the generated __init__
    # assign them on every instance (a plain default would stay a class
    # attribute, which slots forbid); declared first because the ``state``
    # property setter reads them, and __init__ assigns in field order.
    _jt: object = field(default_factory=lambda: None, init=False,
                        repr=False, compare=False)
    _jt_idx: int = field(default_factory=lambda: -1, init=False,
                         repr=False, compare=False)

    profile: JobProfile
    state: JobState = JobState.CREATED
    attempt: int = 0             # client submissions (resubmission increments)
    executions: int = 0          # times execution started (re-matches included)

    # Timestamps (virtual seconds); NaN until the event happens.
    submit_time: float = math.nan
    owner_time: float = math.nan     # owner received the job
    match_time: float = math.nan     # run node chosen
    enqueue_time: float = math.nan   # entered the run node's FIFO queue
    start_time: float = math.nan     # began executing (last execution)
    finish_time: float = math.nan    # results returned to the client

    # Placement (GUIDs); None until assigned.
    owner_id: int | None = None
    run_node_id: int | None = None

    # Matchmaking cost accounting (accumulated over re-matches).
    owner_route_hops: int = 0
    match_hops: int = 0
    match_probes: int = 0
    pushes: int = 0

    # Recovery accounting.
    run_node_failures: int = 0
    owner_failures: int = 0

    result: object = None
    failure_reason: str | None = None

    extra: dict = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.profile.name

    @property
    def guid(self) -> int:
        return self.profile.guid

    @property
    def wait_time(self) -> float:
        """The paper's headline metric: submission -> first byte of CPU."""
        return self.start_time - self.submit_time

    @property
    def turnaround(self) -> float:
        return self.finish_time - self.submit_time

    @property
    def is_done(self) -> bool:
        return self.state in (JobState.COMPLETED, JobState.FAILED)

    @property
    def is_terminal(self) -> bool:
        """Done *or* abandoned by the client (LOST).  LOST is terminal
        for the protocol — no node may revive an abandoned job, or the
        overwritten state un-settles the drain check — but it is not
        ``is_done``: the client counts it separately."""
        return self.is_done or self.state is JobState.LOST

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Job({self.name!r}, {self.state.value}, attempt={self.attempt})"


# --- columnar mirror hooks (see repro.grid.jobtable) -----------------------
#
# ``state`` and ``owner_id`` are converted to properties *after* the
# dataclass machinery has generated __init__/__eq__/__repr__, so every
# assignment — including the generated __init__'s — routes through the
# setter and keeps the grid's JobTable columns exact.  A job outside any
# grid (unit tests, builders) has ``_jt is None`` and pays only the
# attribute store.  Storage stays in the original slots (captured member
# descriptors below), so no extra per-instance attribute is introduced.

_STATE_SLOT = Job.state
_OWNER_SLOT = Job.owner_id


def _state_get(self: Job) -> JobState:
    return _STATE_SLOT.__get__(self, Job)


def _state_set(self: Job, value: JobState) -> None:
    _STATE_SLOT.__set__(self, value)
    jt = self._jt
    if jt is not None:
        jt.note_state(self._jt_idx, value)


def _owner_get(self: Job) -> int | None:
    return _OWNER_SLOT.__get__(self, Job)


def _owner_set(self: Job, value: int | None) -> None:
    _OWNER_SLOT.__set__(self, value)
    jt = self._jt
    if jt is not None:
        jt.note_owner(self._jt_idx, value)


Job.state = property(_state_get, _state_set)
Job.owner_id = property(_owner_get, _owner_set)
