"""Columnar job table: array-backed job-state mirror.

At 10k+ nodes the per-job Python objects (:class:`repro.grid.job.Job`
and the owners' :class:`repro.grid.node.JobRecord`\\ s) stay the
protocol's working state, but every whole-population consumer — the
drain check in :meth:`DesktopGrid.run_until_done`, the owners' monitor
staleness sweeps, timeline/load analytics — otherwise pays a per-record
Python loop per scan.  This table keeps the swept fields in dense numpy
columns, one row per injected job, updated at the same choke points
that mutate the objects:

* ``state``/``owner`` are *global* truth, fed by the ``Job.state`` /
  ``Job.owner_id`` property setters (installed in :mod:`repro.grid.job`)
  so no transition can bypass the mirror;
* ``run_node``/``last_heartbeat``/``deadline``/``probing`` mirror the
  **current owner's** :class:`JobRecord` via the owner-gated ``note_*``
  helpers called from :class:`GridNode`'s record write sites — a stale
  owner (healed after a partition) writing its dead record never touches
  the columns.

``check_consistency()`` is the tripwire: it re-derives every column from
the per-object truth and reports mismatches, so a new mutation path that
forgets its mirror fails the invariant suite instead of drifting
silently (same contract as :meth:`NodeRegistry.check_consistency`).

A ``settled`` counter (terminal rows) makes the drain check O(1), and
:meth:`all_clear` evaluates one owner's monitor sweep as a single array
mask — the scalar loop runs only when something is actually actionable,
so the common every-interval "nothing to do" sweep costs no per-record
Python work.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from repro.grid.job import Job, JobState

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.system import DesktopGrid

#: JobState -> int8 column code, declaration order.  Terminal states
#: (COMPLETED, FAILED, LOST) are declared last, so "settled" is one
#: comparison against the smallest terminal code.
STATE_CODE: dict[JobState, int] = {s: i for i, s in enumerate(JobState)}
#: Column code -> JobState (inverse of STATE_CODE).
CODE_STATE: list[JobState] = list(JobState)
_TERMINAL_MIN = STATE_CODE[JobState.COMPLETED]
assert _TERMINAL_MIN == min(
    STATE_CODE[s] for s in (JobState.COMPLETED, JobState.FAILED, JobState.LOST))


class JobTable:
    """Dense columnar view of per-job lifecycle state.

    Rows are appended by :meth:`register` (one per injected job, in
    injection order); columns grow geometrically.  ``owner`` and
    ``run_node`` store *dense registry indices* (``node_list`` order,
    ``-1`` for none) rather than GUIDs — GUIDs are sha1-scale integers
    that do not fit an int64 column, and the dense index is what the
    vectorized consumers join against :class:`NodeRegistry` columns.
    """

    __slots__ = ("jobs", "n", "state", "owner", "run_node",
                 "last_heartbeat", "deadline", "probing", "settled",
                 "_node_index", "_timeout")

    def __init__(self, node_index: dict[int, int], hb_timeout: float,
                 capacity: int = 1024):
        #: node GUID -> dense registry index (NodeRegistry.index).
        self._node_index = node_index
        #: Monitor staleness threshold (heartbeat_interval x miss_limit);
        #: ``deadline`` is always ``last_heartbeat + _timeout``.
        self._timeout = float(hb_timeout)
        self.jobs: list[Job] = []          # row -> Job (check_consistency)
        self.n = 0
        self.settled = 0                   # rows in a terminal state
        cap = max(int(capacity), 1)
        self.state = np.zeros(cap, dtype=np.int8)
        self.owner = np.full(cap, -1, dtype=np.int32)
        self.run_node = np.full(cap, -1, dtype=np.int32)
        self.last_heartbeat = np.full(cap, np.nan, dtype=np.float64)
        self.deadline = np.full(cap, np.inf, dtype=np.float64)
        self.probing = np.zeros(cap, dtype=bool)

    def __len__(self) -> int:
        return self.n

    # -- registration ------------------------------------------------------

    def _grow(self) -> None:
        cap = len(self.state) * 2
        for name in ("state", "owner", "run_node", "last_heartbeat",
                     "deadline", "probing"):
            old = getattr(self, name)
            new = np.empty(cap, dtype=old.dtype)
            new[:self.n] = old[:self.n]
            setattr(self, name, new)

    def register(self, job: Job) -> int:
        """Assign ``job`` a row (idempotent; injection is the sole caller)."""
        if job._jt is self:
            return job._jt_idx
        i = self.n
        if i == len(self.state):
            self._grow()
        self.n = i + 1
        self.jobs.append(job)
        code = STATE_CODE[job.state]
        self.state[i] = code
        if code >= _TERMINAL_MIN:
            self.settled += 1
        self.owner[i] = -1 if job.owner_id is None \
            else self._node_index.get(job.owner_id, -1)
        self.run_node[i] = -1
        self.last_heartbeat[i] = math.nan
        self.deadline[i] = math.inf
        self.probing[i] = False
        job._jt = self
        job._jt_idx = i
        return i

    # -- global-truth hooks (driven by the Job property setters) ----------

    def note_state(self, idx: int, value: JobState) -> None:
        code = STATE_CODE[value]
        state = self.state
        old = int(state[idx])
        state[idx] = code
        self.settled += (code >= _TERMINAL_MIN) - (old >= _TERMINAL_MIN)

    def note_owner(self, idx: int, owner_id: int | None) -> None:
        self.owner[idx] = -1 if owner_id is None \
            else self._node_index.get(owner_id, -1)

    # -- owner-gated record mirrors (called from GridNode write sites) ----
    #
    # Each gate is ``job.owner_id == owner_id``: only the *current* owner's
    # JobRecord is reflected; a stale owner replaying a dead record (healed
    # partition, late rpc) mutates its own object but not the columns.

    def note_record(self, job: Job, owner_id: int,
                    run_node_id: int | None, last_heartbeat: float) -> None:
        if job._jt is not self or job.owner_id != owner_id:
            return
        i = job._jt_idx
        self.run_node[i] = -1 if run_node_id is None \
            else self._node_index.get(run_node_id, -1)
        self.last_heartbeat[i] = last_heartbeat
        self.deadline[i] = last_heartbeat + self._timeout

    def note_heartbeat(self, job: Job, owner_id: int, now: float) -> None:
        if job._jt is not self or job.owner_id != owner_id:
            return
        i = job._jt_idx
        self.last_heartbeat[i] = now
        self.deadline[i] = now + self._timeout

    def note_probing(self, job: Job, owner_id: int, flag: bool) -> None:
        if job._jt is not self or job.owner_id != owner_id:
            return
        self.probing[job._jt_idx] = flag

    # -- vectorized consumers ---------------------------------------------

    @property
    def all_settled(self) -> bool:
        """O(1) drain check: every registered job reached a terminal state."""
        return self.settled == self.n

    def all_clear(self, rows: np.ndarray, owner_idx: int,
                  now: float) -> bool:
        """One owner's monitor sweep as an array mask.

        True iff the scalar sweep over these rows would take no action:
        every row is non-terminal, still owned by ``owner_idx``, and
        either has no run node yet, is already being probed, or its
        heartbeat is fresh.  The staleness predicate is the exact
        negation of the scalar ``now - last_heartbeat > timeout`` (not a
        rearranged ``deadline`` comparison, which rounds differently).
        """
        state = self.state[rows]
        if (state >= _TERMINAL_MIN).any():
            return False
        if (self.owner[rows] != owner_idx).any():
            return False
        ok = ((self.run_node[rows] < 0) | self.probing[rows]
              | ~(now - self.last_heartbeat[rows] > self._timeout))
        return bool(ok.all())

    def state_counts(self) -> dict[JobState, int]:
        """Job count per lifecycle state, one bincount over the column."""
        counts = np.bincount(self.state[:self.n],
                             minlength=len(CODE_STATE))
        return {s: int(counts[i]) for i, s in enumerate(CODE_STATE)}

    # -- tripwire ----------------------------------------------------------

    def check_consistency(self, grid: "DesktopGrid") -> list[str]:
        """Compare every column against the per-object truth (test hook).

        ``state``/``owner`` must always match the Job; the record-mirror
        columns are compared against the *current* owner's live
        JobRecord when one exists for a non-terminal job (after a crash
        or mid-handoff there is no authoritative record and the columns
        legitimately hold the last owner's final values).  Returns
        human-readable mismatch descriptions — empty means exact.
        """
        problems: list[str] = []
        index = self._node_index
        settled = 0
        for i, job in enumerate(self.jobs):
            code = STATE_CODE[job.state]
            if code >= _TERMINAL_MIN:
                settled += 1
            if int(self.state[i]) != code:
                problems.append(f"state[{i}] ({job.name}): "
                                f"{int(self.state[i])} != {code}")
            owner_idx = -1 if job.owner_id is None \
                else index.get(job.owner_id, -1)
            if int(self.owner[i]) != owner_idx:
                problems.append(f"owner[{i}] ({job.name}): "
                                f"{int(self.owner[i])} != {owner_idx}")
            if job._jt is not self or job._jt_idx != i:
                problems.append(f"row {i} ({job.name}): back-reference "
                                f"mismatch (idx={job._jt_idx})")
            owner = grid.nodes.get(job.owner_id) \
                if job.owner_id is not None else None
            rec = owner.owned.get(job.guid) if owner is not None else None
            if rec is None or rec.job is not job or job.is_terminal:
                continue
            run_idx = -1 if rec.run_node_id is None \
                else index.get(rec.run_node_id, -1)
            if int(self.run_node[i]) != run_idx:
                problems.append(f"run_node[{i}] ({job.name}): "
                                f"{int(self.run_node[i])} != {run_idx}")
            lh = float(self.last_heartbeat[i])
            if not (lh == rec.last_heartbeat
                    or (math.isnan(lh) and math.isnan(rec.last_heartbeat))):
                problems.append(f"last_heartbeat[{i}] ({job.name}): "
                                f"{lh} != {rec.last_heartbeat}")
            dl = float(self.deadline[i])
            want_dl = rec.last_heartbeat + self._timeout
            if not (dl == want_dl or (math.isnan(dl) and math.isnan(want_dl))):
                problems.append(f"deadline[{i}] ({job.name}): "
                                f"{dl} != {want_dl}")
            if bool(self.probing[i]) != rec.probing:
                problems.append(f"probing[{i}] ({job.name}): "
                                f"{bool(self.probing[i])} != {rec.probing}")
        if settled != self.settled:
            problems.append(f"settled counter: {self.settled} != {settled}")
        return problems
