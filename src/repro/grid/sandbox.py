"""Simulated secure-execution sandbox (paper §5).

The paper prescribes process-containment policies for run nodes: jobs may
not read/write outside a prescribed set of files, may not access the
network, and are subject to "generalized quotas to limit overall job
resource usage (e.g., disk space), to minimize the effects of malicious or
runaway jobs".  We implement the *policy-enforcement logic* those
mechanisms provide: a :class:`SandboxPolicy` is evaluated when a job
starts (admission checks) and when it finishes (output quota), and a
violation kills the job, which is exactly the effect containment has on
the grid layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.grid.job import JobProfile


class SandboxViolation(Exception):
    """A job violated its run node's sandbox policy."""

    def __init__(self, rule: str, detail: str):
        super().__init__(f"{rule}: {detail}")
        self.rule = rule
        self.detail = detail


@dataclass(frozen=True)
class SandboxPolicy:
    """Containment policy enforced by every run node.

    Attributes
    ----------
    allow_network:
        The paper constrains jobs "to not be able to access the network";
        profiles that declare a network dependency are rejected on start.
    disk_quota_kb:
        Maximum total disk footprint (input staged + output produced).
    output_quota_kb:
        Maximum output size; "all output produced is stored on the node
        executing the job until the job terminates", so the node checks the
        produced size before accepting termination.
    max_runtime_factor:
        Runaway-job guard: a job is killed if its execution exceeds
        ``max_runtime_factor *`` its declared work (None disables).
    """

    allow_network: bool = False
    disk_quota_kb: float = 1024.0
    output_quota_kb: float = 512.0
    max_runtime_factor: float | None = 10.0

    def check_admission(self, profile: JobProfile,
                        needs_network: bool = False) -> None:
        """Checks applied before the job starts executing."""
        if needs_network and not self.allow_network:
            raise SandboxViolation("network", f"job {profile.name} requires network access")
        if profile.input_size_kb > self.disk_quota_kb:
            raise SandboxViolation(
                "disk-quota",
                f"input {profile.input_size_kb} KB exceeds quota {self.disk_quota_kb} KB",
            )

    def check_completion(self, profile: JobProfile,
                         produced_kb: float | None = None) -> None:
        """Checks applied when the job terminates (output is local until then)."""
        produced = profile.output_size_kb if produced_kb is None else produced_kb
        if produced > self.output_quota_kb:
            raise SandboxViolation(
                "output-quota",
                f"output {produced} KB exceeds quota {self.output_quota_kb} KB",
            )
        if profile.input_size_kb + produced > self.disk_quota_kb:
            raise SandboxViolation(
                "disk-quota",
                f"footprint {profile.input_size_kb + produced} KB exceeds "
                f"quota {self.disk_quota_kb} KB",
            )

    def runtime_limit(self, profile: JobProfile) -> float | None:
        """Wall-clock kill limit for a job, or None when disabled."""
        if self.max_runtime_factor is None:
            return None
        return self.max_runtime_factor * profile.work
