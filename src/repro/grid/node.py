"""Grid nodes: the combined runner/owner protocol machine.

Every participant can simultaneously play both §2 roles:

* **Run node** — executes jobs from a FIFO queue one at a time, sends a
  per-job heartbeat to each job's owner while the job is queued or
  running ("the run node must generate heartbeat messages for every job in
  its job queue, including jobs that are not yet running"), returns the
  result directly to the client, and watches heartbeat *acks* to detect a
  dead owner, in which case it re-inserts the job profile into the DHT to
  recruit a replacement owner.
* **Owner node** — monitors every job mapped to it, re-runs matchmaking
  when a run node's heartbeats stop, and relays status to the client.

All control traffic uses direct network messages (the paper: "we employ a
direct connection between the run node and the owner node ... rather than
using the P2P network routing mechanism").
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.grid.job import Job, JobState
from repro.grid.resources import Vector
from repro.grid.sandbox import SandboxViolation
from repro.sim.kernel import EventHandle
from repro.sim.network import Message
from repro.sim.process import PeriodicTask
from repro.util.ids import guid_for

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.system import DesktopGrid


class OwnedJob:
    """Owner-side monitoring record for one job (profile replica + liveness)."""

    __slots__ = ("job", "run_node_id", "last_heartbeat")

    def __init__(self, job: Job, run_node_id: int | None, now: float):
        self.job = job
        self.run_node_id = run_node_id
        self.last_heartbeat = now


class GridNode:
    """One desktop-grid participant (network endpoint + protocol state)."""

    def __init__(self, name: str, capability: Vector, grid: "DesktopGrid"):
        self.name = name
        self.node_id = guid_for(name)
        self.capability = capability
        self.grid = grid
        self._alive = True

        # Runner state.
        self.queue: deque[Job] = deque()
        self.running: Job | None = None
        self._completion: EventHandle | None = None
        self._last_ack: dict[int, float] = {}  # job guid -> last owner ack

        # Owner state.
        self.owned: dict[int, OwnedJob] = {}   # job guid -> record

        # Periodic protocol tasks (created lazily when heartbeats are on).
        self._hb_task: PeriodicTask | None = None
        self._monitor_task: PeriodicTask | None = None

        # Lifetime accounting.
        self.jobs_executed = 0
        self.busy_time = 0.0
        #: Per-client CPU seconds served here (fair-share discipline state).
        self.client_service: dict[int, float] = {}

    # ------------------------------------------------------------------
    # endpoint interface
    # ------------------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def queue_len(self) -> int:
        """Load metric: queued jobs plus the running one."""
        return len(self.queue) + (1 if self.running is not None else 0)

    def handle_message(self, msg: Message) -> None:
        handler = self._HANDLERS.get(msg.kind)
        if handler is None:
            raise ValueError(f"unknown message kind {msg.kind!r}")
        handler(self, msg)

    # ------------------------------------------------------------------
    # owner role
    # ------------------------------------------------------------------

    def owner_receive(self, job: Job, route_hops: int) -> None:
        """The DHT mapped ``job`` to this node; become its owner (§2 step 3)."""
        sim = self.grid.sim
        job.owner_id = self.node_id
        job.owner_time = sim.now
        job.owner_route_hops += route_hops
        job.state = JobState.MATCHING
        self.owned[job.guid] = OwnedJob(job, None, sim.now)
        tel = self.grid.telemetry
        if tel.enabled:
            tel.bus.end_span(job.extra.pop("tel_insert", None), sim.now,
                             owner=self.name, hops=route_hops)
            job.extra["tel_match"] = tel.bus.begin_span(
                sim.now, "job.match", parent=job.extra.get("tel_job"),
                job=job.name, owner=self.name)
        self._ensure_owner_tasks()
        self._match_and_dispatch(job, retries_left=self.grid.cfg.match_retries)

    def _match_and_dispatch(self, job: Job, retries_left: int) -> None:
        """Run the matchmaker and ship the job to the chosen run node."""
        if job.is_done or not self._alive:
            return
        result = self.grid.matchmaker.find_run_node(self, job)
        job.match_hops += result.hops
        job.match_probes += result.probes
        job.pushes += result.pushes
        cfg = self.grid.cfg
        tel = self.grid.telemetry
        if tel.enabled:
            tel.note_match(self.grid.matchmaker.name, result.hops,
                           result.probes, result.pushes,
                           found=result.node is not None)
        if result.node is None:
            if retries_left > 0:
                self.grid.sim.schedule(
                    cfg.match_retry_backoff, self._match_and_dispatch,
                    job, retries_left - 1,
                )
            else:
                self._owner_fail_job(job, "no satisfying node found")
            return
        job.match_time = self.grid.sim.now
        job.run_node_id = result.node.node_id
        self.grid.trace.record(self.grid.sim.now, "match", job=job.name,
                               run_node=result.node.name,
                               hops=result.hops, probes=result.probes)
        if tel.enabled:
            tel.bus.end_span(job.extra.pop("tel_match", None),
                             self.grid.sim.now, run_node=result.node.name,
                             hops=result.hops, probes=result.probes)
        rec = self.owned.get(job.guid)
        if rec is not None:
            rec.run_node_id = result.node.node_id
            rec.last_heartbeat = self.grid.sim.now
        # Matchmaking consumed overlay hops and candidate probes; charge
        # their latency before the job lands in the run node's queue.
        delay = self.grid.match_delay(result)
        self.grid.sim.schedule(delay, self._dispatch, job, result.node.node_id,
                               retries_left)

    def _dispatch(self, job: Job, run_node_id: int, retries_left: int) -> None:
        if job.is_done or not self._alive:
            return
        self.grid.network.send("assign", self.node_id, run_node_id, job)

    def _owner_fail_job(self, job: Job, reason: str) -> None:
        job.state = JobState.FAILED
        job.failure_reason = reason
        self.owned.pop(job.guid, None)
        self.grid.network.send("result", self.node_id, job.profile.client_id, job)

    def _on_heartbeat(self, msg: Message) -> None:
        job_guid, run_node_id = msg.payload
        rec = self.owned.get(job_guid)
        if rec is None:
            # We may be a freshly recruited owner (or recovered node) that
            # lost the record; re-adopt if we are this job's current owner.
            job = self.grid.jobs.get(job_guid)
            if job is None or job.is_done or job.owner_id != self.node_id:
                return  # stale heartbeat; no ack, runner will recover
            rec = OwnedJob(job, run_node_id, self.grid.sim.now)
            self.owned[job_guid] = rec
            self._ensure_owner_tasks()
        rec.run_node_id = run_node_id
        rec.last_heartbeat = self.grid.sim.now
        self.grid.network.send("hb-ack", self.node_id, run_node_id, job_guid)
        if self.grid.cfg.relay_status_to_client:
            self.grid.network.send("status", self.node_id,
                                   rec.job.profile.client_id, job_guid)

    def _on_complete(self, msg: Message) -> None:
        self.owned.pop(msg.payload, None)

    def _on_adopt(self, msg: Message) -> None:
        """A run node detected our predecessor's death and recruited us."""
        job = msg.payload
        if job.is_done:
            return
        job.owner_id = self.node_id
        self.owned[job.guid] = OwnedJob(job, job.run_node_id, self.grid.sim.now)
        self._ensure_owner_tasks()

    def _monitor_owned(self) -> None:
        """Periodic owner sweep: re-match jobs whose run node went silent."""
        if not self._alive:
            return
        cfg = self.grid.cfg
        now = self.grid.sim.now
        timeout = cfg.heartbeat_interval * cfg.heartbeat_miss_limit
        for rec in list(self.owned.values()):
            job = rec.job
            if job.is_done:
                self.owned.pop(job.guid, None)
                continue
            if rec.run_node_id is None:
                continue  # matchmaking still in flight
            if now - rec.last_heartbeat > timeout:
                run_node = self.grid.nodes.get(rec.run_node_id)
                still_there = (
                    run_node is not None and run_node.alive
                    and run_node._has_job(job)
                )
                if still_there:
                    # Heartbeats delayed, not dead; keep waiting.  (A real
                    # owner can't see this, but its next heartbeat would
                    # arrive before any recovery message round-trip anyway.)
                    continue
                job.run_node_failures += 1
                self.grid.trace.record(now, "recovery", kind="run-node",
                                       job=job.name)
                job.state = JobState.MATCHING
                job.run_node_id = None
                rec.run_node_id = None
                rec.last_heartbeat = now
                self.grid.metrics.on_recovery("run-node", job)
                self._match_and_dispatch(job, retries_left=cfg.match_retries)

    def _ensure_owner_tasks(self) -> None:
        cfg = self.grid.cfg
        if not cfg.heartbeats_enabled or self._monitor_task is not None:
            return
        self._monitor_task = PeriodicTask(
            self.grid.sim, cfg.heartbeat_interval, self._monitor_owned,
            rng=self.grid.rng_protocol, jitter=0.1,
        )

    # ------------------------------------------------------------------
    # runner role
    # ------------------------------------------------------------------

    def _on_assign(self, msg: Message) -> None:
        job: Job = msg.payload
        if job.is_done or job.run_node_id != self.node_id:
            return  # superseded assignment (owner re-matched elsewhere)
        if self._has_job(job):
            return  # duplicate delivery
        job.state = JobState.QUEUED
        job.enqueue_time = self.grid.sim.now
        self._last_ack[job.guid] = self.grid.sim.now
        tel = self.grid.telemetry
        if tel.enabled:
            job.extra["tel_queue"] = tel.bus.begin_span(
                self.grid.sim.now, "job.queue",
                parent=job.extra.get("tel_job"), job=job.name,
                node=self.name, depth=self.queue_len + 1)
        self.queue.append(job)
        self.grid.on_queue_change(self)
        self._ensure_runner_tasks()
        self._maybe_start()

    def _has_job(self, job: Job) -> bool:
        return job is self.running or job in self.queue

    def _pop_next_job(self) -> Job:
        """Select the next job per the configured queue discipline."""
        if self.grid.cfg.queue_discipline == "fair-share" and len(self.queue) > 1:
            # Least locally-served client first; FIFO inside a client (the
            # scan is fine: queues hold at most tens of jobs).
            best_i = 0
            best_served = self.client_service.get(
                self.queue[0].profile.client_id, 0.0)
            for i in range(1, len(self.queue)):
                served = self.client_service.get(
                    self.queue[i].profile.client_id, 0.0)
                if served < best_served:
                    best_i, best_served = i, served
            if best_i:
                self.queue.rotate(-best_i)
                job = self.queue.popleft()
                self.queue.rotate(best_i)
                return job
        return self.queue.popleft()

    def _maybe_start(self) -> None:
        if self.running is not None or not self.queue:
            return
        job = self._pop_next_job()
        if job.is_done or job.run_node_id != self.node_id:
            self.grid.on_queue_change(self)
            self._maybe_start()
            return
        try:
            self.grid.cfg.sandbox.check_admission(
                job.profile, needs_network=bool(job.extra.get("needs_network")))
        except SandboxViolation as exc:
            self._fail_job(job, f"sandbox: {exc}")
            self._maybe_start()
            return
        self.running = job
        job.state = JobState.RUNNING
        job.start_time = self.grid.sim.now
        job.executions += 1
        self.grid.trace.record(self.grid.sim.now, "start", job=job.name,
                               node=self.name, wait=job.wait_time)
        tel = self.grid.telemetry
        if tel.enabled:
            tel.bus.end_span(job.extra.pop("tel_queue", None),
                             self.grid.sim.now, node=self.name)
            job.extra["tel_run"] = tel.bus.begin_span(
                self.grid.sim.now, "job.run",
                parent=job.extra.get("tel_job"), job=job.name, node=self.name)
        duration = self.execution_time(job)
        # Staging: input before, output after, over the configured link.
        # KB-scale I/O (the paper's workloads) makes this negligible; it is
        # the knob for studying I/O-heavier jobs.
        staging = (job.profile.input_size_kb + job.profile.output_size_kb) \
            / self.grid.cfg.staging_bandwidth_kbps
        limit = self.grid.cfg.sandbox.runtime_limit(job.profile)
        if limit is not None and duration > limit:
            # Runaway guard: the job will be killed at the limit.
            self._completion = self.grid.sim.schedule(
                limit, self._finish_running, job, "sandbox: runtime limit exceeded")
        else:
            self._completion = self.grid.sim.schedule(
                duration + staging, self._finish_running, job, None)

    def execution_time(self, job: Job) -> float:
        """Wall-clock execution time of ``job`` on this node."""
        cfg = self.grid.cfg
        if cfg.scale_runtime_by_cpu:
            speed = self.capability[cfg.cpu_dim] / cfg.reference_cpu_level
            return job.profile.work / max(speed, 1e-9)
        return job.profile.work

    def _finish_running(self, job: Job, failure: str | None) -> None:
        self._completion = None
        self.running = None
        self.jobs_executed += 1
        served = self.grid.sim.now - job.start_time
        self.busy_time += served
        cid = job.profile.client_id
        self.client_service[cid] = self.client_service.get(cid, 0.0) + served
        if failure is None:
            try:
                self.grid.cfg.sandbox.check_completion(job.profile)
            except SandboxViolation as exc:
                failure = f"sandbox: {exc}"
        tel = self.grid.telemetry
        if tel.enabled:
            tel.bus.end_span(job.extra.pop("tel_run", None), self.grid.sim.now,
                             node=self.name, failure=failure)
            tel.metrics.counter("jobs.executed").inc()
        if failure is not None:
            self._fail_job(job, failure)
        else:
            job.result = job.extra.get("result_payload", f"output:{job.name}")
            if job.owner_id is not None:
                self.grid.network.send("complete", self.node_id, job.owner_id,
                                       job.guid)
            self._return_result(job)
        self._last_ack.pop(job.guid, None)
        self.grid.on_queue_change(self)
        self._maybe_start()

    def _return_result(self, job: Job) -> None:
        """§2 step 6: return the result to the client — inline, or (in
        pointer mode) stored into the matchmaker's DHT with replication and
        announced as a GUID pointer the client resolves."""
        if self.grid.cfg.result_return == "pointer":
            stored, hops = self.grid.matchmaker.store_result(job, job.result)
            if stored:
                job.extra["result_store_hops"] = hops
                # The store consumed overlay hops before the announcement
                # can go out; if we die in that window the result is still
                # in the DHT but unannounced — the client's watchdog covers
                # that, same as any lost message.
                self.grid.sim.schedule(self.grid.route_delay(hops),
                                       self._announce_pointer, job)
                return
        self.grid.network.send("result", self.node_id,
                               job.profile.client_id, job)

    def _announce_pointer(self, job: Job) -> None:
        if not self._alive:
            return
        self.grid.network.send("result-pointer", self.node_id,
                               job.profile.client_id, job)

    def _fail_job(self, job: Job, reason: str) -> None:
        job.state = JobState.FAILED
        job.failure_reason = reason
        if job.owner_id is not None:
            self.grid.network.send("complete", self.node_id, job.owner_id, job.guid)
        self.grid.network.send("result", self.node_id, job.profile.client_id, job)

    def _send_heartbeats(self) -> None:
        """One heartbeat per queued/running job (§2 step 5)."""
        jobs = list(self.queue)
        if self.running is not None:
            jobs.append(self.running)
        sent = 0
        for job in jobs:
            if job.owner_id is not None:
                self.grid.network.send("heartbeat", self.node_id, job.owner_id,
                                       (job.guid, self.node_id))
                sent += 1
        tel = self.grid.telemetry
        if sent and tel.enabled:
            tel.metrics.counter("heartbeats.sent").inc(sent)
            if tel.bus.wants("heartbeat"):
                tel.bus.record(self.grid.sim.now, "heartbeat",
                               node=self.name, jobs=sent)

    def _on_hb_ack(self, msg: Message) -> None:
        self._last_ack[msg.payload] = self.grid.sim.now

    def _watch_owner_acks(self) -> None:
        """Detect a dead owner: stale acks => re-insert the job profile into
        the DHT to recruit a replacement owner (§2 failure recovery)."""
        cfg = self.grid.cfg
        now = self.grid.sim.now
        timeout = cfg.heartbeat_interval * cfg.heartbeat_miss_limit
        jobs = list(self.queue)
        if self.running is not None:
            jobs.append(self.running)
        for job in jobs:
            last = self._last_ack.get(job.guid)
            if last is None or now - last <= timeout:
                continue
            job.owner_failures += 1
            self.grid.trace.record(now, "recovery", kind="owner",
                                   job=job.name)
            self.grid.metrics.on_recovery("owner", job)
            new_owner, hops = self.grid.matchmaker.find_owner(job, start=self)
            job.owner_route_hops += hops
            self._last_ack[job.guid] = now  # give the recruit time to answer
            if new_owner is None:
                continue  # overlay unreachable; retry next sweep
            job.owner_id = new_owner.node_id
            self.grid.network.send("adopt-owner", self.node_id,
                                   new_owner.node_id, job)

    def _ensure_runner_tasks(self) -> None:
        cfg = self.grid.cfg
        if not cfg.heartbeats_enabled or self._hb_task is not None:
            return
        self._hb_task = PeriodicTask(
            self.grid.sim, cfg.heartbeat_interval, self._runner_tick,
            rng=self.grid.rng_protocol, jitter=0.1,
        )

    def _runner_tick(self) -> None:
        if not self._alive or (not self.queue and self.running is None):
            return
        self._send_heartbeats()
        self._watch_owner_acks()

    # ------------------------------------------------------------------
    # failure / recovery
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Abrupt failure: all volatile state (queue, monitors) is lost."""
        if not self._alive:
            return
        self._alive = False
        if self._completion is not None:
            self._completion.cancel()
            self._completion = None
        self.queue.clear()
        self.running = None
        self.owned.clear()
        self._last_ack.clear()
        if self._hb_task is not None:
            self._hb_task.stop()
            self._hb_task = None
        if self._monitor_task is not None:
            self._monitor_task.stop()
            self._monitor_task = None
        self.grid.on_queue_change(self)

    def recover(self) -> None:
        """Rejoin with fresh, empty state (same identity and capability)."""
        if self._alive:
            return
        self._alive = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self._alive else "DOWN"
        return (f"GridNode({self.name!r}, {state}, cap={self.capability}, "
                f"q={self.queue_len})")


GridNode._HANDLERS = {
    "assign": GridNode._on_assign,
    "heartbeat": GridNode._on_heartbeat,
    "hb-ack": GridNode._on_hb_ack,
    "complete": GridNode._on_complete,
    "adopt-owner": GridNode._on_adopt,
}
