"""Grid nodes: the combined runner/owner protocol machine.

Every participant can simultaneously play both §2 roles:

* **Run node** — executes jobs from a FIFO queue one at a time, sends a
  per-job heartbeat to each job's owner while the job is queued or
  running ("the run node must generate heartbeat messages for every job in
  its job queue, including jobs that are not yet running"), returns the
  result directly to the client, and watches heartbeat *acks* to detect a
  dead owner, in which case it re-inserts the job profile into the DHT to
  recruit a replacement owner.
* **Owner node** — monitors every job mapped to it, re-runs matchmaking
  when a run node's heartbeats stop, and relays status to the client.

All control traffic uses direct network messages (the paper: "we employ a
direct connection between the run node and the owner node ... rather than
using the P2P network routing mechanism").
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

import numpy as np

from repro.grid.job import Job, JobState
from repro.grid.resources import Vector
from repro.grid.sandbox import SandboxViolation
from repro.match.base import MatchResult
from repro.match.select import CandidateSet, ProbeRound, oracle_select
from repro.sim.kernel import EventHandle
from repro.sim.network import Message
from repro.sim.process import PeriodicTask
from repro.util.ids import guid_for

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.system import DesktopGrid


class JobRecord:
    """Owner-side monitoring record for one job (profile replica + liveness).

    One record per owned job; the owner's monitor sweep reads all of a
    node's records in a single batch (one wheel timer per node, not one
    per job), so ``last_heartbeat`` staleness is still judged per job but
    timer cost scales with nodes, not with jobs.
    """

    __slots__ = ("job", "run_node_id", "last_heartbeat", "probing",
                 "speculated")

    def __init__(self, job: Job, run_node_id: int | None, now: float):
        self.job = job
        self.run_node_id = run_node_id
        self.last_heartbeat = now
        #: A liveness rpc to the run node is in flight (monitor sweep).
        self.probing = False
        #: A speculative clone was already launched for this job (the
        #: straggler knob fires at most once per owned record).
        self.speculated = False


#: Backward-compatible alias (pre-refactor name).
OwnedJob = JobRecord


class GridNode:
    """One desktop-grid participant (network endpoint + protocol state)."""

    def __init__(self, name: str, capability: Vector, grid: "DesktopGrid"):
        self.name = name
        self.node_id = guid_for(name)
        self.capability = capability
        self.grid = grid
        self._alive = True
        #: Dense index into the grid's columnar NodeRegistry (assigned by
        #: DesktopGrid after the population is built; -1 = unregistered).
        self._reg_idx = -1

        # Runner state.
        self.queue: deque[Job] = deque()
        self.running: Job | None = None
        self._completion: EventHandle | None = None
        self._last_ack: dict[int, float] = {}  # job guid -> last owner ack

        # Owner state.
        self.owned: dict[int, JobRecord] = {}   # job guid -> record
        #: Cached JobTable row indices for ``owned`` (the monitor sweep's
        #: vectorized all-clear check); rebuilt lazily whenever the owned
        #: dict's membership changes.
        self._mon_rows: "np.ndarray | None" = None
        self._mon_dirty = True

        # Periodic protocol tasks (created lazily when heartbeats are on).
        self._hb_task: PeriodicTask | None = None
        self._monitor_task: PeriodicTask | None = None

        # Lifetime accounting.
        self.jobs_executed = 0
        self.busy_time = 0.0
        #: Per-client CPU seconds served here (fair-share discipline state).
        self.client_service: dict[int, float] = {}

        # Cached telemetry counter + bus-filter flag for the heartbeat
        # send path (resolved on first use; every node shares the grid's
        # registry so these all point at the same Counter object).
        self._tel_hb_ctr = None
        self._tel_hb_wants: bool | None = None

    # ------------------------------------------------------------------
    # endpoint interface
    # ------------------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def queue_len(self) -> int:
        """Load metric: queued jobs plus the running one."""
        return len(self.queue) + (1 if self.running is not None else 0)

    def handle_message(self, msg: Message) -> None:
        handler = self._HANDLERS.get(msg.kind)
        if handler is None:
            raise ValueError(f"unknown message kind {msg.kind!r}")
        handler(self, msg)

    # ------------------------------------------------------------------
    # owner role
    # ------------------------------------------------------------------

    def owner_receive(self, job: Job, route_hops: int) -> None:
        """The DHT mapped ``job`` to this node; become its owner (§2 step 3)."""
        sim = self.grid.sim
        job.owner_id = self.node_id
        job.owner_time = sim.now
        job.owner_route_hops += route_hops
        job.state = JobState.MATCHING
        self.owned[job.guid] = JobRecord(job, None, sim.now)
        self._mon_dirty = True
        jt = self.grid.job_table
        if jt is not None:
            jt.note_record(job, self.node_id, None, sim.now)
        tel = self.grid.telemetry
        if tel.enabled:
            tel.bus.end_span(job.extra.pop("tel_insert", None), sim.now,
                             owner=self.name, hops=route_hops)
            job.extra["tel_match"] = tel.bus.begin_span(
                sim.now, "job.match", parent=job.extra.get("tel_job"),
                trace=job.guid, job=job.name, owner=self.name)
            if tel.flight is not None:
                tel.flight.note(self.node_id, sim.now, "owner-receive",
                                job=job.guid)
        self._ensure_owner_tasks()
        self._match_and_dispatch(job, retries_left=self.grid.cfg.match_retries)

    def _match_and_dispatch(self, job: Job, retries_left: int) -> None:
        """The two-phase matchmaking pipeline (see :mod:`repro.match.select`).

        Phase 1 — the matchmaker's structural :meth:`~repro.match.base.
        Matchmaker.search` returns candidates plus overlay hops.  Phase 2
        — probe/select/dispatch — runs either synchronously on oracle
        load reads (``probe_mode="oracle"``) or asynchronously over real
        rpc probes with timeouts (``probe_mode="rpc"``).
        """
        if job.is_terminal or not self._alive:
            return
        if job.owner_id != self.node_id:
            # Stale owner: a healed node replaying a pre-partition retry
            # chain for a job some other node now owns (the run node
            # recruited a replacement while we were dark).  Acting here
            # would double-manage the job; drop our record instead.
            if self.owned.pop(job.guid, None) is not None:
                self._mon_dirty = True
            return
        grid = self.grid
        tel = grid.telemetry
        if tel.enabled:
            # Re-matches (run-node loss, dispatch exhaustion, adoption)
            # arrive here without an open match span: open one so retry
            # chains show up as distinct job.match spans in the trace.
            mspan = job.extra.get("tel_match")
            if mspan is None:
                mspan = job.extra["tel_match"] = tel.bus.begin_span(
                    grid.sim.now, "job.match", parent=job.extra.get("tel_job"),
                    trace=job.guid, job=job.name, owner=self.name, retry=True)
            # Ambient context: DHT-route records emitted inside the
            # structural search join this job's causal tree.
            tel.trace_ctx = (job.guid,
                             mspan.span_id if mspan is not None else None)
            cset = grid.matchmaker.search(self, job)
            tel.trace_ctx = None
        else:
            cset = grid.matchmaker.search(self, job)
        job.match_hops += cset.hops
        job.pushes += cset.pushes
        if grid.cfg.probe_mode == "rpc":
            # Charge the structural search's latency up front, then probe
            # the candidates with real messages; selection completes when
            # every probe has replied or timed out.
            grid.sim.schedule(grid.route_delay(cset.hops + cset.pushes),
                              self._probe_candidates, job, cset, retries_left)
            return
        ranking, probes = oracle_select(grid, cset, grid.selection_policy,
                                        grid.streams["match"])
        job.match_probes += probes
        if tel.enabled:
            tel.note_match(grid.matchmaker.name, cset.hops, probes,
                           cset.pushes, found=bool(ranking))
        if not ranking:
            self._retry_match(job, retries_left)
            return
        result = MatchResult(grid.nodes[ranking[0]], hops=cset.hops,
                             probes=probes, pushes=cset.pushes)
        self._note_selected(job, result.node, cset.hops, probes)
        # Matchmaking consumed overlay hops and candidate probes; charge
        # their latency before the job lands in the run node's queue.
        delay = grid.match_delay(result)
        grid.sim.schedule(delay, self._dispatch, job, ranking)

    def _retry_match(self, job: Job, retries_left: int) -> None:
        """No candidate selected: back off and re-match, or fail the job."""
        if retries_left > 0:
            self.grid.sim.schedule(
                self.grid.cfg.match_retry_backoff, self._match_and_dispatch,
                job, retries_left - 1,
            )
        else:
            self._owner_fail_job(job, "no satisfying node found")

    def _note_selected(self, job: Job, node: "GridNode", hops: int,
                       probes: int) -> None:
        """Bookkeeping once phase 2 picked a run node."""
        now = self.grid.sim.now
        job.match_time = now
        job.run_node_id = node.node_id
        self.grid.trace.record(now, "match", job=job.name,
                               run_node=node.name, hops=hops, probes=probes)
        tel = self.grid.telemetry
        if tel.enabled:
            tel.bus.end_span(job.extra.pop("tel_match", None), now,
                             run_node=node.name, hops=hops, probes=probes)
            job.extra["tel_dispatch"] = tel.bus.begin_span(
                now, "job.dispatch", parent=job.extra.get("tel_job"),
                trace=job.guid, job=job.name, run_node=node.name)
        rec = self.owned.get(job.guid)
        if rec is not None:
            rec.run_node_id = node.node_id
            rec.last_heartbeat = now
            jt = self.grid.job_table
            if jt is not None:
                jt.note_record(job, self.node_id, node.node_id, now)

    # -- phase 2 in rpc mode: real probes, ranked selection ---------------

    def _probe_candidates(self, job: Job, cset: CandidateSet,
                          retries_left: int) -> None:
        """Fan out rpc load probes to the policy's chosen targets.

        A candidate that died after the structural search simply never
        answers: its probe times out and it drops out of the ranking —
        failure detection by message, not by oracle.
        """
        if job.is_done or not self._alive:
            return
        grid = self.grid
        targets = grid.selection_policy.probe_targets(
            cset.candidates, grid.streams["match"])
        if not targets:
            self._select_and_dispatch(job, cset, {}, (), retries_left)
            return
        job.match_probes += len(targets)
        tel = grid.telemetry
        trace = None
        round_ = ProbeRound(targets)
        if tel.enabled:
            tel.metrics.counter("match.probes.sent").inc(len(targets))
            # The probe fan-out gets its own span under the match span;
            # its id rides every probe rpc so the remote-side rpc.server
            # records parent under it, and the span closes when the last
            # probe settles (see _select_and_dispatch).
            round_.span = tel.bus.begin_span(
                grid.sim.now, "job.probe", parent=job.extra.get("tel_match"),
                trace=job.guid, job=job.name, targets=len(targets))
            if round_.span is not None:
                job.extra["tel_probe"] = round_.span
            trace = (job.guid, round_.span.span_id
                     if round_.span is not None else None)
        for nid in targets:
            grid.rpc.call(
                self.node_id, nid, "probe", job.guid,
                on_reply=lambda load, nid=nid: self._on_probe_result(
                    job, cset, round_, nid, load, retries_left),
                on_timeout=lambda nid=nid: self._on_probe_result(
                    job, cset, round_, nid, None, retries_left),
                timeout=grid.cfg.probe_timeout,
                trace=trace,
            )

    def _on_probe_result(self, job: Job, cset: CandidateSet,
                         round_: ProbeRound, nid: int, load: int | None,
                         retries_left: int) -> None:
        done = round_.timeout(nid) if load is None else round_.reply(nid, load)
        if done:
            self._select_and_dispatch(job, cset, round_.loads, round_.failed,
                                      retries_left, probe_span=round_.span)

    def _select_and_dispatch(self, job: Job, cset: CandidateSet,
                             loads: dict[int, int], failed, retries_left: int,
                             probe_span=None) -> None:
        """Rank the probe results and dispatch to the winner."""
        grid = self.grid
        tel = grid.telemetry
        if probe_span is not None:
            # Close the fan-out span even when the round was superseded —
            # the probes really happened; the attrs say how they settled.
            if job.extra.get("tel_probe") is probe_span:
                job.extra.pop("tel_probe")
            tel.bus.end_span(probe_span, grid.sim.now,
                             replies=len(loads), timeouts=len(failed))
        if job.is_done or not self._alive:
            return
        if job.owner_id != self.node_id or job.state is not JobState.MATCHING:
            return  # superseded (resubmitted / re-owned) while probing
        if failed and tel.enabled:
            tel.metrics.counter("match.probes.timeouts").inc(len(failed))
        ranking = grid.selection_policy.rank(
            cset.candidates, loads, failed, grid.streams["match"],
            tie_break=cset.tie_break)
        if tel.enabled:
            tel.note_match(grid.matchmaker.name, cset.hops,
                           len(loads) + len(failed), cset.pushes,
                           found=bool(ranking))
        if not ranking:
            self._retry_match(job, retries_left)
            return
        self._note_selected(job, grid.nodes[ranking[0]], cset.hops, len(loads))
        self._dispatch(job, ranking)

    # -- dispatch (plain or acknowledged) ---------------------------------

    def _dispatch(self, job: Job, ranking: list[int]) -> None:
        """Ship the job to ``ranking[0]``; the rest are ack-fallbacks."""
        if job.is_done or not self._alive:
            return
        target = ranking[0]
        tel = self.grid.telemetry
        trace = None
        if tel.enabled:
            dspan = job.extra.get("tel_dispatch")
            trace = (job.guid, dspan.span_id if dspan is not None else None)
            if tel.flight is not None:
                tel.flight.note(self.node_id, self.grid.sim.now, "dispatch",
                                job=job.guid, info=target)
        if self.grid.cfg.replicate and len(ranking) > 1 \
                and len(self.owned) >= self.grid.cfg.replicate_threshold \
                and "replica_nodes" not in job.extra:
            # Hot-owner replication: ship a second copy to the runner-up
            # candidate.  Plain (unacked) send even in dispatch_ack mode —
            # the replica is best-effort; the acked primary path is the
            # one recovery reasons about.
            replica = ranking[1]
            job.extra["replica_nodes"] = (replica,)
            self.grid.trace.record(self.grid.sim.now, "replicate",
                                   job=job.name)
            self.grid.metrics.on_recovery("replica", job)
            if tel.enabled:
                tel.metrics.counter("jobs.replicated").inc()
            self.grid.network.send("assign", self.node_id, replica, job,
                                   trace=trace)
        if not self.grid.cfg.dispatch_ack:
            self.grid.network.send("assign", self.node_id, target, job,
                                   trace=trace)
            return
        self.grid.rpc.call(
            self.node_id, target, "assign", job,
            on_reply=lambda ok: self._on_dispatch_ack(job, target, ok),
            on_timeout=lambda: self._on_dispatch_timeout(job, ranking),
            timeout=self.grid.cfg.probe_timeout,
            trace=trace,
        )

    def _on_dispatch_ack(self, job: Job, target: int, ok: bool) -> None:
        """The run node confirmed (or refused) the assignment."""
        if not ok:
            return  # refused: the assignment was superseded; nothing to do
        rec = self.owned.get(job.guid)
        if rec is not None and rec.run_node_id == target:
            rec.last_heartbeat = self.grid.sim.now  # the ack proves liveness
            jt = self.grid.job_table
            if jt is not None:
                jt.note_heartbeat(job, self.node_id, rec.last_heartbeat)
        tel = self.grid.telemetry
        if tel.enabled:
            tel.metrics.counter("dispatch.acks").inc()

    def _on_dispatch_timeout(self, job: Job, ranking: list[int]) -> None:
        """Ack timeout: the chosen run node died between probe and assign.

        Fall back to the next-ranked candidate *immediately* — recovery in
        one rpc timeout instead of ``heartbeat_interval × miss_limit``
        waiting for the monitor sweep to notice the silence.
        """
        target = ranking[0]
        if job.is_done or not self._alive:
            return
        if job.run_node_id != target or job.owner_id != self.node_id:
            return  # superseded meanwhile (monitor sweep / re-own)
        grid = self.grid
        now = grid.sim.now
        rec = self.owned.get(job.guid)
        job.run_node_failures += 1
        grid.trace.record(now, "recovery", kind="dispatch", job=job.name)
        latency = now - rec.last_heartbeat if rec is not None else 0.0
        grid.metrics.on_recovery("dispatch", job, latency=latency)
        tel = grid.telemetry
        if tel.enabled:
            tel.metrics.counter("dispatch.ack_timeouts").inc()
        if tel.enabled and tel.flight is not None:
            tel.flight.note(self.node_id, now, "dispatch-timeout",
                            job=job.guid, info=target)
        jt = grid.job_table
        rest = ranking[1:]
        if rest:
            job.run_node_id = rest[0]
            if rec is not None:
                rec.run_node_id = rest[0]
                rec.last_heartbeat = now
                if jt is not None:
                    jt.note_record(job, self.node_id, rest[0], now)
            self._dispatch(job, rest)
        else:
            job.state = JobState.MATCHING
            job.run_node_id = None
            if rec is not None:
                rec.run_node_id = None
                rec.last_heartbeat = now
                if jt is not None:
                    jt.note_record(job, self.node_id, None, now)
            if tel.enabled:
                # The dispatch phase is over (exhausted); a fresh match
                # span opens in _match_and_dispatch for the retry chain.
                tel.bus.end_span(job.extra.pop("tel_dispatch", None), now,
                                 status="exhausted")
            self._match_and_dispatch(job, retries_left=grid.cfg.match_retries)

    def _owner_fail_job(self, job: Job, reason: str) -> None:
        if job.is_terminal or job.owner_id != self.node_id:
            # Guard the terminal transition: a stale owner (healed after
            # a partition, its monitor state intact) must not FAIL a job
            # its replacement owner is still managing — and nothing may
            # ever fail a job that already reached a terminal state, or
            # the metrics double-count it (once COMPLETED at the client,
            # once FAILED here).
            if self.owned.pop(job.guid, None) is not None:
                self._mon_dirty = True
            return
        job.state = JobState.FAILED
        job.failure_reason = reason
        self.owned.pop(job.guid, None)
        self._mon_dirty = True
        tel = self.grid.telemetry
        if tel.enabled:
            tel.close_job_spans(job, "failed")
            tel.dump_flight(job, (self.node_id, job.run_node_id),
                            reason=reason)
        self.grid.network.send("result", self.node_id, job.profile.client_id, job)

    def _on_heartbeat(self, msg: Message) -> None:
        job_guid, run_node_id = msg.payload
        rec = self.owned.get(job_guid)
        if rec is None:
            # We may be a freshly recruited owner (or recovered node) that
            # lost the record; re-adopt if we are this job's current owner.
            job = self.grid.jobs.get(job_guid)
            if job is None or job.is_done or job.owner_id != self.node_id:
                return  # stale heartbeat; no ack, runner will recover
            rec = JobRecord(job, run_node_id, self.grid.sim.now)
            self.owned[job_guid] = rec
            self._mon_dirty = True
            self._ensure_owner_tasks()
        rec.run_node_id = run_node_id
        rec.last_heartbeat = self.grid.sim.now
        jt = self.grid.job_table
        if jt is not None:
            jt.note_record(rec.job, self.node_id, run_node_id,
                           rec.last_heartbeat)
        self.grid.network.send("hb-ack", self.node_id, run_node_id, job_guid)
        if self.grid.cfg.relay_status_to_client:
            self.grid.network.send("status", self.node_id,
                                   rec.job.profile.client_id, job_guid)

    def _on_complete(self, msg: Message) -> None:
        if self.owned.pop(msg.payload, None) is not None:
            self._mon_dirty = True

    def _on_adopt(self, msg: Message) -> None:
        """A run node detected our predecessor's death and recruited us."""
        job = msg.payload
        if job.is_terminal:
            return
        job.owner_id = self.node_id
        self.owned[job.guid] = JobRecord(job, job.run_node_id, self.grid.sim.now)
        self._mon_dirty = True
        jt = self.grid.job_table
        if jt is not None:
            jt.note_record(job, self.node_id, job.run_node_id,
                           self.grid.sim.now)
        tel = self.grid.telemetry
        if tel.enabled and tel.flight is not None:
            tel.flight.note(self.node_id, self.grid.sim.now, "adopt",
                            job=job.guid, info=msg.src)
        self._ensure_owner_tasks()

    def _monitor_owned(self) -> None:
        """Periodic owner sweep: challenge run nodes that went silent.

        Suspicion (stale heartbeats) triggers a *message*, not an oracle
        read: a ``has-job`` rpc to the suspect.  A positive reply means
        heartbeats are merely delayed and refreshes the record; a negative
        reply or timeout confirms the loss and the job is re-matched.
        """
        if not self._alive:
            return
        cfg = self.grid.cfg
        now = self.grid.sim.now
        timeout = cfg.heartbeat_interval * cfg.heartbeat_miss_limit
        jt = self.grid.job_table
        if jt is not None and len(self.owned) >= 32 and not cfg.speculative \
                and self._reg_idx >= 0:
            # Vectorized all-clear check: one array mask over this
            # owner's JobTable rows.  When it holds, the scalar sweep
            # below would take no action at all — no record pops, no
            # liveness probes, no RNG draws — so returning here is
            # bit-identical.  Any anomaly (terminal record, moved
            # ownership, stale heartbeat) falls through to the scalar
            # loop, which stays the only action path.  Speculative mode
            # adds a per-record straggler predicate the columns don't
            # carry, so it always sweeps scalar.  Small record sets
            # (< 32) also sweep scalar: the array mask carries ~15 µs of
            # fixed numpy overhead, which only amortizes when one owner
            # holds many jobs — either path takes the same actions.
            rows = self._mon_rows
            if self._mon_dirty or rows is None:
                rows = np.fromiter(
                    (rec.job._jt_idx for rec in self.owned.values()),
                    dtype=np.int64, count=len(self.owned))
                # A job with no row (unit tests driving owner_receive
                # without inject) keeps this owner on the scalar path.
                rows = rows if int(rows.min()) >= 0 else None
                self._mon_rows = rows
                self._mon_dirty = False
            if rows is not None and jt.all_clear(rows, self._reg_idx, now):
                return
        # Iterate the record dict directly (no snapshot list per sweep —
        # this fires every heartbeat interval on every owner).  The sweep
        # body only posts messages, so the dict cannot grow mid-loop;
        # records of finished jobs are collected and popped afterwards.
        done: list[int] | None = None
        speculate: list[JobRecord] | None = None
        for rec in self.owned.values():
            job = rec.job
            if job.is_terminal or job.owner_id != self.node_id:
                # Finished/abandoned — or ours no longer (ownership moved
                # while we were partitioned); either way the record is
                # dead weight and acting on it would double-manage (or
                # revive) the job.
                if done is None:
                    done = [job.guid]
                else:
                    done.append(job.guid)
                continue
            if rec.run_node_id is None:
                continue  # matchmaking still in flight
            if cfg.speculative and not rec.speculated \
                    and now - job.match_time \
                    > cfg.speculative_threshold * job.profile.work:
                # Straggler: out for several multiples of its nominal
                # work with no result.  Launch a clone (deferred past the
                # sweep: re-matching mutates self.owned).
                if speculate is None:
                    speculate = [rec]
                else:
                    speculate.append(rec)
                continue
            if now - rec.last_heartbeat > timeout and not rec.probing:
                rec.probing = True
                if jt is not None:
                    jt.note_probing(job, self.node_id, True)
                tel = self.grid.telemetry
                self.grid.rpc.call(
                    self.node_id, rec.run_node_id, "has-job", job.guid,
                    on_reply=lambda has, rec=rec: self._on_liveness_reply(
                        rec, has),
                    on_timeout=lambda rec=rec: self._on_liveness_timeout(rec),
                    timeout=cfg.probe_timeout,
                    trace=(job.guid, None) if tel.enabled else None,
                )
        if done is not None:
            pop = self.owned.pop
            for guid in done:
                pop(guid, None)
            self._mon_dirty = True
        if speculate is not None:
            for rec in speculate:
                self._speculate(rec)

    def _speculate(self, rec: JobRecord) -> None:
        """Clone a straggler back into matchmaking (speculative knob).

        The original copy keeps running wherever it is; the first copy to
        deliver a result wins at the client, and the loser's terminal
        messages are suppressed (see ``_finish_running``).
        """
        job = rec.job
        now = self.grid.sim.now
        rec.speculated = True
        job.state = JobState.MATCHING
        self.grid.trace.record(now, "recovery", kind="speculative",
                               job=job.name)
        self.grid.metrics.on_recovery("speculative", job,
                                      latency=now - job.match_time)
        tel = self.grid.telemetry
        if tel.enabled:
            tel.metrics.counter("jobs.speculated").inc()
            if tel.flight is not None:
                tel.flight.note(self.node_id, now, "speculate", job=job.guid)
        self._match_and_dispatch(job, retries_left=self.grid.cfg.match_retries)

    def _liveness_settled(self, rec: JobRecord) -> bool:
        """True when a liveness-probe outcome is still actionable."""
        rec.probing = False
        jt = self.grid.job_table
        if jt is not None and self.owned.get(rec.job.guid) is rec:
            jt.note_probing(rec.job, self.node_id, False)
        return (self._alive and not rec.job.is_terminal
                and rec.job.owner_id == self.node_id
                and self.owned.get(rec.job.guid) is rec)

    def _on_liveness_reply(self, rec: JobRecord, has_job: bool) -> None:
        if not self._liveness_settled(rec):
            return
        if has_job:
            # Heartbeats delayed, not dead; the reply doubles as one.
            rec.last_heartbeat = self.grid.sim.now
            jt = self.grid.job_table
            if jt is not None:
                jt.note_heartbeat(rec.job, self.node_id, rec.last_heartbeat)
        else:
            self._recover_run_node(rec)

    def _on_liveness_timeout(self, rec: JobRecord) -> None:
        if self._liveness_settled(rec):
            self._recover_run_node(rec)

    def _recover_run_node(self, rec: JobRecord) -> None:
        """The run node is confirmed gone: re-run matchmaking."""
        job = rec.job
        now = self.grid.sim.now
        lost_node = rec.run_node_id
        job.run_node_failures += 1
        self.grid.trace.record(now, "recovery", kind="run-node",
                               job=job.name)
        latency = now - rec.last_heartbeat
        job.state = JobState.MATCHING
        job.run_node_id = None
        rec.run_node_id = None
        rec.last_heartbeat = now
        jt = self.grid.job_table
        if jt is not None:
            jt.note_record(job, self.node_id, None, now)
        self.grid.metrics.on_recovery("run-node", job, latency=latency)
        tel = self.grid.telemetry
        if tel.enabled:
            # Whatever phase the job died in on the lost node is over;
            # close those spans so the retry chain starts clean (a fresh
            # match span opens in _match_and_dispatch).
            tel.close_job_spans(job, "run-node-lost",
                                keys=("tel_probe", "tel_dispatch",
                                      "tel_queue", "tel_run"))
            if tel.flight is not None:
                tel.flight.note(self.node_id, now, "run-node-lost",
                                job=job.guid, info=lost_node)
        self._match_and_dispatch(job, retries_left=self.grid.cfg.match_retries)

    def _ensure_owner_tasks(self) -> None:
        cfg = self.grid.cfg
        if not cfg.heartbeats_enabled or self._monitor_task is not None:
            return
        self._monitor_task = PeriodicTask(
            self.grid.sim, cfg.heartbeat_interval, self._monitor_owned,
            rng=self.grid.rng_protocol, jitter=0.1,
        )

    # ------------------------------------------------------------------
    # runner role
    # ------------------------------------------------------------------

    def _on_assign(self, msg: Message) -> None:
        self._accept_assignment(msg.payload)

    def _is_assignee(self, job: Job) -> bool:
        """Primary run node, or a best-effort replica (replicate knob)."""
        return job.run_node_id == self.node_id \
            or self.node_id in job.extra.get("replica_nodes", ())

    def _accept_assignment(self, job: Job) -> bool:
        """Enqueue an assigned job; the return value is the dispatch ack."""
        if job.is_terminal or not self._is_assignee(job):
            return False  # superseded assignment (owner re-matched elsewhere)
        if self._has_job(job):
            return True  # duplicate delivery; already accepted
        job.state = JobState.QUEUED
        job.enqueue_time = self.grid.sim.now
        self._last_ack[job.guid] = self.grid.sim.now
        tel = self.grid.telemetry
        if tel.enabled:
            # The dispatch phase ends where the job physically landed
            # (job.extra is shared state, so the owner-opened span is
            # reachable here on the run node).
            tel.bus.end_span(job.extra.pop("tel_dispatch", None),
                             self.grid.sim.now, node=self.name)
            job.extra["tel_queue"] = tel.bus.begin_span(
                self.grid.sim.now, "job.queue",
                parent=job.extra.get("tel_job"), trace=job.guid, job=job.name,
                node=self.name, depth=self.queue_len + 1)
            if tel.flight is not None:
                tel.flight.note(self.node_id, self.grid.sim.now, "accept",
                                job=job.guid)
        self.queue.append(job)
        self.grid.on_queue_change(self)
        self._ensure_runner_tasks()
        self._maybe_start()
        return True

    def _on_rpc(self, msg: Message) -> None:
        self.grid.rpc.handle_message(self.node_id, msg)

    def _handle_rpc(self, method: str, payload, respond) -> None:
        """Server side of the matchmaking pipeline's rpc vocabulary."""
        if method == "probe":
            respond(self.queue_len)
        elif method == "assign":
            respond(self._accept_assignment(payload))
        elif method == "has-job":
            job = self.grid.jobs.get(payload)
            respond(job is not None and self._has_job(job))
        else:
            raise ValueError(f"unknown rpc method {method!r}")

    def _has_job(self, job: Job) -> bool:
        return job is self.running or job in self.queue

    def _pop_next_job(self) -> Job:
        """Select the next job per the configured queue discipline."""
        if self.grid.cfg.queue_discipline == "fair-share" and len(self.queue) > 1:
            # Least locally-served client first; FIFO inside a client (the
            # scan is fine: queues hold at most tens of jobs).
            best_i = 0
            best_served = self.client_service.get(
                self.queue[0].profile.client_id, 0.0)
            for i in range(1, len(self.queue)):
                served = self.client_service.get(
                    self.queue[i].profile.client_id, 0.0)
                if served < best_served:
                    best_i, best_served = i, served
            if best_i:
                self.queue.rotate(-best_i)
                job = self.queue.popleft()
                self.queue.rotate(best_i)
                return job
        return self.queue.popleft()

    def _maybe_start(self) -> None:
        if self.running is not None or not self.queue:
            return
        job = self._pop_next_job()
        if job.is_terminal or not self._is_assignee(job):
            self.grid.on_queue_change(self)
            self._maybe_start()
            return
        try:
            self.grid.cfg.sandbox.check_admission(
                job.profile, needs_network=bool(job.extra.get("needs_network")))
        except SandboxViolation as exc:
            self._fail_job(job, f"sandbox: {exc}")
            # The pop shrank the queue with nothing started in its place:
            # load watchers (matchmaker indices, registry column) must
            # hear about it, same as the dead-job path below.
            self.grid.on_queue_change(self)
            self._maybe_start()
            return
        self.running = job
        job.state = JobState.RUNNING
        job.start_time = self.grid.sim.now
        job.executions += 1
        self.grid.trace.record(self.grid.sim.now, "start", job=job.name,
                               node=self.name, wait=job.wait_time)
        tel = self.grid.telemetry
        if tel.enabled:
            tel.bus.end_span(job.extra.pop("tel_queue", None),
                             self.grid.sim.now, node=self.name)
            job.extra["tel_run"] = tel.bus.begin_span(
                self.grid.sim.now, "job.run",
                parent=job.extra.get("tel_job"), trace=job.guid,
                job=job.name, node=self.name)
            if tel.flight is not None:
                tel.flight.note(self.node_id, self.grid.sim.now, "run-start",
                                job=job.guid)
        duration = self.execution_time(job)
        # Staging: input before, output after, over the configured link.
        # KB-scale I/O (the paper's workloads) makes this negligible; it is
        # the knob for studying I/O-heavier jobs.
        staging = (job.profile.input_size_kb + job.profile.output_size_kb) \
            / self.grid.cfg.staging_bandwidth_kbps
        limit = self.grid.cfg.sandbox.runtime_limit(job.profile)
        if limit is not None and duration > limit:
            # Runaway guard: the job will be killed at the limit.
            self._completion = self.grid.sim.schedule(
                limit, self._finish_running, job, "sandbox: runtime limit exceeded")
        else:
            self._completion = self.grid.sim.schedule(
                duration + staging, self._finish_running, job, None)

    def execution_time(self, job: Job) -> float:
        """Wall-clock execution time of ``job`` on this node."""
        cfg = self.grid.cfg
        if cfg.scale_runtime_by_cpu:
            speed = self.capability[cfg.cpu_dim] / cfg.reference_cpu_level
            return job.profile.work / max(speed, 1e-9)
        return job.profile.work

    def _finish_running(self, job: Job, failure: str | None) -> None:
        self._completion = None
        self.running = None
        self.jobs_executed += 1
        served = self.grid.sim.now - job.start_time
        self.busy_time += served
        self.grid.registry.note_executed(self._reg_idx, served)
        cid = job.profile.client_id
        self.client_service[cid] = self.client_service.get(cid, 0.0) + served
        if failure is None:
            try:
                self.grid.cfg.sandbox.check_completion(job.profile)
            except SandboxViolation as exc:
                failure = f"sandbox: {exc}"
        tel = self.grid.telemetry
        if tel.enabled:
            tel.bus.end_span(job.extra.pop("tel_run", None), self.grid.sim.now,
                             node=self.name, failure=failure)
            tel.metrics.counter("jobs.executed").inc()
            if tel.flight is not None:
                tel.flight.note(self.node_id, self.grid.sim.now, "run-finish",
                                job=job.guid, info=failure)
        cfg = self.grid.cfg
        if (cfg.speculative or cfg.replicate) and job.is_terminal:
            # A sibling copy (speculative clone or replica) already drove
            # the job to a terminal state: this copy's work is sunk cost,
            # its terminal messages must not fire — a late _fail_job here
            # would flip a COMPLETED job to FAILED and double-count it.
            # Gated on the knobs: without them double execution only
            # happens via client resubmission, whose duplicate results
            # the client itself already absorbs (and the goldens pin that
            # exact message stream).
            self._last_ack.pop(job.guid, None)
            self.grid.on_queue_change(self)
            self._maybe_start()
            return
        if failure is not None:
            self._fail_job(job, failure)
        else:
            job.result = job.extra.get("result_payload", f"output:{job.name}")
            if job.owner_id is not None:
                self.grid.network.send("complete", self.node_id, job.owner_id,
                                       job.guid)
            self._return_result(job)
        self._last_ack.pop(job.guid, None)
        self.grid.on_queue_change(self)
        self._maybe_start()

    def _return_result(self, job: Job) -> None:
        """§2 step 6: return the result to the client — inline, or (in
        pointer mode) stored into the matchmaker's DHT with replication and
        announced as a GUID pointer the client resolves."""
        if self.grid.cfg.result_return == "pointer":
            stored, hops = self.grid.matchmaker.store_result(job, job.result)
            if stored:
                job.extra["result_store_hops"] = hops
                # The store consumed overlay hops before the announcement
                # can go out; if we die in that window the result is still
                # in the DHT but unannounced — the client's watchdog covers
                # that, same as any lost message.
                self.grid.sim.schedule(self.grid.route_delay(hops),
                                       self._announce_pointer, job)
                return
        self.grid.network.send("result", self.node_id,
                               job.profile.client_id, job)

    def _announce_pointer(self, job: Job) -> None:
        if not self._alive:
            return
        self.grid.network.send("result-pointer", self.node_id,
                               job.profile.client_id, job)

    def _fail_job(self, job: Job, reason: str) -> None:
        if job.is_terminal:
            return  # already terminal; a COMPLETED job must never re-fail
        job.state = JobState.FAILED
        job.failure_reason = reason
        tel = self.grid.telemetry
        if tel.enabled:
            tel.close_job_spans(job, "failed")
            tel.dump_flight(job, (self.node_id, job.owner_id),
                            reason=reason)
        if job.owner_id is not None:
            self.grid.network.send("complete", self.node_id, job.owner_id, job.guid)
        self.grid.network.send("result", self.node_id, job.profile.client_id, job)

    def _iter_runner_jobs(self):
        """Queued jobs then the running one — the batch a sweep covers.

        Iterates the live deque directly (no snapshot list per sweep);
        sweep bodies only *send* messages, which the kernel defers, so
        nothing mutates the queue mid-iteration (the deque would raise if
        something ever did).
        """
        yield from self.queue
        if self.running is not None:
            yield self.running

    def _send_heartbeats(self) -> None:
        """One heartbeat per queued/running job (§2 step 5)."""
        send = self.grid.network.send
        node_id = self.node_id
        sent = 0
        for job in self._iter_runner_jobs():
            if job.owner_id is not None:
                send("heartbeat", node_id, job.owner_id, (job.guid, node_id))
                sent += 1
        tel = self.grid.telemetry
        if sent and tel.enabled:
            ctr = self._tel_hb_ctr
            if ctr is None:
                ctr = self._tel_hb_ctr = tel.metrics.counter("heartbeats.sent")
                self._tel_hb_wants = tel.bus.wants("heartbeat")
            ctr.inc(sent)
            if self._tel_hb_wants:
                tel.bus.record(self.grid.sim.now, "heartbeat",
                               node=self.name, jobs=sent)

    def _on_hb_ack(self, msg: Message) -> None:
        self._last_ack[msg.payload] = self.grid.sim.now

    def _watch_owner_acks(self) -> None:
        """Detect a dead owner: stale acks => re-insert the job profile into
        the DHT to recruit a replacement owner (§2 failure recovery)."""
        cfg = self.grid.cfg
        now = self.grid.sim.now
        timeout = cfg.heartbeat_interval * cfg.heartbeat_miss_limit
        for job in self._iter_runner_jobs():
            last = self._last_ack.get(job.guid)
            if last is None or now - last <= timeout:
                continue
            job.owner_failures += 1
            self.grid.trace.record(now, "recovery", kind="owner",
                                   job=job.name)
            self.grid.metrics.on_recovery("owner", job)
            tel = self.grid.telemetry
            if tel.enabled:
                if tel.flight is not None:
                    tel.flight.note(self.node_id, now, "owner-lost",
                                    job=job.guid, info=job.owner_id)
                tel.trace_ctx = (job.guid, None)
                new_owner, hops = self.grid.matchmaker.find_owner(
                    job, start=self)
                tel.trace_ctx = None
            else:
                new_owner, hops = self.grid.matchmaker.find_owner(
                    job, start=self)
            job.owner_route_hops += hops
            self._last_ack[job.guid] = now  # give the recruit time to answer
            if new_owner is None:
                continue  # overlay unreachable; retry next sweep
            job.owner_id = new_owner.node_id
            self.grid.network.send("adopt-owner", self.node_id,
                                   new_owner.node_id, job)

    def _ensure_runner_tasks(self) -> None:
        cfg = self.grid.cfg
        if not cfg.heartbeats_enabled or self._hb_task is not None:
            return
        self._hb_task = PeriodicTask(
            self.grid.sim, cfg.heartbeat_interval, self._runner_tick,
            rng=self.grid.rng_protocol, jitter=0.1,
        )

    def _runner_tick(self) -> None:
        if not self._alive or (not self.queue and self.running is None):
            return
        self._send_heartbeats()
        self._watch_owner_acks()

    # ------------------------------------------------------------------
    # failure / recovery
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Abrupt failure: all volatile state (queue, monitors) is lost."""
        if not self._alive:
            return
        self._alive = False
        tel = self.grid.telemetry
        if tel.enabled and tel.flight is not None:
            tel.flight.note(self.node_id, self.grid.sim.now, "crash")
        if self._completion is not None:
            self._completion.cancel()
            self._completion = None
        self.queue.clear()
        self.running = None
        self.owned.clear()
        self._mon_rows = None
        self._mon_dirty = True
        self._last_ack.clear()
        if self._hb_task is not None:
            self._hb_task.stop()
            self._hb_task = None
        if self._monitor_task is not None:
            self._monitor_task.stop()
            self._monitor_task = None
        self.grid._live_cache = None
        self.grid.registry.alive[self._reg_idx] = False
        self.grid.on_queue_change(self)

    def recover(self) -> None:
        """Rejoin with fresh, empty state (same identity and capability)."""
        if self._alive:
            return
        self._alive = True
        self.grid._live_cache = None
        self.grid.registry.alive[self._reg_idx] = True

    def partition(self) -> None:
        """Become unreachable *without* losing state.

        Unlike :meth:`crash`, the queue, the running job's completion
        timer, owned-job records, and periodic tasks all survive — the
        node simply stops sending or receiving messages (the network drops
        traffic to and from dead endpoints).  Models a transient network
        partition or laptop suspend, as opposed to a process death.
        """
        self._alive = False
        self.grid._live_cache = None
        self.grid.registry.alive[self._reg_idx] = False

    def heal(self) -> None:
        """Reconnect after :meth:`partition`, state intact."""
        self._alive = True
        self.grid._live_cache = None
        self.grid.registry.alive[self._reg_idx] = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self._alive else "DOWN"
        return (f"GridNode({self.name!r}, {state}, cap={self.capability}, "
                f"q={self.queue_len})")


GridNode._HANDLERS = {
    "assign": GridNode._on_assign,
    "heartbeat": GridNode._on_heartbeat,
    "hb-ack": GridNode._on_hb_ack,
    "complete": GridNode._on_complete,
    "adopt-owner": GridNode._on_adopt,
    "rpc-req": GridNode._on_rpc,
    "rpc-rep": GridNode._on_rpc,
}
