"""Resource capabilities and job requirements.

The paper's job profiles carry minimum resource requirements — "required
CPU speed, amount of memory, supported operating system type(s), etc." —
and nodes advertise capabilities on the same axes.  Following the
evaluation setup we model **3 resource types** on a discrete level scale;
a requirement of 0 on an axis means *unconstrained*.

Vectors are plain tuples of floats: the per-job operations (satisfaction,
dominance) touch 3-4 elements, where tuples beat numpy arrays by a wide
margin; the *centralized* matchmaker, which scans all N nodes per job,
instead keeps a single (N x R) numpy capability matrix and vectorises.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Capability or requirement vector; level units, 0 = unconstrained (for
#: requirements) / useless (for capabilities).
Vector = tuple[float, ...]


@dataclass(frozen=True)
class ResourceSpec:
    """Names and scale of the resource axes.

    ``max_level`` is the top of the discrete capability scale (the paper's
    workloads draw node capabilities and job constraints from a bounded
    range; 1..10 here).  It also normalizes CAN coordinates.
    """

    names: tuple[str, ...] = ("cpu", "mem", "disk")
    max_level: float = 10.0

    @property
    def dims(self) -> int:
        return len(self.names)

    def validate_capability(self, cap: Vector) -> None:
        if len(cap) != self.dims:
            raise ValueError(f"capability has {len(cap)} dims, spec has {self.dims}")
        for c in cap:
            if not 0 < c <= self.max_level:
                raise ValueError(f"capability level {c} outside (0, {self.max_level}]")

    def validate_requirement(self, req: Vector) -> None:
        if len(req) != self.dims:
            raise ValueError(f"requirement has {len(req)} dims, spec has {self.dims}")
        for r in req:
            if not 0 <= r <= self.max_level:
                raise ValueError(f"requirement level {r} outside [0, {self.max_level}]")

    def normalize(self, vec: Vector) -> tuple[float, ...]:
        """Map levels onto [0, 1] CAN coordinates."""
        return tuple(v / self.max_level for v in vec)


def satisfies(capability: Vector, requirement: Vector) -> bool:
    """True iff the node meets every (non-zero) minimum requirement."""
    for c, r in zip(capability, requirement):
        if c < r:
            return False
    return True


def dominates(a: Vector, b: Vector, *, strict: bool = True) -> bool:
    """True iff ``a >= b`` componentwise (and ``a != b`` when strict).

    This is the paper's CAN candidate criterion: "at least as capable as
    the original owner in all dimensions, but more capable in at least one
    dimension".
    """
    ge_all = True
    gt_any = False
    for x, y in zip(a, b):
        if x < y:
            ge_all = False
            break
        if x > y:
            gt_any = True
    return ge_all and (gt_any or not strict)


def constraint_count(requirement: Vector) -> int:
    """Number of constrained axes (non-zero requirements)."""
    return sum(1 for r in requirement if r > 0)


@dataclass
class CapabilityMatrix:
    """Vectorised capability table for omniscient matchmaking.

    Rows are nodes in a fixed index order; :meth:`satisfying_mask` returns
    a boolean mask of nodes meeting a requirement in one numpy pass.
    """

    spec: ResourceSpec
    matrix: np.ndarray = field(repr=False)

    @classmethod
    def from_capabilities(cls, spec: ResourceSpec, caps: list[Vector]) -> "CapabilityMatrix":
        m = np.asarray(caps, dtype=float).reshape(len(caps), spec.dims)
        return cls(spec=spec, matrix=m)

    def satisfying_mask(self, requirement: Vector) -> np.ndarray:
        req = np.asarray(requirement, dtype=float)
        return (self.matrix >= req).all(axis=1)
