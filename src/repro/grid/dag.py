"""Job dependencies: the DAGMan-style extension (paper §5, future work).

"If computational scientists also use the system for data analysis of
results, then the system will have to distinguish between job types
(simulation vs. analysis) and perform the jobs in the correct order
(analysis after simulation of a given problem), and make the output of a
simulation job available as the input for the corresponding analysis
job(s).  We will investigate using existing software packages, such as
Condor's DAGMan, for managing dependencies between jobs."

:class:`DagScheduler` implements exactly that on top of the grid's public
API: declare jobs with dependencies; roots are submitted immediately; a
job is released when all its parents complete, with each parent's result
wired into the child's ``inputs``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.grid.client import Client
from repro.grid.job import Job, JobProfile, JobState
from repro.grid.resources import Vector


class DagJobKind(enum.Enum):
    SIMULATION = "simulation"
    ANALYSIS = "analysis"


class DagCycleError(ValueError):
    """The declared dependencies contain a cycle."""


@dataclass
class DagNode:
    """One vertex of the workflow DAG."""

    name: str
    job: Job
    kind: DagJobKind
    parents: tuple[str, ...]
    children: list[str] = field(default_factory=list)
    unfinished_parents: int = 0
    released: bool = False

    @property
    def done(self) -> bool:
        return self.job.state is JobState.COMPLETED


class DagScheduler:
    """Submits a workflow DAG through a client, honoring dependencies."""

    def __init__(self, grid, client: Client):
        self.grid = grid
        self.client = client
        self.nodes: dict[str, DagNode] = {}
        self._submitted = False
        client.result_callbacks.append(self._on_result)

    # -- declaration --------------------------------------------------------

    def add_job(self, name: str, requirements: Vector, work: float,
                deps: tuple[str, ...] = (),
                kind: DagJobKind | str = DagJobKind.SIMULATION) -> Job:
        """Declare one DAG vertex.  Parents must be declared first."""
        if self._submitted:
            raise RuntimeError("DAG already submitted")
        if name in self.nodes:
            raise ValueError(f"duplicate DAG job name {name!r}")
        for dep in deps:
            if dep not in self.nodes:
                raise ValueError(f"{name!r} depends on undeclared job {dep!r}")
        if isinstance(kind, str):
            kind = DagJobKind(kind)
        profile = JobProfile(name=name, client_id=self.client.node_id,
                             requirements=requirements, work=work)
        job = Job(profile=profile)
        job.extra["dag_kind"] = kind.value
        node = DagNode(name=name, job=job, kind=kind, parents=tuple(deps),
                       unfinished_parents=len(deps))
        for dep in deps:
            self.nodes[dep].children.append(name)
        self.nodes[name] = node
        return job

    # -- execution ------------------------------------------------------------

    def submit(self) -> int:
        """Release every root job now.  Returns the number released."""
        if self._submitted:
            raise RuntimeError("DAG already submitted")
        self._check_acyclic()
        self._submitted = True
        released = 0
        for node in self.nodes.values():
            if node.unfinished_parents == 0:
                self._release(node)
                released += 1
        return released

    def _release(self, node: DagNode) -> None:
        node.released = True
        node.job.extra["inputs"] = {
            parent: self.nodes[parent].job.result for parent in node.parents
        }
        self.client.submit(node.job)

    def _on_result(self, job: Job) -> None:
        node = self.nodes.get(job.name)
        if node is None or job.state is not JobState.COMPLETED:
            return
        for child_name in node.children:
            child = self.nodes[child_name]
            child.unfinished_parents -= 1
            if child.unfinished_parents == 0 and not child.released:
                self._release(child)

    # -- introspection ------------------------------------------------------------

    @property
    def complete(self) -> bool:
        return all(n.done for n in self.nodes.values())

    def progress(self) -> tuple[int, int]:
        done = sum(1 for n in self.nodes.values() if n.done)
        return done, len(self.nodes)

    def _check_acyclic(self) -> None:
        # Kahn's algorithm over the declared edges.
        indeg = {name: len(n.parents) for name, n in self.nodes.items()}
        queue = [name for name, d in indeg.items() if d == 0]
        seen = 0
        while queue:
            name = queue.pop()
            seen += 1
            for child in self.nodes[name].children:
                indeg[child] -= 1
                if indeg[child] == 0:
                    queue.append(child)
        if seen != len(self.nodes):
            raise DagCycleError("dependency graph contains a cycle")
