"""Clients: job submission and last-resort resubmission.

A client is a lightweight network endpoint (it is *not* a grid node; the
paper's clients merely inject jobs and collect results).  Per §2, if both
the owner and the run node fail before recovery completes, "the client
must resubmit the job" — the client learns this only from silence: owners
relay heartbeat status to the client, and a job with no status and no
result for ``client_timeout`` is resubmitted.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.grid.job import Job, JobState
from repro.sim.network import Message
from repro.sim.process import PeriodicTask
from repro.util.ids import guid_for

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.system import DesktopGrid

#: Wait-time histogram edges (virtual seconds); wait times span several
#: orders of magnitude across load levels, so the edges are log-spaced.
WAIT_EDGES = (0.0, 0.5, 1, 2, 5, 10, 20, 50, 100, 200,
              500, 1000, 2000, 5000, 10000)


class Client:
    """A job submitter/collector endpoint."""

    def __init__(self, name: str, grid: "DesktopGrid"):
        self.name = name
        self.node_id = guid_for(f"client:{name}")
        self.grid = grid
        self.alive = True
        self.pending: dict[int, Job] = {}
        self._last_seen: dict[int, float] = {}
        self.completed: list[Job] = []
        self.resubmissions = 0
        self.duplicate_results = 0
        #: Submissions refused by admission control (quota knob).
        self.rejected = 0
        self._watch_task: PeriodicTask | None = None
        #: Observers invoked with each finished Job (used by the DAG
        #: scheduler to release dependent jobs).
        self.result_callbacks: list = []

    # -- submission --------------------------------------------------------

    def submit(self, job: Job) -> None:
        """Inject ``job`` now (schedule via ``DesktopGrid.submit_at`` for
        future submission times)."""
        cfg = self.grid.cfg
        if cfg.admission and len(self.pending) >= cfg.admission_quota:
            # Admission control: fail fast at the edge — no owner
            # routing, no matchmaking traffic, no retry churn — so
            # quota pressure sheds load instead of amplifying it.  The
            # rejection is terminal and locally decided: no messages, no
            # RNG draws (defaults-off bit-identity depends on this).
            if job.state is JobState.CREATED:
                job.submit_time = self.grid.sim.now
            job.attempt += 1
            job.state = JobState.FAILED
            job.failure_reason = "admission: client quota exceeded"
            self.rejected += 1
            self.grid.trace.record(self.grid.sim.now, "reject",
                                   job=job.name, pending=len(self.pending))
            tel = self.grid.telemetry
            if tel.enabled:
                tel.metrics.counter("jobs.rejected").inc()
            self.grid.metrics.on_job_done(job)
            return
        job.attempt += 1
        if job.state is JobState.CREATED:
            job.submit_time = self.grid.sim.now
        job.state = JobState.SUBMITTED
        self.pending[job.guid] = job
        self._last_seen[job.guid] = self.grid.sim.now
        self.grid.trace.record(self.grid.sim.now, "submit",
                               job=job.name, attempt=job.attempt)
        tel = self.grid.telemetry
        if tel.enabled:
            tel.metrics.counter("jobs.submitted").inc()
            if "tel_job" not in job.extra:
                job.extra["tel_job"] = tel.bus.begin_span(
                    self.grid.sim.now, "job.lifecycle", trace=job.guid,
                    job=job.name, client=self.name)
        self.grid.inject(job, client=self)
        if self.grid.cfg.client_resubmit_enabled:
            self._ensure_watch_task()

    # -- endpoint ----------------------------------------------------------

    def handle_message(self, msg: Message) -> None:
        if msg.kind == "status":
            self._last_seen[msg.payload] = self.grid.sim.now
        elif msg.kind == "result":
            self._on_result(msg.payload)
        elif msg.kind == "result-pointer":
            self._on_result_pointer(msg.payload)
        else:
            raise ValueError(f"client got unexpected message kind {msg.kind!r}")

    def _on_result_pointer(self, job: Job) -> None:
        """Resolve a result GUID (§2: the result may come back as "a
        pointer to the result (another GUID)")."""
        if job.guid not in self.pending:
            self.duplicate_results += 1
            return
        self._last_seen[job.guid] = self.grid.sim.now
        value, hops = self.grid.matchmaker.fetch_result(job)
        self.grid.sim.schedule(self.grid.route_delay(hops + 1),
                               self._resolve_pointer, job, value)

    def _resolve_pointer(self, job: Job, value) -> None:
        if value is None:
            # Every replica died before we fetched; the resubmission
            # watchdog (or a later duplicate announcement) recovers.
            return
        job.result = value
        self._on_result(job)

    def _on_result(self, job: Job) -> None:
        if job.guid not in self.pending:
            self.duplicate_results += 1
            return
        self.pending.pop(job.guid)
        self._last_seen.pop(job.guid, None)
        if job.state is not JobState.FAILED:
            job.state = JobState.COMPLETED
        job.finish_time = self.grid.sim.now
        self.completed.append(job)
        self.grid.trace.record(self.grid.sim.now, "complete",
                               job=job.name, state=job.state.value,
                               wait=job.wait_time)
        tel = self.grid.telemetry
        if tel.enabled:
            # A resubmission race can deliver attempt N's result while
            # attempt N+1 is mid-flight with fresh phase spans open
            # (e.g. a just-begun tel_insert); sweep them so no span —
            # and no dht.lookup child of one — is left orphaned.
            tel.close_job_spans(job, job.state.value)
            tel.bus.end_span(job.extra.pop("tel_job", None),
                             self.grid.sim.now, state=job.state.value,
                             wait=job.wait_time, attempts=job.attempt)
            tel.metrics.counter(f"jobs.{job.state.value}").inc()
            tel.metrics.histogram("jobs.wait_time",
                                  edges=WAIT_EDGES).observe(job.wait_time)
        self.grid.metrics.on_job_done(job)
        for callback in self.result_callbacks:
            callback(job)

    # -- resubmission watchdog ----------------------------------------------

    def _ensure_watch_task(self) -> None:
        if self._watch_task is None:
            cfg = self.grid.cfg
            self._watch_task = PeriodicTask(
                self.grid.sim, cfg.client_check_interval, self._check_pending,
                rng=self.grid.rng_protocol, jitter=0.1,
            )

    def _check_pending(self) -> None:
        cfg = self.grid.cfg
        now = self.grid.sim.now
        for guid, job in list(self.pending.items()):
            deadline = cfg.client_timeout
            if now - self._last_seen.get(guid, job.submit_time) <= deadline:
                continue
            tel = self.grid.telemetry
            if job.attempt > cfg.client_max_attempts:
                job.state = JobState.LOST
                job.failure_reason = "abandoned after max resubmissions"
                self.pending.pop(guid)
                if tel.enabled:
                    # Abandonment is terminal and no "result" message will
                    # ever close these: sweep the phase spans and the
                    # lifecycle span here so LOST jobs appear in traces.
                    tel.close_job_spans(job, "lost")
                    tel.bus.end_span(job.extra.pop("tel_job", None), now,
                                     state="lost", attempts=job.attempt)
                self.grid.metrics.on_job_done(job)
                continue
            self.resubmissions += 1
            self.grid.metrics.on_resubmission(job)
            if tel.enabled:
                tel.metrics.counter("jobs.resubmitted").inc()
                # The old attempt's phases are dead; close them so the
                # resubmission's fresh spans read as a new chain.
                tel.close_job_spans(job, "resubmitted")
            job.state = JobState.SUBMITTED
            job.owner_id = None
            job.run_node_id = None
            job.attempt += 1
            self._last_seen[guid] = now
            self.grid.inject(job, client=self)
