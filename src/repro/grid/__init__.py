"""The desktop-grid core: the paper's primary contribution.

Implements the §2 architecture — clients inject jobs into a P2P overlay;
the overlay maps each job to an *owner node* (monitor/recovery agent); a
matchmaking mechanism (pluggable, see :mod:`repro.match`) finds a *run
node* that satisfies the job's minimum resource requirements; run nodes
execute jobs from a FIFO queue, one at a time, sending per-job soft-state
heartbeats back to the owner; owner and run node recover each other's
failures, and the client resubmits only if both fail.
"""

from repro.grid.resources import (
    ResourceSpec,
    dominates,
    satisfies,
)
from repro.grid.job import Job, JobProfile, JobState
from repro.grid.node import GridNode
from repro.grid.system import DesktopGrid, GridConfig
from repro.grid.sandbox import SandboxPolicy, SandboxViolation

__all__ = [
    "ResourceSpec",
    "dominates",
    "satisfies",
    "Job",
    "JobProfile",
    "JobState",
    "GridNode",
    "DesktopGrid",
    "GridConfig",
    "SandboxPolicy",
    "SandboxViolation",
]
