"""Columnar node-state registry: array-backed liveness and load.

At 10k-100k nodes, every "scan all nodes" consumer — telemetry load
samples, timeline snapshots, the centralized matchmaker's candidate mask,
utilization reports — pays O(N) Python attribute chasing per sweep.  This
registry keeps the swept state (``alive``, ``queue_len``,
``jobs_executed``, ``busy_time``) in dense numpy columns keyed by node
index (``DesktopGrid.node_list`` order), so those consumers read one
vectorized expression instead.

The per-node objects remain the protocol's working state; the columns are
mirrors updated at the few choke points where the state changes:

* ``alive`` — :meth:`GridNode.crash`/``recover``/``partition``/``heal``
  (the same four methods that invalidate ``DesktopGrid._live_cache``);
* ``queue_len`` — :meth:`DesktopGrid.on_queue_change` (the hook every
  queue mutation already funnels through);
* ``jobs_executed`` / ``busy_time`` — :meth:`GridNode._finish_running`
  via :meth:`note_executed` (the single write point).

``tests/grid/test_registry.py`` asserts column == per-node scan after
churny runs, so a new mutation path that forgets its mirror shows up as a
test failure, not silent drift.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.node import GridNode


class NodeRegistry:
    """Dense columnar view of per-node liveness/load state."""

    __slots__ = ("nodes", "index", "alive", "queue_len", "jobs_executed",
                 "busy_time")

    def __init__(self, nodes: "list[GridNode]"):
        n = len(nodes)
        self.nodes = list(nodes)
        #: node_id -> dense index (``node_list`` order).
        self.index = {node.node_id: i for i, node in enumerate(nodes)}
        self.alive = np.ones(n, dtype=bool)
        self.queue_len = np.zeros(n, dtype=np.int64)
        self.jobs_executed = np.zeros(n, dtype=np.int64)
        self.busy_time = np.zeros(n, dtype=np.float64)

    def __len__(self) -> int:
        return len(self.nodes)

    # -- write hooks (called from the choke points listed above) ----------

    def set_alive(self, idx: int, alive: bool) -> None:
        self.alive[idx] = alive

    def note_queue(self, idx: int, queue_len: int) -> None:
        self.queue_len[idx] = queue_len

    def note_executed(self, idx: int, served: float) -> None:
        self.jobs_executed[idx] += 1
        self.busy_time[idx] += served

    # -- thin read accessors ----------------------------------------------

    def live_count(self) -> int:
        return int(self.alive.sum())

    def live_queue_lens(self) -> np.ndarray:
        """Queue lengths of live nodes (dense order, filtered)."""
        return self.queue_len[self.alive]

    def loads(self, node_ids: Iterable[int]) -> dict[int, int]:
        """``{node_id: queue_len}`` for the given ids (oracle probing)."""
        index = self.index
        column = self.queue_len
        return {nid: int(column[index[nid]]) for nid in node_ids}

    def execution_counts(self) -> list[int]:
        """Jobs executed per node, dense order, as Python ints."""
        return self.jobs_executed.tolist()

    def busy_times(self) -> np.ndarray:
        """Per-node CPU seconds served (dense order, copy-safe view)."""
        return self.busy_time

    def check_consistency(self) -> list[str]:
        """Compare every column against a per-node scan (test hook).

        Returns a list of human-readable mismatch descriptions — empty
        means the mirrors are exact.
        """
        problems: list[str] = []
        for i, node in enumerate(self.nodes):
            if bool(self.alive[i]) != node.alive:
                problems.append(f"alive[{i}] ({node.name}): "
                                f"{bool(self.alive[i])} != {node.alive}")
            if int(self.queue_len[i]) != node.queue_len:
                problems.append(f"queue_len[{i}] ({node.name}): "
                                f"{int(self.queue_len[i])} != {node.queue_len}")
            if int(self.jobs_executed[i]) != node.jobs_executed:
                problems.append(
                    f"jobs_executed[{i}] ({node.name}): "
                    f"{int(self.jobs_executed[i])} != {node.jobs_executed}")
            if float(self.busy_time[i]) != node.busy_time:
                problems.append(f"busy_time[{i}] ({node.name}): "
                                f"{float(self.busy_time[i])} != {node.busy_time}")
        return problems
