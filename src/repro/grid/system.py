"""System wiring: the :class:`DesktopGrid` facade.

This is the public entry point a downstream user drives: build a grid from
a node population and a matchmaker, create clients, submit jobs, run the
simulation, read metrics.  See ``examples/quickstart.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.grid.client import Client
from repro.grid.job import Job, JobState
from repro.grid.jobtable import JobTable
from repro.grid.node import GridNode
from repro.grid.registry import NodeRegistry
from repro.grid.resources import ResourceSpec, Vector
from repro.grid.sandbox import SandboxPolicy
from repro.match.base import Matchmaker, MatchResult
from repro.match.select import POLICIES, make_policy
from repro.metrics.collector import MetricsCollector
from repro.sim.kernel import Simulator
from repro.sim.network import LatencyModel, Network
from repro.sim.rpc import RpcLayer
from repro.sim.trace import NULL_TRACE, TraceRecorder
from repro.telemetry.core import NULL_TELEMETRY, Telemetry
from repro.util.rng import RngStreams

#: Default virtual-time budget for "run until the workload drains".  One
#: constant shared by :meth:`DesktopGrid.run_until_done` and the experiment
#: drivers (``runner.drive`` / ``run_workload``) — these used to disagree
#: (1e7 vs 1e6), so the effective budget depended on the entry point.
DEFAULT_MAX_TIME = 1e6


@dataclass
class GridConfig:
    """All tunables of a desktop-grid deployment."""

    seed: int = 0
    spec: ResourceSpec = field(default_factory=ResourceSpec)

    # Kernel: recurring protocol timers (heartbeats, monitor sweeps, DHT
    # maintenance) wait on the hierarchical timer wheel instead of the
    # event heap.  Firing order is identical either way (wheel timers
    # carry the same global sequence numbers); the toggle exists for A/B
    # equivalence tests and for bisecting kernel regressions.
    timer_wheel: bool = True

    # Network.
    mean_latency: float = 0.05
    latency_jitter: float = 0.3
    # Block size for chunked RNG sampling (latency draws, periodic-task
    # phase jitter).  Values are bit-identical for any chunk size — this
    # only trades vectorized-draw amortization against over-drawing at
    # the end of short runs.  See repro.util.rng.
    rng_chunk: int = 1024

    # Heartbeat / recovery protocol (§2).  Off by default: the load-balance
    # experiments (like the paper's) run failure-free and skip the traffic.
    heartbeats_enabled: bool = False
    heartbeat_interval: float = 5.0
    heartbeat_miss_limit: float = 3.0
    relay_status_to_client: bool = False

    # Client resubmission (last-resort recovery, §2).
    client_resubmit_enabled: bool = False
    client_check_interval: float = 20.0
    client_timeout: float = 60.0
    client_max_attempts: int = 5

    # Matchmaking retry when no satisfying node is found.
    match_retries: int = 3
    match_retry_backoff: float = 10.0

    # Matchmaking phase 2: probe/select/dispatch (repro.match.select).
    # ``probe_mode="oracle"`` keeps the historical zero-time load reads
    # (latency charged after the fact; bit-identical to pre-pipeline
    # results); ``"rpc"`` sends real request/reply probes with timeouts,
    # so a candidate that died after the structural search surfaces as a
    # timeout instead of oracle knowledge.
    probe_mode: str = "oracle"
    # Candidate-selection policy: "least-loaded" (paper default),
    # "random", or "power-of-d" (probe only ``probe_fanout`` samples).
    selection_policy: str = "least-loaded"
    probe_fanout: int = 2
    # RPC timeout (seconds) shared by load probes, dispatch acks, and the
    # owner's run-node liveness checks.
    probe_timeout: float = 1.0
    # When set, "assign" is an acknowledged rpc: the run node confirms
    # receipt, and on ack-timeout the owner immediately falls back to the
    # next-ranked candidate instead of waiting for the monitor sweep.
    dispatch_ack: bool = False

    # Result return path (§2): "the result can be returned to the client
    # as either a pointer to the result (another GUID) or as the result
    # itself".  "pointer" stores the result in the matchmaker's DHT (with
    # replication) and sends the client a pointer to resolve; matchmakers
    # without an overlay (centralized) fall back to inline return.
    result_return: str = "inline"

    # Input staging: jobs stage input_size_kb before execution and output
    # after it over a link of this bandwidth.  The paper's jobs have
    # KB-scale I/O ("modest I/O requirements"), so the default makes this
    # cost real but negligible — raising it is the knob for studying
    # I/O-heavier workloads.
    staging_bandwidth_kbps: float = 1000.0

    # Run-node queue discipline (§5 future work: fairness between users).
    # "fifo" is the paper's base design; "fair-share" picks the next job
    # from the locally least-served client (deficit-style fair sharing).
    queue_discipline: str = "fifo"

    # Execution model.  When ``scale_runtime_by_cpu`` is set, execution
    # time is ``work / (cpu_level / reference_cpu_level)`` so more capable
    # nodes finish sooner (heterogeneous-speed extension; the paper's base
    # evaluation uses nominal runtimes).
    scale_runtime_by_cpu: bool = False
    cpu_dim: int = 0
    reference_cpu_level: float = 10.0

    sandbox: SandboxPolicy = field(default_factory=SandboxPolicy)

    # Columnar fast paths: maintain the numpy-backed JobTable (job-state
    # columns updated at the protocol's existing choke points) and use
    # the vectorized phase-2 ranking over NodeRegistry columns.  Both are
    # bit-identical to the scalar paths — same RNG draws, same event
    # order — so this defaults ON; the toggle exists for A/B equivalence
    # tests and for bisecting columnar regressions.
    vectorized: bool = True

    # Mitigation knobs (scenario ablations — see repro.scenarios and
    # EXPERIMENTS.md § Scenarios).  All three default OFF and, when off,
    # draw no randomness and send no messages, so default-config runs
    # stay bit-identical to the committed equivalence goldens.
    #
    # Speculative re-execution: the owner's monitor sweep clones a job
    # back into matchmaking when it has been out for more than
    # ``speculative_threshold x`` its nominal work without finishing
    # (straggler defense; first copy to finish wins, the loser's result
    # is suppressed).
    speculative: bool = False
    speculative_threshold: float = 4.0
    # Replication on hot owners: an owner monitoring at least
    # ``replicate_threshold`` jobs dispatches each new job to its top two
    # ranked candidates instead of one.
    replicate: bool = False
    replicate_threshold: int = 4
    # Admission control: a client refuses (fails fast, no network
    # traffic) new submissions while ``admission_quota`` of its jobs are
    # still in flight.
    admission: bool = False
    admission_quota: int = 64

    def __post_init__(self) -> None:
        if self.queue_discipline not in ("fifo", "fair-share"):
            raise ValueError(f"bad queue_discipline {self.queue_discipline!r}")
        if self.result_return not in ("inline", "pointer"):
            raise ValueError(f"bad result_return {self.result_return!r}")
        if self.staging_bandwidth_kbps <= 0:
            raise ValueError("staging_bandwidth_kbps must be positive")
        if self.probe_mode not in ("oracle", "rpc"):
            raise ValueError(f"bad probe_mode {self.probe_mode!r}")
        if self.selection_policy not in POLICIES:
            raise ValueError(
                f"bad selection_policy {self.selection_policy!r}; "
                f"choose from {sorted(POLICIES)}")
        if self.probe_fanout < 1:
            raise ValueError("probe_fanout must be >= 1")
        if self.probe_timeout <= 0:
            raise ValueError("probe_timeout must be positive")
        if self.rng_chunk < 1:
            raise ValueError("rng_chunk must be >= 1")
        if self.speculative_threshold <= 0:
            raise ValueError("speculative_threshold must be positive")
        if self.replicate_threshold < 1:
            raise ValueError("replicate_threshold must be >= 1")
        if self.admission_quota < 1:
            raise ValueError("admission_quota must be >= 1")


class DesktopGrid:
    """A simulated P2P desktop grid: nodes + network + matchmaker + metrics.

    Parameters
    ----------
    cfg:
        Deployment configuration.
    matchmaker:
        An *unbound* matchmaker instance; the grid binds it, which builds
        the matchmaker's overlay(s) over the node population.
    capabilities:
        ``(name, capability_vector)`` pairs defining the node population.
    """

    def __init__(self, cfg: GridConfig, matchmaker: Matchmaker,
                 capabilities: Sequence[tuple[str, Vector]],
                 trace: "TraceRecorder | None" = None,
                 telemetry: "Telemetry | None" = None):
        self.cfg = cfg
        self.sim = Simulator(timer_wheel=cfg.timer_wheel)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        if trace is not None:
            self.trace = trace
        elif self.telemetry.enabled:
            # One buffer: legacy trace.record() calls and telemetry spans
            # land in the same bus, so a single JSONL export has both.
            self.trace = self.telemetry.bus
        else:
            self.trace = NULL_TRACE
        self.streams = RngStreams(cfg.seed)
        #: Shared block sampler over the "protocol" stream.  Every
        #: protocol timer (heartbeats, monitor sweeps, client watchdogs,
        #: CAN refresh) draws its phase jitter through this one object, so
        #: chunked pre-draws consume the stream exactly as the scalar
        #: draws did — see repro.util.rng for the bit-equality argument.
        self.rng_protocol = self.streams.uniform_sampler(
            "protocol", cfg.rng_chunk)
        self.network = Network(
            self.sim, self.streams["network"],
            LatencyModel(mean=cfg.mean_latency, jitter=cfg.latency_jitter,
                         chunk=cfg.rng_chunk),
            telemetry=self.telemetry,
            # Grid endpoints (GridNode, Client, RPC layer) never retain a
            # Message past its handler, so delivered envelopes are safe to
            # scrub and reuse (see Network._recycle).
            pool_messages=True,
        )
        self.metrics = MetricsCollector()
        self.jobs: dict[int, Job] = {}
        self.clients: dict[int, Client] = {}
        #: Matchmaking phase-2 policy (shared by every matchmaker).
        self.selection_policy = make_policy(cfg.selection_policy,
                                            probe_fanout=cfg.probe_fanout)
        #: Request/reply layer for load probes, dispatch acks, and
        #: liveness checks (grid-unused when probe_mode="oracle" and
        #: heartbeats are off — then it costs nothing).
        self.rpc = RpcLayer(self.sim, self.network,
                            default_timeout=cfg.probe_timeout,
                            telemetry=self.telemetry)

        self.nodes: dict[int, GridNode] = {}
        self.node_list: list[GridNode] = []
        #: Memoized live_nodes() result; invalidated on any liveness flip
        #: (GridNode.crash/recover/partition/heal all reset it).  Scanning
        #: N nodes per injection dominated failure-free profiles.
        self._live_cache: list[GridNode] | None = None
        for name, cap in capabilities:
            cfg.spec.validate_capability(cap)
            node = GridNode(name, cap, self)
            if node.node_id in self.nodes:
                raise ValueError(f"node name {name!r} collides on GUID")
            self.nodes[node.node_id] = node
            self.node_list.append(node)
            self.network.register(node)
            self.rpc.serve(node.node_id, node._handle_rpc)

        #: Columnar liveness/load mirror (see repro.grid.registry); nodes
        #: learn their dense index so the mirror updates are O(1) stores.
        self.registry = NodeRegistry(self.node_list)
        for i, node in enumerate(self.node_list):
            node._reg_idx = i

        #: Columnar job-state mirror (see repro.grid.jobtable): one row
        #: per injected job, fed by the Job property setters and the
        #: owner-gated record hooks in GridNode.  None when the
        #: ``vectorized`` knob is off (pure-scalar A/B mode).
        self.job_table = JobTable(
            self.registry.index,
            cfg.heartbeat_interval * cfg.heartbeat_miss_limit,
        ) if cfg.vectorized else None

        self.matchmaker = matchmaker
        matchmaker.bind(self)
        self.telemetry.bind(self)

    # ------------------------------------------------------------------
    # clients and submission
    # ------------------------------------------------------------------

    def client(self, name: str) -> Client:
        client = Client(name, self)
        if client.node_id in self.clients:
            raise ValueError(f"client name {name!r} already exists")
        self.clients[client.node_id] = client
        self.network.register(client)
        return client

    def submit_at(self, time: float, client: Client, job: Job) -> None:
        """Schedule a job submission at virtual time ``time``."""
        self.sim.schedule_at(time, client.submit, job)

    def inject(self, job: Job, client: Client) -> None:
        """§2 step 1: the client inserts the job at an *injection node*
        (any node of the system), which routes it to its owner."""
        self.jobs[job.guid] = job
        if self.job_table is not None:
            self.job_table.register(job)
        injection = self._random_live_node()
        tel = self.telemetry
        if tel.enabled:
            job.extra["tel_insert"] = tel.bus.begin_span(
                self.sim.now, "job.insert",
                parent=job.extra.get("tel_job"), trace=job.guid,
                job=job.name)
        delay = self.network.hop_latency()  # client -> injection node
        self.sim.schedule(delay, self._route_to_owner, job, injection, 5)

    def _route_to_owner(self, job: Job, start: GridNode | None,
                        retries_left: int) -> None:
        if job.is_done or job.state is not JobState.SUBMITTED:
            return
        if start is not None and not start.alive:
            start = self._random_live_node()
        tel = self.telemetry
        if tel.enabled:
            # Ambient context: overlay-route records emitted inside
            # find_owner (dht.lookup) parent under the insert span.
            ispan = job.extra.get("tel_insert")
            tel.trace_ctx = (job.guid,
                             ispan.span_id if ispan is not None else None)
            owner, hops = self.matchmaker.find_owner(job, start=start)
            tel.trace_ctx = None
        else:
            owner, hops = self.matchmaker.find_owner(job, start=start)
        if tel.enabled:
            tel.metrics.histogram("owner.route_hops").observe(hops)
            if owner is None:
                tel.metrics.counter("owner.route_failures").inc()
        if owner is None:
            if retries_left > 0:
                self.sim.schedule(self.cfg.match_retry_backoff,
                                  self._route_to_owner, job, None,
                                  retries_left - 1)
                return
            # Retries exhausted (the overlay is unreachable, e.g. mass
            # failure): fail the job loudly instead of leaving it
            # SUBMITTED forever, which made run_until_done spin to
            # max_time.  The client is notified like any other failure.
            job.state = JobState.FAILED
            job.failure_reason = "owner routing failed"
            self.trace.record(self.sim.now, "route-failed", job=job.name)
            if tel.enabled:
                tel.metrics.counter("owner.route_exhausted").inc()
                tel.close_job_spans(job, "route-exhausted")
            # src -1 = the routing fabric itself; no single node speaks
            # for a failed overlay route, but the client must still hear.
            self.network.send("result", -1, job.profile.client_id, job)
            return
        self.sim.schedule(self.route_delay(hops), self._deliver_to_owner,
                          job, owner, hops, retries_left)

    def _deliver_to_owner(self, job: Job, owner: GridNode, hops: int,
                          retries_left: int) -> None:
        if job.is_done or job.state is not JobState.SUBMITTED:
            return
        if not owner.alive:
            # Owner died while the job was in flight; route again.
            self._route_to_owner(job, None, retries_left - 1)
            return
        owner.owner_receive(job, hops)

    # ------------------------------------------------------------------
    # latency accounting
    # ------------------------------------------------------------------

    def route_delay(self, hops: int) -> float:
        """Virtual-time cost of an overlay path of ``hops`` hops."""
        return self.network.hop_latency_sum(hops)

    def match_delay(self, result: MatchResult) -> float:
        """Virtual-time cost of a matchmaking search: search hops in
        series, candidate probes in parallel (one round trip), pushes in
        series, plus the final job transfer hop."""
        delay = self.route_delay(result.hops + result.pushes)
        if result.probes:
            delay += 2 * self.network.hop_latency()
        return delay + self.network.hop_latency()

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def crash_node(self, node_id: int) -> None:
        node = self.nodes[node_id]
        if not node.alive:
            return
        node.crash()
        self.trace.record(self.sim.now, "crash", node=node.name)
        self.matchmaker.on_crash(node)

    def recover_node(self, node_id: int) -> None:
        node = self.nodes[node_id]
        if node.alive:
            return
        node.recover()
        self.trace.record(self.sim.now, "recover", node=node.name)
        self.matchmaker.on_join(node)

    def partition_node(self, node_id: int) -> None:
        """Make a node unreachable *without* losing its state (network
        partition / planned outage, vs :meth:`crash_node` which loses all
        volatile state).  Used to model a centralized server whose job
        database survives an outage (§1: "the server typically stores the
        state of jobs in a database")."""
        node = self.nodes[node_id]
        if not node.alive:
            return
        node.partition()
        self.trace.record(self.sim.now, "partition", node=node.name)
        self.matchmaker.on_crash(node)

    def heal_node(self, node_id: int) -> None:
        """Reconnect a partitioned node; its pre-outage state is intact."""
        node = self.nodes[node_id]
        if node.alive:
            return
        node.heal()
        self.trace.record(self.sim.now, "heal", node=node.name)
        self.matchmaker.on_join(node)

    def live_nodes(self) -> list[GridNode]:
        """Live grid nodes, in ``node_list`` order.

        Returns a cached list (rebuilt only after a liveness change);
        callers must treat it as read-only.
        """
        live = self._live_cache
        if live is None:
            live = self._live_cache = [n for n in self.node_list if n.alive]
        return live

    def _random_live_node(self) -> GridNode | None:
        live = self.live_nodes()
        if not live:
            return None
        rng = self.streams["inject"]
        return live[int(rng.integers(0, len(live)))]

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------

    def on_queue_change(self, node: GridNode) -> None:
        self.registry.queue_len[node._reg_idx] = node.queue_len
        self.matchmaker.note_queue_change(node)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------

    def run(self, until: float | None = None) -> int:
        return self.sim.run(until=until)

    def run_until_done(self, max_time: float = DEFAULT_MAX_TIME,
                       chunk: float = 500.0) -> bool:
        """Advance until every submitted job reached a terminal state.

        Returns True on success, False if ``max_time`` elapsed first.
        Periodic protocol tasks keep the event queue non-empty forever, so
        progress is checked every ``chunk`` of virtual time.
        """
        # The JobTable's settled counter answers "is every job terminal?"
        # in O(1); fall back to the per-job scan when the table is off or
        # does not cover the jobs dict (a guid-colliding re-registration
        # could desynchronize them — never in practice, cheap to guard).
        jt = self.job_table
        use_table = jt is not None
        while self.sim.now < max_time:
            if use_table and jt.n == len(self.jobs):
                settled = jt.all_settled
            else:
                settled = all(j.is_done or j.state is JobState.LOST
                              for j in self.jobs.values())
            if settled and self.jobs:
                return True
            if self.sim.peek_time() is None:
                # Queue drained: nothing can change any more.
                return settled
            self.sim.run(until=min(self.sim.now + chunk, max_time))
        return False

    def node_execution_counts(self) -> list[int]:
        """Jobs executed per node (load-balance / fairness metric)."""
        return self.registry.execution_counts()
