"""Streaming and summary statistics used by the metrics layer.

The paper reports average and standard deviation of job wait times
(Figure 2).  :class:`RunningStats` implements Welford's numerically stable
online algorithm so the simulator never needs to retain every sample, and
:func:`summarize` produces the full summary (mean/std/percentiles) from a
retained sample vector when one is available.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


class RunningStats:
    """Welford online mean/variance with min/max tracking."""

    __slots__ = ("count", "_mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        """Incorporate one sample."""
        x = float(x)
        if math.isnan(x):
            raise ValueError("cannot add NaN sample")
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def extend(self, xs) -> None:
        for x in xs:
            self.add(x)

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Population variance (ddof=0), matching ``numpy.std`` defaults."""
        return self._m2 / self.count if self.count else math.nan

    @property
    def std(self) -> float:
        v = self.variance
        return math.sqrt(v) if v == v else math.nan  # NaN-propagating

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Combine two disjoint sample sets (Chan et al. parallel update)."""
        out = RunningStats()
        if self.count == 0:
            out.count, out._mean, out._m2 = other.count, other._mean, other._m2
            out.min, out.max = other.min, other.max
            return out
        if other.count == 0:
            out.count, out._mean, out._m2 = self.count, self._mean, self._m2
            out.min, out.max = self.min, self.max
            return out
        n = self.count + other.count
        delta = other._mean - self._mean
        out.count = n
        out._mean = self._mean + delta * other.count / n
        out._m2 = self._m2 + other._m2 + delta * delta * self.count * other.count / n
        out.min = min(self.min, other.min)
        out.max = max(self.max, other.max)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RunningStats(n={self.count}, mean={self.mean:.4g}, "
            f"std={self.std:.4g}, min={self.min:.4g}, max={self.max:.4g})"
        )


@dataclass(frozen=True)
class Summary:
    """Full sample summary, including percentiles."""

    count: int
    mean: float
    std: float
    min: float
    p25: float
    median: float
    p75: float
    p95: float
    p99: float
    max: float

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.min,
            "p25": self.p25,
            "median": self.median,
            "p75": self.p75,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }


def summarize(samples) -> Summary:
    """Summarize a sample vector (mean, std ddof=0, percentiles)."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        nan = math.nan
        return Summary(0, nan, nan, nan, nan, nan, nan, nan, nan, nan)
    q = np.percentile(arr, [25, 50, 75, 95, 99])
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        min=float(arr.min()),
        p25=float(q[0]),
        median=float(q[1]),
        p75=float(q[2]),
        p95=float(q[3]),
        p99=float(q[4]),
        max=float(arr.max()),
    )


def jains_fairness(loads) -> float:
    """Jain's fairness index of a load vector; 1.0 = perfectly balanced.

    Used as a load-balance metric alongside wait-time stdev.  Defined as
    ``(sum x)^2 / (n * sum x^2)``; ranges from 1/n (all load on one node)
    to 1 (uniform).
    """
    arr = np.asarray(list(loads), dtype=float)
    if arr.size == 0:
        return math.nan
    denom = arr.size * float((arr * arr).sum())
    if denom == 0.0:
        return 1.0  # all-zero load is trivially balanced
    total = float(arr.sum())
    return total * total / denom
