"""Globally Unique IDentifiers (GUIDs) and circular identifier-space math.

The paper assumes an underlying DHT whose hash function maps arbitrary
identifiers (node names, job names) uniformly onto an m-bit circular
identifier space.  Chord and Kademlia both work directly on this space;
CAN derives d-dimensional coordinates separately (see
:mod:`repro.dht.can.space`).

All helpers here are pure functions on integers so they can be tested
exhaustively and property-tested with hypothesis.
"""

from __future__ import annotations

import hashlib

#: Number of bits in a GUID.  64 bits keeps collision probability negligible
#: for simulated populations (birthday bound ~ 2**32 entities) while staying
#: inside a machine word.
GUID_BITS = 64

#: Size of the identifier space, ``2 ** GUID_BITS``.
GUID_SPACE = 1 << GUID_BITS

_MASK = GUID_SPACE - 1


def guid_for(name: str | bytes, *, bits: int = GUID_BITS) -> int:
    """Hash an arbitrary identifier onto the ``bits``-bit GUID space.

    Uses SHA-1 (the hash Chord and CAN were specified with) truncated to the
    requested width.  Deterministic across runs and platforms.
    """
    if isinstance(name, str):
        name = name.encode("utf-8")
    digest = hashlib.sha1(name).digest()
    return int.from_bytes(digest[: (bits + 7) // 8], "big") & ((1 << bits) - 1)


def random_guid(rng, *, bits: int = GUID_BITS) -> int:
    """Draw a uniform random GUID from a ``numpy.random.Generator``."""
    # Draw two 32-bit halves to stay inside numpy's uint64-safe integers.
    hi = int(rng.integers(0, 1 << min(32, bits)))
    if bits <= 32:
        return hi
    lo = int(rng.integers(0, 1 << (bits - 32)))
    return (hi << (bits - 32)) | lo


def ring_add(a: int, b: int, *, bits: int = GUID_BITS) -> int:
    """``(a + b) mod 2**bits``."""
    return (a + b) & ((1 << bits) - 1)


def ring_distance(a: int, b: int, *, bits: int = GUID_BITS) -> int:
    """Clockwise distance from ``a`` to ``b`` on the ring."""
    return (b - a) & ((1 << bits) - 1)


def ring_between(x: int, a: int, b: int) -> bool:
    """True iff ``x`` lies in the open clockwise interval ``(a, b)``.

    The interval wraps: ``ring_between(1, 250, 5)`` is True on a small ring.
    When ``a == b`` the interval is the whole ring minus the endpoint, which
    is the degenerate-single-node convention Chord needs.
    """
    if a < b:
        return a < x < b
    return x > a or x < b


def ring_between_right_inclusive(x: int, a: int, b: int) -> bool:
    """True iff ``x`` lies in the clockwise interval ``(a, b]``."""
    if x == b:
        return True
    return ring_between(x, a, b)
