"""Named, reproducible random-number streams.

Every stochastic component of the simulator (workload arrivals, node
capabilities, overlay coordinates, failure injection, ...) draws from its
own named stream derived from a single experiment seed.  This gives two
properties the experiment harness relies on:

* **Determinism** — the same seed reproduces the same trace, bit for bit.
* **Isolation** — adding draws to one component (say, enabling heartbeats)
  does not perturb another component's stream, so A/B comparisons between
  matchmakers see *identical* workloads.
"""

from __future__ import annotations

import numpy as np


class RngStreams:
    """A family of independent ``numpy.random.Generator`` streams.

    Streams are created lazily by name via :meth:`stream` and cached, so
    repeated requests for the same name return the same generator object
    (which therefore advances as it is used — a stream is a stateful
    sequence, not a fresh generator per call).
    """

    def __init__(self, seed: int):
        if not isinstance(seed, int) or seed < 0:
            raise ValueError(f"seed must be a non-negative int, got {seed!r}")
        self.seed = seed
        self._root = np.random.SeedSequence(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            # Derive a child seed deterministically from (seed, name) so the
            # mapping does not depend on request order.
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=(_name_key(name),),
            )
            gen = np.random.default_rng(child)
            self._streams[name] = gen
        return gen

    def __getitem__(self, name: str) -> np.random.Generator:
        return self.stream(name)

    def fork(self, salt: int) -> "RngStreams":
        """Derive an independent family (e.g. one per experiment replicate)."""
        return RngStreams((self.seed * 0x9E3779B1 + salt + 1) & 0x7FFFFFFF)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngStreams(seed={self.seed}, streams={sorted(self._streams)})"


def _name_key(name: str) -> int:
    """Stable 63-bit key for a stream name (not Python's salted ``hash``)."""
    key = 0xCBF29CE484222325  # FNV-1a
    for byte in name.encode("utf-8"):
        key ^= byte
        key = (key * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return key & 0x7FFFFFFFFFFFFFFF
