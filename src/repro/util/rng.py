"""Named, reproducible random-number streams.

Every stochastic component of the simulator (workload arrivals, node
capabilities, overlay coordinates, failure injection, ...) draws from its
own named stream derived from a single experiment seed.  This gives two
properties the experiment harness relies on:

* **Determinism** — the same seed reproduces the same trace, bit for bit.
* **Isolation** — adding draws to one component (say, enabling heartbeats)
  does not perturb another component's stream, so A/B comparisons between
  matchmakers see *identical* workloads.

Scalar ``Generator`` calls cost ~1 µs each in CPython — measurable when a
latency model samples per message hop.  The chunked samplers below
(:class:`ChunkedUniform`, :class:`ChunkedLognormal`) pre-draw vectorized
blocks from the *same* stream instead.  numpy's vectorized draws consume
the bit generator exactly as repeated scalar draws do (asserted in
``tests/util/test_rng_blocks.py``), so the values a consumer sees are
bit-identical — only the wall-clock cost changes.  The one caveat: a
chunked sampler must be the stream's *only* consumer (a block pre-draw
advances the underlying generator ahead of what was handed out), which
is why shared streams get one family-cached sampler via
:meth:`RngStreams.uniform_sampler`.
"""

from __future__ import annotations

import numpy as np

#: Default block size for chunked samplers (overridable per grid via
#: ``GridConfig.rng_chunk``).  Big enough to amortize the vectorized-draw
#: fixed cost, small enough that short runs don't over-draw noticeably.
DEFAULT_CHUNK = 1024


class ChunkedUniform:
    """Block-drawing standard-uniform sampler over one ``Generator``.

    :meth:`uniform` returns ``low + (high - low) * u`` for the next
    pre-drawn standard uniform ``u`` — bit-identical to a scalar
    ``Generator.uniform(low, high)`` call, which numpy computes with the
    same expression over one ``next_double``.  Varying bounds per call are
    therefore fine; the block only fixes the *standard* variates.
    """

    __slots__ = ("rng", "chunk", "_buf", "_i")

    def __init__(self, rng: np.random.Generator, chunk: int = DEFAULT_CHUNK):
        if chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk!r}")
        self.rng = rng
        self.chunk = chunk
        self._buf: list[float] = []
        self._i = 0

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        i = self._i
        if i == len(self._buf):
            # .tolist() converts once to Python floats so the per-draw
            # scaling below runs without numpy scalar boxing.
            self._buf = self.rng.random(self.chunk).tolist()
            i = 0
        self._i = i + 1
        return low + (high - low) * self._buf[i]


class ChunkedLognormal:
    """Block-drawing ``lognormal(mu, sigma)`` sampler over one ``Generator``.

    Parameters are fixed at construction (the hot callers — latency models
    — draw from one distribution), so refills are single vectorized
    ``Generator.lognormal`` calls that consume the stream exactly like the
    equivalent scalar sequence.
    """

    __slots__ = ("rng", "mu", "sigma", "chunk", "_buf", "_i")

    def __init__(self, rng: np.random.Generator, mu: float, sigma: float,
                 chunk: int = DEFAULT_CHUNK):
        if chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk!r}")
        self.rng = rng
        self.mu = mu
        self.sigma = sigma
        self.chunk = chunk
        self._buf: list[float] = []
        self._i = 0

    def sample(self) -> float:
        i = self._i
        if i == len(self._buf):
            self._buf = self.rng.lognormal(self.mu, self.sigma,
                                           self.chunk).tolist()
            i = 0
        self._i = i + 1
        return self._buf[i]

    def sum_clipped(self, n: int, minimum: float) -> float:
        """Sum of the next ``n`` variates, each floored at ``minimum``.

        Bit-identical to ``n`` sequential :meth:`sample` calls floored and
        added left-to-right (same block buffer, same float-addition
        order) — it just skips ``n - 1`` Python call frames.  Multi-hop
        route latency is the hot caller.
        """
        total = 0.0
        i = self._i
        buf = self._buf
        while n > 0:
            if i == len(buf):
                buf = self._buf = self.rng.lognormal(self.mu, self.sigma,
                                                     self.chunk).tolist()
                i = 0
            stop = i + n
            if stop > len(buf):
                stop = len(buf)
            for v in buf[i:stop]:
                total += v if v > minimum else minimum
            n -= stop - i
            i = stop
        self._i = i
        return total


class RngStreams:
    """A family of independent ``numpy.random.Generator`` streams.

    Streams are created lazily by name via :meth:`stream` and cached, so
    repeated requests for the same name return the same generator object
    (which therefore advances as it is used — a stream is a stateful
    sequence, not a fresh generator per call).
    """

    def __init__(self, seed: int):
        if not isinstance(seed, int) or seed < 0:
            raise ValueError(f"seed must be a non-negative int, got {seed!r}")
        self.seed = seed
        self._root = np.random.SeedSequence(seed)
        self._streams: dict[str, np.random.Generator] = {}
        self._samplers: dict[str, ChunkedUniform] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            # Derive a child seed deterministically from (seed, name) so the
            # mapping does not depend on request order.
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=(_name_key(name),),
            )
            gen = np.random.default_rng(child)
            self._streams[name] = gen
        return gen

    def __getitem__(self, name: str) -> np.random.Generator:
        return self.stream(name)

    def uniform_sampler(self, name: str,
                        chunk: int = DEFAULT_CHUNK) -> ChunkedUniform:
        """The family-wide :class:`ChunkedUniform` over ``stream(name)``.

        Cached per name so every consumer of a shared stream draws through
        the *same* block buffer — the requirement for block draws to stay
        bit-identical to interleaved scalar draws.  ``chunk`` applies only
        on first creation; later calls return the cached sampler as-is.
        """
        sampler = self._samplers.get(name)
        if sampler is None:
            sampler = self._samplers[name] = ChunkedUniform(
                self.stream(name), chunk)
        return sampler

    def fork(self, salt: int) -> "RngStreams":
        """Derive an independent family (e.g. one per experiment replicate)."""
        return RngStreams((self.seed * 0x9E3779B1 + salt + 1) & 0x7FFFFFFF)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngStreams(seed={self.seed}, streams={sorted(self._streams)})"


def _name_key(name: str) -> int:
    """Stable 63-bit key for a stream name (not Python's salted ``hash``)."""
    key = 0xCBF29CE484222325  # FNV-1a
    for byte in name.encode("utf-8"):
        key ^= byte
        key = (key * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return key & 0x7FFFFFFFFFFFFFFF
