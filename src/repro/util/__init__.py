"""Shared utilities: identifier hashing, RNG stream management, statistics."""

from repro.util.ids import (
    GUID_BITS,
    GUID_SPACE,
    guid_for,
    random_guid,
    ring_add,
    ring_between,
    ring_distance,
)
from repro.util.rng import RngStreams
from repro.util.stats import RunningStats, summarize

__all__ = [
    "GUID_BITS",
    "GUID_SPACE",
    "guid_for",
    "random_guid",
    "ring_add",
    "ring_between",
    "ring_distance",
    "RngStreams",
    "RunningStats",
    "summarize",
]
