"""Point-to-point message delivery over the simulated network.

The grid layer's direct connections (heartbeats, owner<->run-node control
messages, result return — §2 of the paper notes these bypass the overlay
"for efficiency ... for example by a socket connection") are modeled here:
a message to a live endpoint is delivered after a sampled latency; a
message to a dead endpoint is silently dropped, exactly like a TCP RST /
timeout in the real system.  Failure *detection* therefore happens where it
does in the paper — in the protocol layer, via missed heartbeats — not by
oracle.

DHT routing hops are accounted separately by the overlays (see
:mod:`repro.dht.base`); they use :meth:`Network.hop_latency` so both kinds
of traffic share one latency model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Protocol

import numpy as np

from repro.sim.kernel import Simulator


class Endpoint(Protocol):
    """Anything addressable on the network."""

    node_id: int

    @property
    def alive(self) -> bool: ...

    def handle_message(self, msg: "Message") -> None: ...


@dataclass
class Message:
    """An application message.

    ``kind`` is a short protocol tag (e.g. ``"heartbeat"``); ``payload`` is
    protocol-specific.  ``src`` is the sender's node id so receivers can
    reply without holding object references.
    """

    kind: str
    src: int
    dst: int
    payload: Any = None
    send_time: float = 0.0


class LatencyModel:
    """Per-hop network latency distribution.

    Defaults model a wide-area overlay: latency ~ mean 0.05 s with modest
    lognormal jitter, floored at ``minimum``.  A ``jitter`` of 0 makes the
    model deterministic (useful in unit tests).
    """

    def __init__(self, mean: float = 0.05, jitter: float = 0.3, minimum: float = 0.002):
        if mean <= 0:
            raise ValueError("mean latency must be positive")
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        self.mean = mean
        self.jitter = jitter
        self.minimum = minimum

    def sample(self, rng: np.random.Generator) -> float:
        if self.jitter == 0.0:
            return max(self.mean, self.minimum)
        # Lognormal with the requested mean: E[lognormal(mu, s)] = exp(mu + s^2/2)
        s = self.jitter
        mu = np.log(self.mean) - 0.5 * s * s
        return max(float(rng.lognormal(mu, s)), self.minimum)


@dataclass
class NetworkStats:
    sent: int = 0
    delivered: int = 0
    dropped_dead_dst: int = 0
    dropped_dead_src: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)


class Network:
    """Delivers messages between registered endpoints with latency.

    Endpoints register by node id.  Liveness is re-checked at delivery time:
    a message in flight to a node that dies before arrival is dropped, and a
    message from a node that died after sending is still delivered (it was
    already on the wire) — matching real datagram semantics.
    """

    def __init__(self, sim: Simulator, rng: np.random.Generator,
                 latency: LatencyModel | None = None, telemetry=None):
        self.sim = sim
        self.rng = rng
        self.latency = latency or LatencyModel()
        self._endpoints: dict[int, Endpoint] = {}
        self.stats = NetworkStats()
        #: Optional :class:`repro.telemetry.core.Telemetry` sink (None = off);
        #: per-kind message counters plus (filtered-in) per-message events.
        self.telemetry = telemetry if telemetry is not None \
            and telemetry.enabled else None

    # -- membership ------------------------------------------------------

    def register(self, endpoint: Endpoint) -> None:
        if endpoint.node_id in self._endpoints:
            raise ValueError(f"endpoint {endpoint.node_id} already registered")
        self._endpoints[endpoint.node_id] = endpoint

    def unregister(self, node_id: int) -> None:
        self._endpoints.pop(node_id, None)

    def endpoint(self, node_id: int) -> Endpoint | None:
        return self._endpoints.get(node_id)

    def is_alive(self, node_id: int) -> bool:
        ep = self._endpoints.get(node_id)
        return ep is not None and ep.alive

    # -- messaging -------------------------------------------------------

    def hop_latency(self) -> float:
        """Sample one hop's latency (shared with DHT routing accounting)."""
        return self.latency.sample(self.rng)

    def send(self, kind: str, src: int, dst: int, payload: Any = None,
             on_delivered: Callable[[Message], None] | None = None) -> Message | None:
        """Send a message; returns it, or None if the sender is already dead.

        Delivery (or drop) happens after one sampled latency.  There is no
        delivery acknowledgement at this layer; protocols that need one send
        an explicit reply.
        """
        src_ep = self._endpoints.get(src)
        if src_ep is not None and not src_ep.alive:
            self.stats.dropped_dead_src += 1
            return None
        msg = Message(kind=kind, src=src, dst=dst, payload=payload,
                      send_time=self.sim.now)
        self.stats.sent += 1
        self.stats.by_kind[kind] = self.stats.by_kind.get(kind, 0) + 1
        tel = self.telemetry
        if tel is not None:
            tel.metrics.counter(f"net.sent.{kind}").inc()
            if tel.bus.wants("net.msg"):
                tel.bus.record(self.sim.now, "net.msg", kind=kind,
                               src=src, dst=dst)
        self.sim.schedule(self.hop_latency(), self._deliver, msg, on_delivered)
        return msg

    def _deliver(self, msg: Message,
                 on_delivered: Callable[[Message], None] | None) -> None:
        dst_ep = self._endpoints.get(msg.dst)
        if dst_ep is None or not dst_ep.alive:
            self.stats.dropped_dead_dst += 1
            if self.telemetry is not None:
                self.telemetry.metrics.counter("net.dropped").inc()
            return
        self.stats.delivered += 1
        if self.telemetry is not None:
            self.telemetry.metrics.counter("net.delivered").inc()
        dst_ep.handle_message(msg)
        if on_delivered is not None:
            on_delivered(msg)
