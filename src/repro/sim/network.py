"""Point-to-point message delivery over the simulated network.

The grid layer's direct connections (heartbeats, owner<->run-node control
messages, result return — §2 of the paper notes these bypass the overlay
"for efficiency ... for example by a socket connection") are modeled here:
a message to a live endpoint is delivered after a sampled latency; a
message to a dead endpoint is silently dropped, exactly like a TCP RST /
timeout in the real system.  Failure *detection* therefore happens where it
does in the paper — in the protocol layer, via missed heartbeats — not by
oracle.

DHT routing hops are accounted separately by the overlays (see
:mod:`repro.dht.base`); they use :meth:`Network.hop_latency` so both kinds
of traffic share one latency model.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol

import numpy as np

from repro.sim.kernel import Simulator
from repro.util.rng import DEFAULT_CHUNK, ChunkedLognormal


class Endpoint(Protocol):
    """Anything addressable on the network."""

    node_id: int

    @property
    def alive(self) -> bool: ...

    def handle_message(self, msg: "Message") -> None: ...


@dataclass(slots=True)
class Message:
    """An application message.

    ``kind`` is a short protocol tag (e.g. ``"heartbeat"``); ``payload`` is
    protocol-specific.  ``src`` is the sender's node id so receivers can
    reply without holding object references.  Slotted: one is allocated
    per send, so the per-instance ``__dict__`` was pure overhead.

    ``trace`` is the causal trace context ``(trace_id, parent_span_id)``
    riding along purely for telemetry: a receiver that emits records on
    behalf of this message stamps them with it, so remote-node records
    link into the originating job's span tree.  It is None whenever
    telemetry is off and is never consulted by delivery itself — carrying
    it cannot perturb the simulation.
    """

    kind: str
    src: int
    dst: int
    payload: Any = None
    send_time: float = 0.0
    trace: tuple[int, int | None] | None = None


class LatencyModel:
    """Per-hop network latency distribution.

    Defaults model a wide-area overlay: latency ~ mean 0.05 s with modest
    lognormal jitter, floored at ``minimum``.  A ``jitter`` of 0 makes the
    model deterministic (useful in unit tests).

    Sampling draws lognormal variates in pre-drawn blocks of ``chunk``
    (see :class:`repro.util.rng.ChunkedLognormal`) — bit-identical values
    to scalar draws from the same generator, at a fraction of the cost.
    The block buffer requires the model to be the generator's only
    consumer, which holds for every stream wired here (``"network"`` is
    sampled exclusively through :meth:`Network.hop_latency`).
    """

    def __init__(self, mean: float = 0.05, jitter: float = 0.3,
                 minimum: float = 0.002, chunk: int = DEFAULT_CHUNK):
        if mean <= 0:
            raise ValueError("mean latency must be positive")
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        self.mean = mean
        self.jitter = jitter
        self.minimum = minimum
        self.chunk = chunk
        # Lognormal with the requested mean: E[lognormal(mu, s)] = exp(mu + s^2/2)
        self._mu = math.log(mean) - 0.5 * jitter * jitter
        self._floor = mean if mean > minimum else minimum
        #: id(rng) -> (rng, bound draw) so the public per-call API reuses
        #: one block sampler per generator (the rng is kept alive so its
        #: id cannot be recycled).
        self._draws: dict[int, tuple[np.random.Generator, Callable[[], float]]] = {}

    def sampler_for(self, rng: np.random.Generator) -> Callable[[], float]:
        """A zero-arg bound sampler over ``rng`` (the hot-path form)."""
        return self.samplers_for(rng)[0]

    def samplers_for(self, rng: np.random.Generator
                     ) -> tuple[Callable[[], float], Callable[[int], float]]:
        """``(draw, draw_sum)`` over one shared block buffer.

        ``draw()`` samples one hop; ``draw_sum(hops)`` sums ``hops``
        consecutive samples (floored per hop) in draw order —
        bit-identical to ``hops`` sequential ``draw()`` calls, minus the
        per-hop Python call overhead.  Both must stay the generator's
        only consumers, which holds because they share one sampler.
        """
        if self.jitter == 0.0:
            floor = self._floor
            return (lambda: floor), (lambda hops: hops * floor)
        sampler = ChunkedLognormal(rng, self._mu, self.jitter, self.chunk)
        sample = sampler.sample
        sum_clipped = sampler.sum_clipped
        minimum = self.minimum

        def draw() -> float:
            v = sample()
            return v if v > minimum else minimum

        def draw_sum(hops: int) -> float:
            return sum_clipped(hops, minimum)

        return draw, draw_sum

    def sample(self, rng: np.random.Generator) -> float:
        if self.jitter == 0.0:
            return self._floor
        entry = self._draws.get(id(rng))
        if entry is None or entry[0] is not rng:
            # New generator: start a fresh block sampler for it.  (An
            # interleaved A/B/A pattern would restart A's buffer — no
            # caller does that; each model serves one generator.)
            draw = self.sampler_for(rng)
            self._draws[id(rng)] = (rng, draw)
        else:
            draw = entry[1]
        return draw()


@dataclass
class NetworkStats:
    sent: int = 0
    delivered: int = 0
    dropped_dead_dst: int = 0
    dropped_dead_src: int = 0
    #: Messages by protocol tag.  A defaultdict so the send path updates
    #: it with one indexed ``+= 1`` instead of a get-probe + store.
    by_kind: dict[str, int] = field(default_factory=lambda: defaultdict(int))


class Network:
    """Delivers messages between registered endpoints with latency.

    Endpoints register by node id.  Liveness is re-checked at delivery time:
    a message in flight to a node that dies before arrival is dropped, and a
    message from a node that died after sending is still delivered (it was
    already on the wire) — matching real datagram semantics.
    """

    def __init__(self, sim: Simulator, rng: np.random.Generator,
                 latency: LatencyModel | None = None, telemetry=None,
                 pool_messages: bool = False):
        self.sim = sim
        self.rng = rng
        self.latency = latency or LatencyModel()
        self._endpoints: dict[int, Endpoint] = {}
        self.stats = NetworkStats()
        #: Message freelist (None = pooling off).  When enabled, a
        #: delivered (or dropped) envelope is scrubbed and reused by a
        #: later send instead of allocating a fresh ``Message`` — at 10k
        #: nodes the heartbeat/ack fast path otherwise allocates one
        #: slotted object per protocol message.  Opt-in because it
        #: requires every endpoint (and ``on_delivered`` callback) not to
        #: retain the message past its handler; the grid's endpoints
        #: honor that, arbitrary test doubles may not.  Messages sent
        #: with ``on_delivered`` are never pooled (the callback may
        #: legitimately keep them).
        self._pool: list[Message] | None = [] if pool_messages else None
        #: Optional :class:`repro.telemetry.core.Telemetry` sink (None = off);
        #: per-kind message counters plus (filtered-in) per-message events.
        self.telemetry = telemetry if telemetry is not None \
            and telemetry.enabled else None
        #: Bound block samplers over the latency model + this rng — the
        #: only readers of the stream (they share one block buffer), so
        #: block draws stay bit-identical.
        self._draw_latency, self._draw_latency_sum = \
            self.latency.samplers_for(rng)
        # Telemetry fast path: resolve counter objects and the bus filter
        # once instead of per message (f-string + registry probe per send
        # showed up in profiles).  ``_sent_counters`` fills lazily per kind.
        self._sent_counters: dict[str, Any] = {}
        if self.telemetry is not None:
            metrics = self.telemetry.metrics
            self._ctr_delivered = metrics.counter("net.delivered")
            self._ctr_dropped = metrics.counter("net.dropped")
            self._trace_msgs = self.telemetry.bus.wants("net.msg")
        else:
            self._ctr_delivered = self._ctr_dropped = None
            self._trace_msgs = False

    # -- membership ------------------------------------------------------

    def register(self, endpoint: Endpoint) -> None:
        if endpoint.node_id in self._endpoints:
            raise ValueError(f"endpoint {endpoint.node_id} already registered")
        self._endpoints[endpoint.node_id] = endpoint

    def unregister(self, node_id: int) -> None:
        self._endpoints.pop(node_id, None)

    def endpoint(self, node_id: int) -> Endpoint | None:
        return self._endpoints.get(node_id)

    def is_alive(self, node_id: int) -> bool:
        ep = self._endpoints.get(node_id)
        return ep is not None and ep.alive

    # -- messaging -------------------------------------------------------

    def hop_latency(self) -> float:
        """Sample one hop's latency (shared with DHT routing accounting)."""
        return self._draw_latency()

    def hop_latency_sum(self, hops: int) -> float:
        """Sum of ``hops`` independent hop latencies, summed in draw order
        (bit-identical to ``sum(hop_latency() for _ in range(hops))``)."""
        return self._draw_latency_sum(hops)

    def send(self, kind: str, src: int, dst: int, payload: Any = None,
             on_delivered: Callable[[Message], None] | None = None,
             trace: tuple[int, int | None] | None = None) -> Message | None:
        """Send a message; returns it, or None if the sender is already dead.

        Delivery (or drop) happens after one sampled latency.  There is no
        delivery acknowledgement at this layer; protocols that need one send
        an explicit reply.  ``trace`` is the optional causal context
        carried for telemetry only (see :class:`Message`).
        """
        src_ep = self._endpoints.get(src)
        if src_ep is not None and not src_ep.alive:
            self.stats.dropped_dead_src += 1
            return None
        sim = self.sim
        pool = self._pool
        if pool:
            msg = pool.pop()
            msg.kind = kind
            msg.src = src
            msg.dst = dst
            msg.payload = payload
            msg.send_time = sim.now
            msg.trace = trace
        else:
            msg = Message(kind, src, dst, payload, sim.now, trace)
        stats = self.stats
        stats.sent += 1
        stats.by_kind[kind] += 1
        tel = self.telemetry
        if tel is not None:
            ctr = self._sent_counters.get(kind)
            if ctr is None:
                ctr = self._sent_counters[kind] = \
                    tel.metrics.counter(f"net.sent.{kind}")
            ctr.inc()
            if self._trace_msgs:
                if trace is None:
                    tel.bus.record(sim.now, "net.msg", kind=kind,
                                   src=src, dst=dst)
                else:
                    tel.bus.record(sim.now, "net.msg", kind=kind,
                                   src=src, dst=dst, trace=trace[0])
        # post(): deliveries are never cancelled, so the kernel's
        # handle-free fast path applies (no EventHandle allocation, no
        # post-fire slot clearing) — this is the hottest schedule site in
        # every message-driven run.
        sim.post(self._draw_latency(), self._deliver, msg, on_delivered)
        return msg

    def _deliver(self, msg: Message,
                 on_delivered: Callable[[Message], None] | None) -> None:
        dst_ep = self._endpoints.get(msg.dst)
        if dst_ep is None or not dst_ep.alive:
            self.stats.dropped_dead_dst += 1
            if self._ctr_dropped is not None:
                self._ctr_dropped.inc()
            self._recycle(msg, on_delivered)
            return
        self.stats.delivered += 1
        if self._ctr_delivered is not None:
            self._ctr_delivered.inc()
        dst_ep.handle_message(msg)
        if on_delivered is not None:
            on_delivered(msg)
        elif self._pool is not None:
            self._recycle(msg, None)

    #: Freelist cap — enough to absorb the largest in-flight burst worth
    #: reusing without pinning an unbounded high-water mark forever.
    _POOL_MAX = 4096

    def _recycle(self, msg: Message,
                 on_delivered: Callable[[Message], None] | None) -> None:
        """Scrub a finished envelope and return it to the freelist.

        Skipped when pooling is off or the sender attached an
        ``on_delivered`` callback (the callback may retain the message, so
        mutating it on reuse would corrupt the caller's view).  Payload and
        trace are dropped here so a pooled envelope never pins job objects
        or span trees alive between uses.
        """
        pool = self._pool
        if pool is None or on_delivered is not None \
                or len(pool) >= self._POOL_MAX:
            return
        msg.payload = None
        msg.trace = None
        pool.append(msg)
