"""Discrete-event simulation substrate.

The paper's evaluation (§3.3) is driven by an event-driven simulator that
creates and maintains the P2P network, performs DHT lookups, and executes
the job-lifecycle protocols.  This package provides that substrate:

* :mod:`repro.sim.kernel` — the event loop (virtual clock + binary heap).
* :mod:`repro.sim.network` — point-to-point message delivery with a
  configurable latency model; messages to dead nodes are dropped, which is
  what drives failure detection in the grid layer.
* :mod:`repro.sim.process` — periodic tasks (heartbeats, stabilization).
* :mod:`repro.sim.failure` — churn and crash/recovery injection.
* :mod:`repro.sim.trace` — lightweight structured event tracing.
"""

from repro.sim.kernel import EventHandle, Simulator
from repro.sim.network import LatencyModel, Message, Network
from repro.sim.process import PeriodicTask
from repro.sim.failure import CrashRecoveryProcess, FailureInjector
from repro.sim.trace import TraceRecorder

__all__ = [
    "EventHandle",
    "Simulator",
    "LatencyModel",
    "Message",
    "Network",
    "PeriodicTask",
    "CrashRecoveryProcess",
    "FailureInjector",
    "TraceRecorder",
]
