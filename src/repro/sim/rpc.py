"""Request/response RPC over the simulated network.

The structural DHT model (see :mod:`repro.dht.base`) is the right tool
for the load-balance experiments, but the paper's simulator also studies
"creating and maintaining the network and performing lookups" at the
message level (§3.3).  This layer provides the plumbing for that mode:
asynchronous calls with reply correlation and timeouts, so protocol
implementations (message-level Chord in :mod:`repro.dht.chord.protocol`)
experience real partial failure — a request to a dead peer is silently
dropped and surfaces only as a timeout at the caller.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.sim.kernel import EventHandle, Simulator
from repro.sim.network import Message, Network


@dataclass
class RpcStats:
    calls: int = 0
    replies: int = 0
    timeouts: int = 0
    #: Calls by method name (defaultdict: single-probe update on the hot
    #: call path, same reasoning as ``NetworkStats.by_kind``).
    by_method: dict[str, int] = field(default_factory=lambda: defaultdict(int))


class RpcLayer:
    """Correlates requests and replies between registered servers.

    Servers register a handler per node id; the handler receives
    ``(method, payload, respond)`` and must call ``respond(result)``
    (immediately or later) to answer.  Callers provide ``on_reply`` and
    ``on_timeout`` callbacks — no blocking, everything is event-driven.
    """

    def __init__(self, sim: Simulator, network: Network,
                 default_timeout: float = 1.0, telemetry=None):
        if default_timeout <= 0:
            raise ValueError("default_timeout must be positive")
        self.sim = sim
        self.network = network
        self.default_timeout = default_timeout
        self._next_id = 0
        self._pending: dict[int, tuple[Callable, EventHandle]] = {}
        self._handlers: dict[int, Callable] = {}
        self.stats = RpcStats()
        #: Optional Telemetry sink; call/reply/timeout counters by method.
        self.telemetry = telemetry if telemetry is not None \
            and telemetry.enabled else None
        # Cached counter objects (see Network: per-call f-string + registry
        # probes are the telemetry tax the hot path need not pay twice).
        self._method_counters: dict[str, Any] = {}
        if self.telemetry is not None:
            metrics = self.telemetry.metrics
            self._ctr_calls = metrics.counter("rpc.calls")
            self._ctr_replies = metrics.counter("rpc.replies")
            self._ctr_timeouts = metrics.counter("rpc.timeouts")
            bus = self.telemetry.bus
            self._trace_server = bus.wants("rpc.server")
            self._trace_timeouts = bus.wants("rpc.timeout")
        else:
            self._ctr_calls = self._ctr_replies = self._ctr_timeouts = None
            self._trace_server = self._trace_timeouts = False

    # -- server side -----------------------------------------------------

    def serve(self, node_id: int, handler: Callable[[str, Any, Callable], None]) -> None:
        """Register ``handler(method, payload, respond)`` for ``node_id``."""
        self._handlers[node_id] = handler

    def unserve(self, node_id: int) -> None:
        self._handlers.pop(node_id, None)

    # -- client side -----------------------------------------------------

    def call(self, src: int, dst: int, method: str, payload: Any,
             on_reply: Callable[[Any], None],
             on_timeout: Callable[[], None],
             timeout: float | None = None,
             trace: tuple[int, int | None] | None = None) -> None:
        """Issue an asynchronous request.

        Exactly one of ``on_reply`` / ``on_timeout`` will eventually fire:
        the reply cancels the timeout, and a reply arriving after the
        timeout already fired is discarded (late replies are a real
        phenomenon the caller must not see twice).

        ``trace`` is the optional causal context (telemetry-only): it
        rides the request message so the server-side record parents under
        the caller's span, and comes back on the reply untouched.
        """
        req_id = self._next_id
        self._next_id += 1
        stats = self.stats
        stats.calls += 1
        stats.by_method[method] += 1
        if self._ctr_calls is not None:
            self._ctr_calls.inc()
            ctr = self._method_counters.get(method)
            if ctr is None:
                ctr = self._method_counters[method] = \
                    self.telemetry.metrics.counter(f"rpc.method.{method}")
            ctr.inc()

        def fire_timeout() -> None:
            if req_id in self._pending:
                del self._pending[req_id]
                self.stats.timeouts += 1
                if self._ctr_timeouts is not None:
                    self._ctr_timeouts.inc()
                if self._trace_timeouts:
                    parent = trace[1] if trace is not None else None
                    self.telemetry.bus.span(
                        self.sim.now, "rpc.timeout", parent=parent,
                        trace=trace[0] if trace is not None else None,
                        method=method, src=src, dst=dst)
                on_timeout()

        # Timeouts ride the timer wheel: the overwhelmingly common outcome
        # is a reply cancelling the timeout, which on the wheel is O(1)
        # with no heap tombstone (rpc-heavy runs used to spend compaction
        # passes clearing these).
        handle = self.sim.schedule_timer(timeout or self.default_timeout,
                                         fire_timeout)
        self._pending[req_id] = (on_reply, handle)
        self.network.send("rpc-req", src, dst, (req_id, method, payload),
                          trace=trace)

    # -- message plumbing (called by endpoint adapters) ---------------------

    def handle_message(self, owner_id: int, msg: Message) -> bool:
        """Dispatch an rpc message addressed to ``owner_id``.

        Returns True if the message was an RPC message (handled), False
        otherwise so the endpoint can dispatch it elsewhere.
        """
        if msg.kind == "rpc-req":
            req_id, method, payload = msg.payload
            handler = self._handlers.get(owner_id)
            if handler is None:
                return True  # no server (e.g. crashed): drop => caller times out
            src = msg.src
            trace = msg.trace
            if self._trace_server and trace is not None:
                # Zero-duration marker: the server handled this request at
                # this instant, parented under the *caller's* span — the
                # cross-node stitch that makes remote work attributable.
                self.telemetry.bus.span(
                    self.sim.now, "rpc.server", parent=trace[1],
                    trace=trace[0], method=method, node=owner_id, src=src)

            def respond(result: Any) -> None:
                self.network.send("rpc-rep", owner_id, src, (req_id, result),
                                  trace=trace)

            handler(method, payload, respond)
            return True
        if msg.kind == "rpc-rep":
            req_id, result = msg.payload
            pending = self._pending.pop(req_id, None)
            if pending is not None:
                on_reply, timeout_handle = pending
                timeout_handle.cancel()
                self.stats.replies += 1
                if self._ctr_replies is not None:
                    self._ctr_replies.inc()
                on_reply(result)
            return True
        return False
