"""Structured event tracing (legacy shim over the telemetry bus).

Historically this module owned a bare ``TraceRecorder`` list; it is now
folded into :class:`repro.telemetry.bus.TelemetryBus`, which adds
hierarchical spans, an optional ``maxlen`` ring-buffer bound, and JSONL
export.  ``TraceRecorder`` remains as the name grid components use for a
plain event sink, and :data:`NULL_TRACE` stays a true zero-cost no-op:
``record()`` starts with a single ``enabled`` check and returns before
touching the detail dict.

Tracing defaults to off (the shared no-op recorder) because at paper
scale (thousands of jobs, millions of events) recording everything would
dominate runtime; experiments switch on exactly the categories they
analyse — see :mod:`repro.telemetry` for the category catalogue.
"""

from __future__ import annotations

from repro.telemetry.bus import NULL_BUS, TelemetryBus, TraceEvent, TraceRecord

#: The event-trace sink grid components are handed.  One class: a
#: TraceRecorder *is* a telemetry bus (same buffer, same filtering).
TraceRecorder = TelemetryBus

#: Shared do-nothing recorder for components constructed without tracing.
NULL_TRACE = NULL_BUS

__all__ = ["NULL_TRACE", "TraceRecord", "TraceRecorder", "TraceEvent"]
