"""Structured event tracing.

A :class:`TraceRecorder` collects ``(time, category, detail)`` records from
any component that is handed one.  Tracing defaults to off (a no-op
recorder) because at paper scale (thousands of jobs, millions of events)
recording everything would dominate runtime; experiments switch on exactly
the categories they analyse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable


@dataclass(frozen=True)
class TraceRecord:
    time: float
    category: str
    detail: dict[str, Any]


class TraceRecorder:
    """Collects trace records, optionally filtered by category."""

    def __init__(self, categories: Iterable[str] | None = None, enabled: bool = True):
        self.enabled = enabled
        self.categories = set(categories) if categories is not None else None
        self.records: list[TraceRecord] = []

    def record(self, time: float, category: str, **detail: Any) -> None:
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        self.records.append(TraceRecord(time, category, detail))

    def by_category(self, category: str) -> list[TraceRecord]:
        return [r for r in self.records if r.category == category]

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)


#: Shared do-nothing recorder for components constructed without tracing.
NULL_TRACE = TraceRecorder(enabled=False)
