"""The discrete-event simulation kernel.

A :class:`Simulator` owns a virtual clock and a binary-heap event queue.
Components schedule callbacks at future virtual times; :meth:`Simulator.run`
pops events in time order and invokes them.  Ties are broken by insertion
order (FIFO), which makes traces deterministic.

The kernel is deliberately minimal — no coroutines, no channels — because
profiling showed that a plain ``heapq`` of ``(time, seq, handle)`` tuples is
the fastest portable event loop in CPython, and every higher-level
abstraction (periodic tasks, message delivery, job execution) composes out
of one-shot callbacks.

Cancelled events stay in the heap as tombstones (removing an arbitrary
heap entry is O(n)); the kernel counts them and compacts the heap —
filter + re-heapify, O(n) — once tombstones outnumber live entries, so
long churny runs with many cancelled timeouts stop paying log-of-garbage
on every pop.  Compaction never reorders live events: (time, seq) keys
are unique, so the re-heapified queue pops in exactly the same order.
"""

from __future__ import annotations

import heapq
import math
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.profile import KernelProfile

#: Compaction trigger floor: below this many tombstones the dead entries
#: cost less than the scan, so the kernel leaves the heap alone.
COMPACT_MIN_TOMBSTONES = 64


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("time", "fn", "args", "cancelled", "sim")

    def __init__(self, time: float, fn: Callable, args: tuple,
                 sim: "Simulator | None" = None):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        #: Owning simulator while the entry is live in a heap (None once
        #: fired or cancelled) — lets cancel() feed tombstone accounting.
        self.sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; safe after firing."""
        if self.cancelled:
            return
        self.cancelled = True
        # Drop references so cancelled-but-still-heaped events don't pin
        # large object graphs (e.g. whole jobs) in memory.
        self.fn = None
        self.args = ()
        sim = self.sim
        if sim is not None:
            self.sim = None
            sim._note_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.6g}, {state})"


class Simulator:
    """Virtual-time event loop.

    Parameters
    ----------
    start_time:
        Initial value of the virtual clock (seconds).
    """

    def __init__(self, start_time: float = 0.0):
        self.now = float(start_time)
        self._heap: list[tuple[float, int, EventHandle]] = []
        self._seq = 0
        self._tombstones = 0  # cancelled entries still in the heap
        self.events_processed = 0
        self.events_scheduled = 0
        self.compactions = 0
        self._running = False
        #: Opt-in event-loop profiling (see :mod:`repro.telemetry.profile`).
        #: None keeps the original tight loop — the zero-overhead path is
        #: one ``is None`` check per :meth:`run` call, not per event.
        self.profile: "KernelProfile | None" = None

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        # Inlined schedule_at (this is the hottest scheduling entry point;
        # delay >= 0 already guarantees time >= now).
        time = self.now + delay
        if math.isnan(time) or math.isinf(time):
            raise ValueError(f"invalid event time {time!r}")
        handle = EventHandle(time, fn, args, self)
        heapq.heappush(self._heap, (time, self._seq, handle))
        self._seq += 1
        self.events_scheduled += 1
        return handle

    def schedule_at(self, time: float, fn: Callable, *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        if math.isnan(time) or math.isinf(time):
            raise ValueError(f"invalid event time {time!r}")
        handle = EventHandle(time, fn, args, self)
        heapq.heappush(self._heap, (time, self._seq, handle))
        self._seq += 1
        self.events_scheduled += 1
        return handle

    # -- heap hygiene ----------------------------------------------------

    def _note_cancel(self) -> None:
        """One live heap entry became a tombstone; compact when cancelled
        entries exceed half the queue (amortized O(1) per cancellation)."""
        t = self._tombstones + 1
        self._tombstones = t
        heap = self._heap
        if t >= COMPACT_MIN_TOMBSTONES and 2 * t > len(heap):
            # In place (slice assignment): run() holds a local alias.
            heap[:] = [entry for entry in heap if not entry[2].cancelled]
            heapq.heapify(heap)
            self._tombstones = 0
            self.compactions += 1

    # -- execution -------------------------------------------------------

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Process events in time order.

        Stops when the queue drains, the clock would pass ``until``, or
        ``max_events`` have been processed.  Returns the number of events
        processed by this call.  When stopped by ``until``, the clock is
        advanced to ``until`` so subsequent relative scheduling behaves
        intuitively.
        """
        if self._running:
            raise RuntimeError("Simulator.run is not reentrant")
        self._running = True
        processed = 0
        try:
            if self.profile is not None:
                processed = self._run_profiled(until, max_events)
            else:
                # Hot loop: heappop and the heap itself live in locals;
                # fired handles are cleared inline (cancel() would also
                # bump the tombstone count, but a popped event is not a
                # tombstone).
                heap = self._heap
                heappop = heapq.heappop
                try:
                    while heap:
                        entry = heap[0]
                        time = entry[0]
                        if until is not None and time > until:
                            break
                        heappop(heap)
                        handle = entry[2]
                        if handle.cancelled:
                            self._tombstones -= 1
                            continue
                        self.now = time
                        fn = handle.fn
                        args = handle.args
                        # Mark fired; frees references.
                        handle.cancelled = True
                        handle.fn = None
                        handle.args = ()
                        handle.sim = None
                        fn(*args)
                        processed += 1
                        if max_events is not None and processed >= max_events:
                            break
                finally:
                    self.events_processed += processed
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = until
        return processed

    def _run_profiled(self, until: float | None, max_events: int | None) -> int:
        """The :meth:`run` inner loop with per-callback-site accounting.

        Identical event semantics to the fast loop — profiling reads wall
        clock around each callback but never touches virtual time, event
        order, or RNG streams, so results are bit-identical either way.
        """
        prof = self.profile
        heap = self._heap
        processed = 0
        if len(heap) > prof.heap_peak:
            prof.heap_peak = len(heap)
        run_start = perf_counter()
        while heap:
            time, _seq, handle = heap[0]
            if until is not None and time > until:
                break
            heapq.heappop(heap)
            if handle.cancelled:
                self._tombstones -= 1
                continue
            self.now = time
            fn, args = handle.fn, handle.args
            # Mark fired; frees references (inline: see run()).
            handle.cancelled = True
            handle.fn = None
            handle.args = ()
            handle.sim = None
            site = getattr(fn, "__qualname__", None) or repr(fn)
            t0 = perf_counter()
            fn(*args)
            prof.note(site, perf_counter() - t0)
            if len(heap) > prof.heap_peak:
                prof.heap_peak = len(heap)
            processed += 1
            self.events_processed += 1
            if max_events is not None and processed >= max_events:
                break
        prof.note_run(processed, perf_counter() - run_start)
        return processed

    def step(self) -> bool:
        """Process exactly one event.  Returns False when the queue is empty."""
        return self.run(max_events=1) == 1

    @property
    def pending(self) -> int:
        """Number of heap entries (including cancelled tombstones)."""
        return len(self._heap)

    @property
    def live_pending(self) -> int:
        """Heap size net of cancelled tombstones (events that will fire)."""
        return len(self._heap) - self._tombstones

    def peek_time(self) -> float | None:
        """Virtual time of the next live event, or None if the queue is empty.

        Mid-:meth:`run` (a callback peeking at the queue) this scans
        without mutating — ``run`` is iterating the same heap list, and
        popping under it would skew the tombstone accounting; outside a
        run it lazily pops leading tombstones as before.
        """
        heap = self._heap
        if self._running:
            times = [t for t, _seq, h in heap if not h.cancelled]
            return min(times) if times else None
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._tombstones -= 1
        return heap[0][0] if heap else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Simulator(now={self.now:.6g}, pending={self.pending})"
