"""The discrete-event simulation kernel.

A :class:`Simulator` owns a virtual clock and a binary-heap event queue.
Components schedule callbacks at future virtual times; :meth:`Simulator.run`
pops events in time order and invokes them.  Ties are broken by insertion
order (FIFO), which makes traces deterministic.

The kernel is deliberately minimal — no coroutines, no channels — because
profiling showed that a plain ``heapq`` of ``(time, seq, handle)`` tuples is
the fastest portable event loop in CPython, and every higher-level
abstraction (periodic tasks, message delivery, job execution) composes out
of one-shot callbacks.
"""

from __future__ import annotations

import heapq
import math
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.profile import KernelProfile


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("time", "fn", "args", "cancelled")

    def __init__(self, time: float, fn: Callable, args: tuple):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; safe after firing."""
        self.cancelled = True
        # Drop references so cancelled-but-still-heaped events don't pin
        # large object graphs (e.g. whole jobs) in memory.
        self.fn = None
        self.args = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.6g}, {state})"


class Simulator:
    """Virtual-time event loop.

    Parameters
    ----------
    start_time:
        Initial value of the virtual clock (seconds).
    """

    def __init__(self, start_time: float = 0.0):
        self.now = float(start_time)
        self._heap: list[tuple[float, int, EventHandle]] = []
        self._seq = 0
        self.events_processed = 0
        self.events_scheduled = 0
        self._running = False
        #: Opt-in event-loop profiling (see :mod:`repro.telemetry.profile`).
        #: None keeps the original tight loop — the zero-overhead path is
        #: one ``is None`` check per :meth:`run` call, not per event.
        self.profile: "KernelProfile | None" = None

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable, *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        if math.isnan(time) or math.isinf(time):
            raise ValueError(f"invalid event time {time!r}")
        handle = EventHandle(time, fn, args)
        heapq.heappush(self._heap, (time, self._seq, handle))
        self._seq += 1
        self.events_scheduled += 1
        return handle

    # -- execution -------------------------------------------------------

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Process events in time order.

        Stops when the queue drains, the clock would pass ``until``, or
        ``max_events`` have been processed.  Returns the number of events
        processed by this call.  When stopped by ``until``, the clock is
        advanced to ``until`` so subsequent relative scheduling behaves
        intuitively.
        """
        if self._running:
            raise RuntimeError("Simulator.run is not reentrant")
        self._running = True
        processed = 0
        heap = self._heap
        try:
            if self.profile is not None:
                processed = self._run_profiled(until, max_events)
            else:
                while heap:
                    time, _seq, handle = heap[0]
                    if until is not None and time > until:
                        break
                    heapq.heappop(heap)
                    if handle.cancelled:
                        continue
                    self.now = time
                    fn, args = handle.fn, handle.args
                    handle.cancel()  # mark fired; frees references
                    fn(*args)
                    processed += 1
                    self.events_processed += 1
                    if max_events is not None and processed >= max_events:
                        break
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = until
        return processed

    def _run_profiled(self, until: float | None, max_events: int | None) -> int:
        """The :meth:`run` inner loop with per-callback-site accounting.

        Identical event semantics to the fast loop — profiling reads wall
        clock around each callback but never touches virtual time, event
        order, or RNG streams, so results are bit-identical either way.
        """
        prof = self.profile
        heap = self._heap
        processed = 0
        if len(heap) > prof.heap_peak:
            prof.heap_peak = len(heap)
        run_start = perf_counter()
        while heap:
            time, _seq, handle = heap[0]
            if until is not None and time > until:
                break
            heapq.heappop(heap)
            if handle.cancelled:
                continue
            self.now = time
            fn, args = handle.fn, handle.args
            handle.cancel()  # mark fired; frees references
            site = getattr(fn, "__qualname__", None) or repr(fn)
            t0 = perf_counter()
            fn(*args)
            prof.note(site, perf_counter() - t0)
            if len(heap) > prof.heap_peak:
                prof.heap_peak = len(heap)
            processed += 1
            self.events_processed += 1
            if max_events is not None and processed >= max_events:
                break
        prof.note_run(processed, perf_counter() - run_start)
        return processed

    def step(self) -> bool:
        """Process exactly one event.  Returns False when the queue is empty."""
        return self.run(max_events=1) == 1

    @property
    def pending(self) -> int:
        """Number of heap entries (including cancelled tombstones)."""
        return len(self._heap)

    def peek_time(self) -> float | None:
        """Virtual time of the next live event, or None if the queue is empty."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Simulator(now={self.now:.6g}, pending={self.pending})"
