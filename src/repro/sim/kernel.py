"""The discrete-event simulation kernel.

A :class:`Simulator` owns a virtual clock, a binary-heap event queue, and a
hashed hierarchical :class:`TimerWheel`.  Components schedule callbacks at
future virtual times; :meth:`Simulator.run` pops events in time order and
invokes them.  Ties are broken by insertion order (FIFO), which makes traces
deterministic.

Three scheduling entry points trade generality for speed:

* :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` — general
  one-shot events with a cancellable :class:`EventHandle`.
* :meth:`Simulator.schedule_timer` — recurring/cancellation-heavy timers
  (periodic tasks, rpc timeouts).  These live on the timer wheel until
  they come due, so cancellation is O(1) bucket surgery instead of a heap
  tombstone, and a million pending heartbeats cost the heap nothing.
* :meth:`Simulator.post` — fire-and-forget events that are never cancelled
  (message deliveries).  No handle is allocated at all; the heap entry is
  a plain ``(time, seq, fn, args)`` tuple.

All three share one global sequence counter, so events fire in exactly the
same (time, seq) order regardless of which structure they waited in — the
equivalence goldens in ``tests/experiments/test_equivalence.py`` pin this.

The dispatch loop is *batched*: all events sharing a timestamp drain in one
pass with a single ``now`` store (and, under profiling, one heap sample) per
batch.  Intra-timestamp order is still FIFO by sequence number; an event
scheduled with zero delay from inside a batch joins the same batch, exactly
as the unbatched loop behaved.

Cancelled heap events stay in the heap as tombstones (removing an arbitrary
heap entry is O(n)); the kernel counts them and compacts the heap —
filter + re-heapify, O(n) — once tombstones outnumber live entries.
Compaction never reorders live events: (time, seq) keys are unique, so the
re-heapified queue pops in exactly the same order.  Wheel timers cancelled
while still on the wheel never touch the heap and need no compaction.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.profile import KernelProfile

#: Compaction trigger floor: below this many tombstones the dead entries
#: cost less than the scan, so the kernel leaves the heap alone.
COMPACT_MIN_TOMBSTONES = 64

#: Timer-wheel geometry.  Level ``l`` buckets are ``GRANULARITY * FANOUT**l``
#: seconds wide; level 0 holds timers due within ``GRANULARITY * FANOUT``
#: seconds (32 s — covers heartbeat/monitor/stabilize intervals), and the
#: top level absorbs everything else (its dict of absolute slots is
#: unbounded, so no delay is too long).
WHEEL_GRANULARITY = 0.5
WHEEL_FANOUT = 64
WHEEL_LEVELS = 4


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("time", "fn", "args", "cancelled", "sim")

    def __init__(self, time: float, fn: Callable, args: tuple,
                 sim: "Simulator | None" = None):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        #: Owning simulator while the entry is live in a heap (None once
        #: fired or cancelled) — lets cancel() feed tombstone accounting.
        self.sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; safe after firing,
        and safe after the heap compacted the entry away (``sim`` is the
        exactly-once latch: accounting runs only on the first transition
        from live to cancelled)."""
        if self.cancelled:
            return
        self.cancelled = True
        # Drop references so cancelled-but-still-heaped events don't pin
        # large object graphs (e.g. whole jobs) in memory.
        self.fn = None
        self.args = ()
        sim = self.sim
        if sim is not None:
            self.sim = None
            sim._note_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.6g}, {state})"


class WheelTimer(EventHandle):
    """An :class:`EventHandle` that waits on the timer wheel.

    Carries its insertion sequence number so that, when the wheel transfers
    it into the event heap, it interleaves with heap-scheduled events in
    exactly the global FIFO order.  ``on_wheel`` routes cancellation:
    still-bucketed timers cancel in O(1) on the wheel; transferred timers
    become ordinary heap tombstones.
    """

    __slots__ = ("seq", "on_wheel")

    def __init__(self, time: float, fn: Callable, args: tuple,
                 sim: "Simulator", seq: int):
        EventHandle.__init__(self, time, fn, args, sim)
        self.seq = seq
        self.on_wheel = True

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        self.fn = None
        self.args = ()
        sim = self.sim
        if sim is not None:
            self.sim = None
            if self.on_wheel:
                sim._note_wheel_cancel()
            else:
                sim._note_cancel()


class TimerWheel:
    """Hashed hierarchical timer wheel feeding a :class:`Simulator` heap.

    Buckets are dict entries keyed ``(level, absolute_slot)`` — no fixed
    ring, so arbitrarily distant timers hash to a slot without wraparound
    bookkeeping.  A lazy min-heap of bucket start times (``_starts``, one
    entry per live bucket) gives the run loop an O(1) lower bound on the
    earliest bucketed timer.  When the run loop is about to dispatch at
    time ``t`` it calls :meth:`fill`, which drains every bucket starting at
    or before ``t``: level-0 buckets push their timers straight into the
    event heap (the heap orders the handful that are due now), coarser
    buckets *cascade* — re-insert each timer at a strictly finer level
    based on its remaining delay.  Cancelled timers are simply skipped at
    drain time; :meth:`~WheelTimer.cancel` already uncounted them.
    """

    __slots__ = ("sim", "live", "timers_scheduled", "timers_cancelled",
                 "cascades", "_buckets", "_starts", "_widths", "_max_level")

    def __init__(self, sim: "Simulator",
                 granularity: float = WHEEL_GRANULARITY,
                 fanout: int = WHEEL_FANOUT,
                 levels: int = WHEEL_LEVELS):
        self.sim = sim
        #: Timers bucketed and not cancelled (transferred ones excluded).
        self.live = 0
        self.timers_scheduled = 0
        self.timers_cancelled = 0
        self.cascades = 0
        self._buckets: dict[tuple[int, int], list[WheelTimer]] = {}
        self._starts: list[tuple[float, int, int]] = []
        self._widths = [granularity * fanout ** lvl for lvl in range(levels)]
        self._max_level = levels - 1

    def insert(self, timer: WheelTimer, max_level: int | None = None) -> None:
        """Bucket ``timer`` by its delay from the current virtual time."""
        delay = timer.time - self.sim.now
        widths = self._widths
        top = self._max_level if max_level is None else max_level
        level = 0
        while level < top and delay >= widths[level + 1]:
            level += 1
        width = widths[level]
        slot = int(timer.time / width)
        key = (level, slot)
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = [timer]
            heapq.heappush(self._starts, (slot * width, level, slot))
        else:
            bucket.append(timer)
        self.live += 1

    def fill(self, limit: float) -> None:
        """Move every timer due by ``limit`` into the simulator's heap.

        Drains all buckets whose start time is <= ``limit``.  Level-0
        timers transfer directly (possibly with ``time > limit`` — the
        heap orders them); coarser buckets cascade to finer levels, so a
        timer's level strictly decreases and the loop terminates.  After
        this returns, every remaining bucketed timer fires strictly after
        ``limit``.
        """
        starts = self._starts
        if not starts or starts[0][0] > limit:
            return
        buckets = self._buckets
        heap = self.sim._heap
        push = heapq.heappush
        pop = heapq.heappop
        moved = 0
        while starts and starts[0][0] <= limit:
            _start, level, slot = pop(starts)
            bucket = buckets.pop((level, slot))
            if level == 0:
                for timer in bucket:
                    if not timer.cancelled:
                        timer.on_wheel = False
                        push(heap, (timer.time, timer.seq, timer))
                        moved += 1
            else:
                self.cascades += 1
                next_level = level - 1
                for timer in bucket:
                    if not timer.cancelled:
                        self.live -= 1
                        self.insert(timer, max_level=next_level)
        self.live -= moved

    def peek(self) -> float | None:
        """Exact virtual time of the earliest live bucketed timer.

        Scans buckets in start order and stops as soon as no later bucket
        can contain an earlier timer — typically one bucket's worth of
        work, not a full sweep.
        """
        best: float | None = None
        for start, level, slot in sorted(self._starts):
            if best is not None and start >= best:
                break
            for timer in self._buckets[(level, slot)]:
                if not timer.cancelled and (best is None or timer.time < best):
                    best = timer.time
        return best

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"TimerWheel(live={self.live}, "
                f"buckets={len(self._buckets)})")


class Simulator:
    """Virtual-time event loop.

    Parameters
    ----------
    start_time:
        Initial value of the virtual clock (seconds).
    timer_wheel:
        When False, :meth:`schedule_timer` degrades to plain heap
        scheduling — an A/B switch for the equivalence tests (results are
        bit-identical either way; only the cancellation cost changes).
    """

    def __init__(self, start_time: float = 0.0, timer_wheel: bool = True):
        self.now = float(start_time)
        self._heap: list[tuple] = []
        self._seq = 0
        self._tombstones = 0  # cancelled entries still in the heap
        self.events_processed = 0
        self.events_scheduled = 0
        self.events_cancelled = 0
        self.compactions = 0
        self._running = False
        self._use_wheel = bool(timer_wheel)
        self._wheel = TimerWheel(self)
        #: Opt-in event-loop profiling (see :mod:`repro.telemetry.profile`).
        #: None keeps the original tight loop — the zero-overhead path is
        #: one ``is None`` check per :meth:`run` call, not per event.
        self.profile: "KernelProfile | None" = None

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        # Inlined schedule_at (this is the hottest scheduling entry point;
        # delay >= 0 already guarantees time >= now).  ``time - time``
        # is 0.0 for every finite float and nan for nan/inf — one cheap
        # arithmetic test instead of two math-module calls.
        time = self.now + delay
        if time - time != 0.0:
            raise ValueError(f"invalid event time {time!r}")
        handle = EventHandle(time, fn, args, self)
        heapq.heappush(self._heap, (time, self._seq, handle))
        self._seq += 1
        self.events_scheduled += 1
        return handle

    def schedule_at(self, time: float, fn: Callable, *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        if time - time != 0.0:
            raise ValueError(f"invalid event time {time!r}")
        handle = EventHandle(time, fn, args, self)
        heapq.heappush(self._heap, (time, self._seq, handle))
        self._seq += 1
        self.events_scheduled += 1
        return handle

    def schedule_timer(self, delay: float, fn: Callable,
                       *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` after ``delay`` on the timer wheel.

        Firing semantics are identical to :meth:`schedule` — ties with
        heap events break by global insertion order — but cancelling a
        still-pending timer is O(1) and leaves no heap tombstone.  Meant
        for recurring timers and timeouts, which are overwhelmingly
        cancelled or rescheduled rather than fired once.

        A zero delay routes through the plain heap: a zero-delay event
        must join the *current* timestamp batch, which only the heap can
        order it into.  Wheel-disabled simulators route everything
        through the heap.
        """
        if delay <= 0:
            if delay == 0:
                return self.schedule(0.0, fn, *args)
            raise ValueError(f"negative delay {delay!r}")
        if not self._use_wheel:
            return self.schedule(delay, fn, *args)
        time = self.now + delay
        if time - time != 0.0:
            raise ValueError(f"invalid event time {time!r}")
        timer = WheelTimer(time, fn, args, self, self._seq)
        self._seq += 1
        self.events_scheduled += 1
        wheel = self._wheel
        wheel.timers_scheduled += 1
        wheel.insert(timer)
        return timer

    def reschedule_timer(self, timer: WheelTimer, delay: float,
                         fn: Callable) -> EventHandle:
        """Revive a just-fired :class:`WheelTimer` in place.

        Firing semantics are *identical* to :meth:`schedule_timer` — the
        revived timer takes the next global sequence number and waits on
        the wheel — but no new handle is allocated: the caller's fired
        timer object (whose slots the run loop already cleared) is
        re-armed and re-bucketed.  This is the periodic-task fast path:
        one million heartbeat reschedules otherwise allocate one million
        single-use ``WheelTimer`` objects, which dominates the traced
        allocation profile at 10k-node scale.

        Falls back to plain scheduling when the wheel is disabled or the
        delay is zero (both must route through the heap), returning a
        fresh handle in that case — callers must always re-point at the
        returned handle.
        """
        if delay <= 0 or not self._use_wheel:
            return self.schedule_timer(delay, fn)
        time = self.now + delay
        if time - time != 0.0:
            raise ValueError(f"invalid event time {time!r}")
        timer.time = time
        timer.seq = self._seq
        timer.fn = fn
        timer.args = ()
        timer.cancelled = False
        timer.on_wheel = True
        timer.sim = self
        self._seq += 1
        self.events_scheduled += 1
        wheel = self._wheel
        wheel.timers_scheduled += 1
        wheel.insert(timer)
        return timer

    def post(self, delay: float, fn: Callable, *args: Any) -> None:
        """Fire-and-forget schedule: no handle, cannot be cancelled.

        The heap entry is a bare ``(time, seq, fn, args)`` tuple — no
        :class:`EventHandle` allocation, no post-fire slot clearing.  This
        is the message-delivery fast path; use :meth:`schedule` whenever
        the caller might need to cancel.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        time = self.now + delay
        if time - time != 0.0:
            raise ValueError(f"invalid event time {time!r}")
        heapq.heappush(self._heap, (time, self._seq, fn, args))
        self._seq += 1
        self.events_scheduled += 1

    # -- heap hygiene ----------------------------------------------------

    def _note_cancel(self) -> None:
        """One live heap entry became a tombstone; compact when cancelled
        entries exceed half the queue (amortized O(1) per cancellation)."""
        self.events_cancelled += 1
        t = self._tombstones + 1
        self._tombstones = t
        heap = self._heap
        if t >= COMPACT_MIN_TOMBSTONES and 2 * t > len(heap):
            # In place (slice assignment): run() holds a local alias.
            # 4-tuple post() entries carry no handle and are never
            # tombstones; keep them unconditionally.
            heap[:] = [entry for entry in heap
                       if len(entry) == 4 or not entry[2].cancelled]
            heapq.heapify(heap)
            self._tombstones = 0
            self.compactions += 1

    def _note_wheel_cancel(self) -> None:
        """A still-bucketed wheel timer was cancelled: O(1), no tombstone."""
        self.events_cancelled += 1
        wheel = self._wheel
        wheel.live -= 1
        wheel.timers_cancelled += 1

    # -- execution -------------------------------------------------------

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Process events in time order.

        Stops when the queue drains, the clock would pass ``until``, or
        ``max_events`` have been processed.  Returns the number of events
        processed by this call.  When stopped by ``until``, the clock is
        advanced to ``until`` so subsequent relative scheduling behaves
        intuitively.
        """
        if self._running:
            raise RuntimeError("Simulator.run is not reentrant")
        self._running = True
        processed = 0
        try:
            if self.profile is not None:
                processed = self._run_profiled(until, max_events)
            else:
                # Hot loop: the heap, heappop, and the wheel's bucket-start
                # heap live in locals; fired handles are cleared inline.
                # Outer iteration = one timestamp batch (single `now`
                # store); inner loop drains every event sharing that
                # timestamp, including zero-delay events scheduled by the
                # batch itself (they get higher seqs and pop last, exactly
                # as the unbatched loop ordered them).
                heap = self._heap
                wheel = self._wheel
                starts = wheel._starts
                fill = wheel.fill
                heappop = heapq.heappop
                try:
                    while True:
                        if starts:
                            # The wheel may own the next event: transfer
                            # everything due by the heap head (or, on an
                            # empty heap, by the earliest bucket) into the
                            # heap so the two sources merge in seq order.
                            if heap:
                                if starts[0][0] <= heap[0][0]:
                                    fill(heap[0][0])
                            else:
                                next_start = starts[0][0]
                                if until is not None and next_start > until:
                                    break
                                fill(next_start)
                                continue
                        if not heap:
                            break
                        t0 = heap[0][0]
                        if until is not None and t0 > until:
                            break
                        self.now = t0
                        while heap and heap[0][0] == t0:
                            entry = heappop(heap)
                            if len(entry) == 4:
                                entry[2](*entry[3])
                            else:
                                handle = entry[2]
                                if handle.cancelled:
                                    self._tombstones -= 1
                                    continue
                                fn = handle.fn
                                args = handle.args
                                # Mark fired; frees references.
                                handle.cancelled = True
                                handle.fn = None
                                handle.args = ()
                                handle.sim = None
                                fn(*args)
                            processed += 1
                            if max_events is not None \
                                    and processed >= max_events:
                                break
                        if max_events is not None and processed >= max_events:
                            break
                finally:
                    self.events_processed += processed
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = until
        return processed

    def _run_profiled(self, until: float | None, max_events: int | None) -> int:
        """The :meth:`run` inner loop with per-callback-site accounting.

        Identical event semantics to the fast loop — profiling reads wall
        clock around each callback but never touches virtual time, event
        order, or RNG streams, so results are bit-identical either way.
        The heap-depth gauge samples once per timestamp batch.
        """
        prof = self.profile
        heap = self._heap
        wheel = self._wheel
        starts = wheel._starts
        processed = 0
        if len(heap) + wheel.live > prof.heap_peak:
            prof.heap_peak = len(heap) + wheel.live
        run_start = perf_counter()
        while True:
            if starts:
                if heap:
                    if starts[0][0] <= heap[0][0]:
                        wheel.fill(heap[0][0])
                else:
                    next_start = starts[0][0]
                    if until is not None and next_start > until:
                        break
                    wheel.fill(next_start)
                    continue
            if not heap:
                break
            t0 = heap[0][0]
            if until is not None and t0 > until:
                break
            self.now = t0
            while heap and heap[0][0] == t0:
                entry = heapq.heappop(heap)
                if len(entry) == 4:
                    fn, args = entry[2], entry[3]
                else:
                    handle = entry[2]
                    if handle.cancelled:
                        self._tombstones -= 1
                        continue
                    fn, args = handle.fn, handle.args
                    # Mark fired; frees references (inline: see run()).
                    handle.cancelled = True
                    handle.fn = None
                    handle.args = ()
                    handle.sim = None
                site = getattr(fn, "__qualname__", None) or repr(fn)
                t_cb = perf_counter()
                fn(*args)
                prof.note(site, perf_counter() - t_cb)
                processed += 1
                self.events_processed += 1
                if max_events is not None and processed >= max_events:
                    break
            depth = len(heap) + wheel.live
            if depth > prof.heap_peak:
                prof.heap_peak = depth
            if max_events is not None and processed >= max_events:
                break
        prof.note_run(processed, perf_counter() - run_start)
        return processed

    def step(self) -> bool:
        """Process exactly one event.  Returns False when the queue is empty."""
        return self.run(max_events=1) == 1

    @property
    def pending(self) -> int:
        """Queued entries: heap entries (including cancelled tombstones)
        plus live wheel timers."""
        return len(self._heap) + self._wheel.live

    @property
    def live_pending(self) -> int:
        """Events that will actually fire: heap entries net of cancelled
        tombstones, plus live wheel timers."""
        return len(self._heap) - self._tombstones + self._wheel.live

    def peek_time(self) -> float | None:
        """Virtual time of the next live event, or None if nothing is queued.

        Considers both the heap and the timer wheel.  Mid-:meth:`run` (a
        callback peeking at the queue) the heap is scanned without
        mutating — ``run`` is iterating the same heap list, and popping
        under it would skew the tombstone accounting; outside a run it
        lazily pops leading tombstones as before.
        """
        heap = self._heap
        if self._running:
            times = [e[0] for e in heap
                     if len(e) == 4 or not e[2].cancelled]
            heap_t = min(times) if times else None
        else:
            while heap and len(heap[0]) != 4 and heap[0][2].cancelled:
                heapq.heappop(heap)
                self._tombstones -= 1
            heap_t = heap[0][0] if heap else None
        wheel = self._wheel
        wheel_t = wheel.peek() if wheel.live else None
        if heap_t is None:
            return wheel_t
        if wheel_t is None:
            return heap_t
        return heap_t if heap_t <= wheel_t else wheel_t

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Simulator(now={self.now:.6g}, pending={self.pending})"
