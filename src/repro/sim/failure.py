"""Failure and churn injection.

The paper's robustness story is about surviving node failures (owner/run
recovery, no single point of failure).  These injectors drive that story in
experiments:

* :class:`FailureInjector` — crash a chosen set of nodes at chosen times
  (deterministic fault scripts for tests and targeted experiments).
* :class:`CrashRecoveryProcess` — ongoing churn: each node alternates
  exponential up-times and down-times, crashing and rejoining forever.
* :class:`GroupFailureInjector` — *correlated* failures: whole groups
  (racks, AS clusters, switch domains) go down together inside a small
  jitter window and come back after a shared outage, so failure mass
  arrives in bursts instead of the independent-churn trickle the paper
  evaluates.

"Crashing" is delegated to a callback (the grid layer decides what a crash
means — losing queue contents, dropping in-flight messages, leaving the
overlay), so the injectors stay substrate-agnostic: the same
:class:`GroupFailureInjector` models a rack power loss (``crash_fn``)
or a switch partition (``partition_fn``/``heal_fn``) purely by the
callbacks it is given.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.sim.kernel import Simulator


class FailureInjector:
    """Schedules scripted crash (and optional recovery) events."""

    def __init__(self, sim: Simulator,
                 crash_fn: Callable[[int], None],
                 recover_fn: Callable[[int], None] | None = None):
        self.sim = sim
        self.crash_fn = crash_fn
        self.recover_fn = recover_fn
        self.crashes_injected = 0
        self.recoveries_injected = 0

    def crash_at(self, time: float, node_id: int) -> None:
        self.sim.schedule_at(time, self._crash, node_id)

    def recover_at(self, time: float, node_id: int) -> None:
        if self.recover_fn is None:
            raise ValueError("no recover_fn configured")
        self.sim.schedule_at(time, self._recover, node_id)

    def crash_many(self, times_and_nodes: Iterable[tuple[float, int]]) -> None:
        for time, node_id in times_and_nodes:
            self.crash_at(time, node_id)

    def _crash(self, node_id: int) -> None:
        self.crashes_injected += 1
        self.crash_fn(node_id)

    def _recover(self, node_id: int) -> None:
        self.recoveries_injected += 1
        self.recover_fn(node_id)


class CrashRecoveryProcess:
    """Continuous churn: alternating exponential up/down periods per node.

    Parameters
    ----------
    mean_uptime / mean_downtime:
        Means of the exponential up/down period distributions (seconds).
    node_ids:
        Nodes subjected to churn.  Each gets an independent first-crash time
        drawn from the uptime distribution.
    """

    def __init__(self, sim: Simulator, rng: np.random.Generator,
                 node_ids: Sequence[int],
                 crash_fn: Callable[[int], None],
                 recover_fn: Callable[[int], None],
                 mean_uptime: float, mean_downtime: float,
                 start: bool = True):
        if mean_uptime <= 0 or mean_downtime <= 0:
            raise ValueError("mean up/down times must be positive")
        self.sim = sim
        self.rng = rng
        self.node_ids = list(node_ids)
        self.crash_fn = crash_fn
        self.recover_fn = recover_fn
        self.mean_uptime = mean_uptime
        self.mean_downtime = mean_downtime
        self.crashes = 0
        self.recoveries = 0
        self.stopped = False
        if start:
            self.start()

    def start(self) -> None:
        self.stopped = False
        for node_id in self.node_ids:
            self.sim.schedule(float(self.rng.exponential(self.mean_uptime)),
                              self._crash, node_id)

    def stop(self) -> None:
        """Stop injecting *new* events (pending ones are abandoned lazily)."""
        self.stopped = True

    def _crash(self, node_id: int) -> None:
        if self.stopped:
            return
        self.crashes += 1
        self.crash_fn(node_id)
        self.sim.schedule(float(self.rng.exponential(self.mean_downtime)),
                          self._recover, node_id)

    def _recover(self, node_id: int) -> None:
        if self.stopped:
            return
        self.recoveries += 1
        self.recover_fn(node_id)
        self.sim.schedule(float(self.rng.exponential(self.mean_uptime)),
                          self._crash, node_id)


class GroupFailureInjector:
    """Correlated failures: a whole group fails (nearly) at once.

    At exponential intervals (mean ``mean_interval``) one group is chosen
    uniformly and every member is taken down at an independent small
    jitter offset (uniform in ``[0, jitter)`` — a rack does not lose all
    its machines in the same microsecond), then brought back ``outage``
    seconds after the strike, again with per-member jitter.

    Determinism: all draws come from the one ``rng`` in a fixed order
    (interval, group index, per-member down jitters, per-member up
    jitters), so a given (rng stream, group layout) replays exactly.

    Parameters
    ----------
    groups:
        Non-empty sequence of node-id groups (each itself non-empty).
    take_down_fn / bring_up_fn:
        What "failing" means — ``(crash_node, recover_node)`` for a rack
        power event, ``(partition_node, heal_node)`` for a switch loss.
    max_strikes:
        Stop injecting after this many group strikes (None = forever).
    """

    def __init__(self, sim: Simulator, rng: np.random.Generator,
                 groups: Sequence[Sequence[int]],
                 take_down_fn: Callable[[int], None],
                 bring_up_fn: Callable[[int], None],
                 mean_interval: float, outage: float,
                 jitter: float = 0.5,
                 max_strikes: int | None = None,
                 start: bool = True):
        if not groups or any(not g for g in groups):
            raise ValueError("groups must be non-empty groups of node ids")
        if mean_interval <= 0 or outage <= 0:
            raise ValueError("mean_interval and outage must be positive")
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        self.sim = sim
        self.rng = rng
        self.groups = [list(g) for g in groups]
        self.take_down_fn = take_down_fn
        self.bring_up_fn = bring_up_fn
        self.mean_interval = mean_interval
        self.outage = outage
        self.jitter = jitter
        self.max_strikes = max_strikes
        self.strikes = 0
        self.members_taken_down = 0
        self.stopped = False
        if start:
            self.start()

    def start(self) -> None:
        self.stopped = False
        self.sim.schedule(float(self.rng.exponential(self.mean_interval)),
                          self._strike)

    def stop(self) -> None:
        """Stop injecting *new* strikes (pending events fire harmlessly)."""
        self.stopped = True

    def _strike(self) -> None:
        if self.stopped:
            return
        if self.max_strikes is not None and self.strikes >= self.max_strikes:
            return
        self.strikes += 1
        group = self.groups[int(self.rng.integers(0, len(self.groups)))]
        down = self.rng.uniform(0.0, self.jitter, size=len(group)) \
            if self.jitter > 0 else np.zeros(len(group))
        up = self.rng.uniform(0.0, self.jitter, size=len(group)) \
            if self.jitter > 0 else np.zeros(len(group))
        for i, node_id in enumerate(group):
            self.sim.schedule(float(down[i]), self._take_down, node_id)
            self.sim.schedule(self.outage + float(up[i]),
                              self._bring_up, node_id)
        self.sim.schedule(float(self.rng.exponential(self.mean_interval)),
                          self._strike)

    def _take_down(self, node_id: int) -> None:
        if self.stopped:
            return
        self.members_taken_down += 1
        self.take_down_fn(node_id)

    def _bring_up(self, node_id: int) -> None:
        if self.stopped:
            return
        self.bring_up_fn(node_id)
