"""Failure and churn injection.

The paper's robustness story is about surviving node failures (owner/run
recovery, no single point of failure).  These injectors drive that story in
experiments:

* :class:`FailureInjector` — crash a chosen set of nodes at chosen times
  (deterministic fault scripts for tests and targeted experiments).
* :class:`CrashRecoveryProcess` — ongoing churn: each node alternates
  exponential up-times and down-times, crashing and rejoining forever.

"Crashing" is delegated to a callback (the grid layer decides what a crash
means — losing queue contents, dropping in-flight messages, leaving the
overlay), so the injectors stay substrate-agnostic.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.sim.kernel import Simulator


class FailureInjector:
    """Schedules scripted crash (and optional recovery) events."""

    def __init__(self, sim: Simulator,
                 crash_fn: Callable[[int], None],
                 recover_fn: Callable[[int], None] | None = None):
        self.sim = sim
        self.crash_fn = crash_fn
        self.recover_fn = recover_fn
        self.crashes_injected = 0
        self.recoveries_injected = 0

    def crash_at(self, time: float, node_id: int) -> None:
        self.sim.schedule_at(time, self._crash, node_id)

    def recover_at(self, time: float, node_id: int) -> None:
        if self.recover_fn is None:
            raise ValueError("no recover_fn configured")
        self.sim.schedule_at(time, self._recover, node_id)

    def crash_many(self, times_and_nodes: Iterable[tuple[float, int]]) -> None:
        for time, node_id in times_and_nodes:
            self.crash_at(time, node_id)

    def _crash(self, node_id: int) -> None:
        self.crashes_injected += 1
        self.crash_fn(node_id)

    def _recover(self, node_id: int) -> None:
        self.recoveries_injected += 1
        self.recover_fn(node_id)


class CrashRecoveryProcess:
    """Continuous churn: alternating exponential up/down periods per node.

    Parameters
    ----------
    mean_uptime / mean_downtime:
        Means of the exponential up/down period distributions (seconds).
    node_ids:
        Nodes subjected to churn.  Each gets an independent first-crash time
        drawn from the uptime distribution.
    """

    def __init__(self, sim: Simulator, rng: np.random.Generator,
                 node_ids: Sequence[int],
                 crash_fn: Callable[[int], None],
                 recover_fn: Callable[[int], None],
                 mean_uptime: float, mean_downtime: float,
                 start: bool = True):
        if mean_uptime <= 0 or mean_downtime <= 0:
            raise ValueError("mean up/down times must be positive")
        self.sim = sim
        self.rng = rng
        self.node_ids = list(node_ids)
        self.crash_fn = crash_fn
        self.recover_fn = recover_fn
        self.mean_uptime = mean_uptime
        self.mean_downtime = mean_downtime
        self.crashes = 0
        self.recoveries = 0
        self.stopped = False
        if start:
            self.start()

    def start(self) -> None:
        self.stopped = False
        for node_id in self.node_ids:
            self.sim.schedule(float(self.rng.exponential(self.mean_uptime)),
                              self._crash, node_id)

    def stop(self) -> None:
        """Stop injecting *new* events (pending ones are abandoned lazily)."""
        self.stopped = True

    def _crash(self, node_id: int) -> None:
        if self.stopped:
            return
        self.crashes += 1
        self.crash_fn(node_id)
        self.sim.schedule(float(self.rng.exponential(self.mean_downtime)),
                          self._recover, node_id)

    def _recover(self, node_id: int) -> None:
        if self.stopped:
            return
        self.recoveries += 1
        self.recover_fn(node_id)
        self.sim.schedule(float(self.rng.exponential(self.mean_uptime)),
                          self._crash, node_id)
