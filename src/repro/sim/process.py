"""Periodic tasks on top of the one-shot event kernel.

Heartbeats, DHT stabilization, aggregation refresh, and neighbor load
exchange are all periodic soft-state protocols; :class:`PeriodicTask` gives
them a common cancellable implementation with optional phase jitter (so a
thousand nodes' timers don't fire in lockstep, which would both be
unrealistic and create pathological event bursts).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.sim.kernel import EventHandle, Simulator


class PeriodicTask:
    """Runs ``fn()`` every ``interval`` seconds until stopped.

    Parameters
    ----------
    jitter:
        Fraction of ``interval`` used for uniform phase jitter on every
        firing (0 disables).  The *first* firing is additionally offset by a
        uniform random phase in ``[0, interval)`` when ``stagger`` is true.
    """

    def __init__(self, sim: Simulator, interval: float, fn: Callable[[], None],
                 *, rng: np.random.Generator | None = None,
                 jitter: float = 0.0, stagger: bool = True,
                 start: bool = True):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if jitter < 0 or jitter >= 1:
            raise ValueError("jitter must be in [0, 1)")
        if (jitter > 0 or stagger) and rng is None:
            raise ValueError("rng required when jitter or stagger enabled")
        self.sim = sim
        self.interval = interval
        self.fn = fn
        self.rng = rng
        self.jitter = jitter
        self.stagger = stagger
        self._handle: EventHandle | None = None
        self.firings = 0
        self.stopped = False
        if start:
            self.start()

    def start(self) -> None:
        if self._handle is not None:
            return
        self.stopped = False
        first = self.interval
        if self.stagger and self.rng is not None:
            first = float(self.rng.uniform(0, self.interval))
        self._handle = self.sim.schedule(first, self._fire)

    def stop(self) -> None:
        self.stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _next_delay(self) -> float:
        if self.jitter and self.rng is not None:
            lo = self.interval * (1 - self.jitter)
            hi = self.interval * (1 + self.jitter)
            return float(self.rng.uniform(lo, hi))
        return self.interval

    def _fire(self) -> None:
        if self.stopped:
            return
        self._handle = None
        self.firings += 1
        self.fn()
        if not self.stopped:  # fn may have called stop()
            self._handle = self.sim.schedule(self._next_delay(), self._fire)
