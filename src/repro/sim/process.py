"""Periodic tasks on top of the one-shot event kernel.

Heartbeats, DHT stabilization, aggregation refresh, and neighbor load
exchange are all periodic soft-state protocols; :class:`PeriodicTask` gives
them a common cancellable implementation with optional phase jitter (so a
thousand nodes' timers don't fire in lockstep, which would both be
unrealistic and create pathological event bursts).

Each firing reschedules through :meth:`Simulator.schedule_timer`, so the
pending timer waits on the kernel's hierarchical timer wheel rather than
the event heap: stopping a task (churn, crash) is O(1) and leaves no heap
tombstone, and 10k nodes' worth of heartbeat timers cost the heap nothing
between firings.  Firing order is identical either way — wheel timers
carry the same global sequence numbers as heap events.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.sim.kernel import EventHandle, Simulator, WheelTimer
from repro.util.rng import ChunkedUniform


class PeriodicTask:
    """Runs ``fn()`` every ``interval`` seconds until stopped.

    Parameters
    ----------
    rng:
        Source of phase randomness: a ``numpy`` ``Generator``, or a
        :class:`repro.util.rng.ChunkedUniform` block sampler (the grid
        passes one shared sampler per stream — bit-identical values,
        vectorized draws).  Only ``.uniform(low, high)`` is used.
    jitter:
        Fraction of ``interval`` used for uniform phase jitter on every
        firing (0 disables).  The *first* firing is additionally offset by a
        uniform random phase in ``[0, interval)`` when ``stagger`` is true.
    """

    def __init__(self, sim: Simulator, interval: float, fn: Callable[[], None],
                 *, rng: np.random.Generator | ChunkedUniform | None = None,
                 jitter: float = 0.0, stagger: bool = True,
                 start: bool = True):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if jitter < 0 or jitter >= 1:
            raise ValueError("jitter must be in [0, 1)")
        if (jitter > 0 or stagger) and rng is None:
            raise ValueError("rng required when jitter or stagger enabled")
        self.sim = sim
        self.interval = interval
        self.fn = fn
        self.rng = rng
        self.jitter = jitter
        self.stagger = stagger
        # Hot-path hoists: rescheduling happens once per firing per task,
        # so the jitter window and the bound _fire reference are computed
        # once here instead of per firing (creating a fresh bound-method
        # object every firing was measurable at heartbeat scale).
        self._lo = interval * (1 - jitter)
        self._hi = interval * (1 + jitter)
        self._fire_ref = self._fire
        self._handle: EventHandle | None = None
        self.firings = 0
        self.stopped = False
        if start:
            self.start()

    def start(self) -> None:
        if self._handle is not None:
            return
        self.stopped = False
        first = self.interval
        if self.stagger and self.rng is not None:
            first = float(self.rng.uniform(0, self.interval))
        self._handle = self.sim.schedule_timer(first, self._fire_ref)

    def stop(self) -> None:
        self.stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _next_delay(self) -> float:
        if self.jitter and self.rng is not None:
            return float(self.rng.uniform(self._lo, self._hi))
        return self.interval

    def _fire(self) -> None:
        if self.stopped:
            return
        handle = self._handle
        self._handle = None
        self.firings += 1
        self.fn()
        if not self.stopped:  # fn may have called stop()
            # No-jitter tasks skip the rng branch (and _next_delay call)
            # entirely: the common telemetry/maintenance timers reschedule
            # with two attribute loads and a schedule().
            if self.jitter:
                delay = float(self.rng.uniform(self._lo, self._hi))
            else:
                delay = self.interval
            if type(handle) is WheelTimer:
                # Re-arm the fired wheel timer in place instead of
                # allocating a fresh one per firing (same sequence
                # numbering, same firing order — see reschedule_timer).
                self._handle = self.sim.reschedule_timer(
                    handle, delay, self._fire_ref)
            else:
                self._handle = self.sim.schedule_timer(delay, self._fire_ref)
