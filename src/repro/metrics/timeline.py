"""Load timelines: watch imbalance develop over virtual time.

The paper's Figure 2 reports end-of-run wait statistics; the *mechanism*
behind them — queues piling up on a few unlucky nodes — is a time-series
phenomenon.  :class:`LoadTimeline` samples the live nodes' queue lengths
periodically and keeps per-sample aggregates (mean/std/max/Jain index),
so an experiment can show, e.g., basic CAN's fairness index collapsing on
the pathological workload while pushing-CAN's stays near 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.sim.process import PeriodicTask
from repro.util.stats import jains_fairness

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.system import DesktopGrid


@dataclass(frozen=True)
class LoadSample:
    time: float
    live_nodes: int
    mean_queue: float
    std_queue: float
    max_queue: int
    fairness: float


class LoadTimeline:
    """Periodic sampler of the grid's queue-length distribution."""

    def __init__(self, grid: "DesktopGrid", interval: float = 10.0):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.grid = grid
        self.interval = interval
        self.samples: list[LoadSample] = []
        self._task = PeriodicTask(grid.sim, interval, self._sample,
                                  rng=grid.rng_protocol, stagger=False)

    def stop(self) -> None:
        self._task.stop()

    def _sample(self) -> None:
        # Columnar read: one masked numpy expression instead of an O(N)
        # per-node attribute scan (identical values — the registry mirrors
        # queue_len at every change).
        queues = self.grid.registry.live_queue_lens().astype(float)
        if queues.size == 0:
            return
        self.samples.append(LoadSample(
            time=self.grid.sim.now,
            live_nodes=int(queues.size),
            mean_queue=float(queues.mean()),
            std_queue=float(queues.std()),
            max_queue=int(queues.max()),
            fairness=jains_fairness(queues),
        ))

    # -- views ---------------------------------------------------------------

    def series(self, field: str) -> list[tuple[float, float]]:
        """(time, value) pairs for one sample field."""
        return [(s.time, float(getattr(s, field))) for s in self.samples]

    def peak(self, field: str) -> float:
        if not self.samples:
            return float("nan")
        return max(float(getattr(s, field)) for s in self.samples)

    def trough(self, field: str) -> float:
        if not self.samples:
            return float("nan")
        return min(float(getattr(s, field)) for s in self.samples)

    def sparkline(self, field: str, width: int = 60) -> str:
        """Unicode mini-chart of one field over time."""
        values = [v for _, v in self.series(field)]
        return ascii_sparkline(values, width=width)


def ascii_sparkline(values, width: int = 60) -> str:
    """Downsample ``values`` to ``width`` buckets of unicode block levels."""
    blocks = " ▁▂▃▄▅▆▇█"
    vals = np.asarray(list(values), dtype=float)
    if vals.size == 0:
        return ""
    if vals.size > width:
        # Bucket-mean downsampling.
        edges = np.linspace(0, vals.size, width + 1).astype(int)
        vals = np.array([vals[a:b].mean() if b > a else vals[min(a, vals.size - 1)]
                         for a, b in zip(edges, edges[1:])])
    lo, hi = float(vals.min()), float(vals.max())
    if hi - lo < 1e-12:
        return blocks[1] * vals.size
    levels = np.clip(((vals - lo) / (hi - lo) * (len(blocks) - 2)).round() + 1,
                     1, len(blocks) - 1).astype(int)
    return "".join(blocks[level] for level in levels)


def utilization_report(grid: "DesktopGrid", horizon: float | None = None
                       ) -> dict[str, float]:
    """Per-node busy-time utilization summary over ``horizon`` (defaults to
    the grid's current virtual time)."""
    horizon = horizon if horizon is not None else grid.sim.now
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    busy = grid.registry.busy_times()
    util = busy / horizon
    return {
        "mean_utilization": float(util.mean()),
        "max_utilization": float(util.max()),
        "idle_nodes": int((busy == 0).sum()),
        "busy_fairness": jains_fairness(busy) if busy.sum() > 0 else float("nan"),
        "total_cpu_seconds": float(busy.sum()),
    }
