"""Collects the quantities the paper's evaluation reports.

Figure 2 reports the average and standard deviation of **job wait time**
(submission to execution start); the text additionally claims a "small
number of hops" of matchmaking cost and, for the churn story, recovery
without client resubmission.  The collector records terminal job records
and recovery events; summaries are computed on demand.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.grid.job import Job, JobState
from repro.util.stats import RunningStats, jains_fairness


class MetricsCollector:
    """Sink for job-lifecycle events, owned by a :class:`DesktopGrid`."""

    def __init__(self) -> None:
        self.done: list[Job] = []
        self.recoveries: Counter[str] = Counter()
        #: Per-kind recovery latencies: virtual seconds from the run node's
        #: last sign of life to the owner acting on its loss.
        self.recovery_latencies: dict[str, list[float]] = {}
        self.resubmissions = 0

    # -- event hooks (called by the grid/protocol layer) -------------------

    def on_job_done(self, job: Job) -> None:
        self.done.append(job)

    def on_recovery(self, kind: str, job: Job,
                    latency: float | None = None) -> None:
        self.recoveries[kind] += 1
        if latency is not None:
            self.recovery_latencies.setdefault(kind, []).append(latency)

    def on_resubmission(self, job: Job) -> None:
        self.resubmissions += 1

    # -- views --------------------------------------------------------------

    def completed(self) -> list[Job]:
        return [j for j in self.done if j.state is JobState.COMPLETED]

    def failed(self) -> list[Job]:
        return [j for j in self.done if j.state is JobState.FAILED]

    def lost(self) -> list[Job]:
        return [j for j in self.done if j.state is JobState.LOST]

    def wait_times(self) -> np.ndarray:
        """Wait time (start - submit) of every completed job."""
        return np.array([j.wait_time for j in self.completed()], dtype=float)

    def turnarounds(self) -> np.ndarray:
        return np.array([j.turnaround for j in self.completed()], dtype=float)

    def match_hops(self) -> np.ndarray:
        """Matchmaking overlay hops per completed job (search only)."""
        return np.array([j.match_hops for j in self.completed()], dtype=float)

    def owner_route_hops(self) -> np.ndarray:
        return np.array([j.owner_route_hops for j in self.completed()], dtype=float)

    def total_matchmaking_cost(self) -> np.ndarray:
        """Hops + probes + pushes per completed job: total messages spent
        placing the job (the paper's "matchmaking cost")."""
        return np.array(
            [j.owner_route_hops + j.match_hops + j.match_probes + j.pushes
             for j in self.completed()],
            dtype=float,
        )

    # -- summaries ------------------------------------------------------------

    def wait_stats(self) -> RunningStats:
        stats = RunningStats()
        stats.extend(self.wait_times())
        return stats

    def wait_percentiles(self, qs: tuple[float, ...] = (50, 95, 99)
                         ) -> dict[str, float]:
        """Exact wait-time percentiles (``{"wait_p50": ...}``).  The mean
        hides the tail the paper's std-dev bars gesture at; p95/p99 name it
        directly."""
        waits = self.wait_times()
        if not waits.size:
            return {f"wait_p{q:g}": float("nan") for q in qs}
        values = np.percentile(waits, qs)
        return {f"wait_p{q:g}": float(v) for q, v in zip(qs, values)}

    def summary(self, node_loads: list[int] | None = None) -> dict[str, float]:
        waits = self.wait_times()
        hops = self.match_hops()
        cost = self.total_matchmaking_cost()
        jobs = self.completed()

        def mean_of(attr: str) -> float:
            if not jobs:
                return float("nan")
            return float(np.mean([getattr(j, attr) for j in jobs]))

        out: dict[str, float] = {
            "jobs_done": float(len(self.done)),
            "completed": float(len(jobs)),
            "failed": float(len(self.failed())),
            "lost": float(len(self.lost())),
            "wait_mean": float(waits.mean()) if waits.size else float("nan"),
            "wait_std": float(waits.std()) if waits.size else float("nan"),
            "wait_max": float(waits.max()) if waits.size else float("nan"),
            **self.wait_percentiles(),
            "match_hops_mean": float(hops.mean()) if hops.size else float("nan"),
            "match_cost_mean": float(cost.mean()) if cost.size else float("nan"),
            "owner_hops_mean": mean_of("owner_route_hops"),
            "probes_mean": mean_of("match_probes"),
            "pushes_mean": mean_of("pushes"),
            "recoveries_run_node": float(self.recoveries.get("run-node", 0)),
            "recoveries_owner": float(self.recoveries.get("owner", 0)),
            "recoveries_dispatch": float(self.recoveries.get("dispatch", 0)),
            "resubmissions": float(self.resubmissions),
        }
        all_latencies = [v for vals in self.recovery_latencies.values()
                         for v in vals]
        # 0.0 (not nan) when no recovery happened: keeps summaries of
        # identical runs equal (nan != nan) and reads as "nothing to
        # recover" in churn-free experiments.
        out["recovery_latency_mean"] = (
            float(np.mean(all_latencies)) if all_latencies else 0.0)
        if node_loads is not None:
            out["load_fairness"] = jains_fairness(node_loads)
        return out
