"""Metrics: per-job accounting and experiment-facing summaries."""

from repro.metrics.collector import MetricsCollector
from repro.metrics.report import format_table

__all__ = ["MetricsCollector", "format_table"]
