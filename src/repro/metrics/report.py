"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows/series the paper's figures
show; these helpers keep the formatting in one place.
"""

from __future__ import annotations

from typing import Any, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str | None = None, float_fmt: str = "{:.2f}") -> str:
    """Render an aligned monospace table."""
    def fmt(cell: Any) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row width {len(row)} != header width {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, pairs: Sequence[tuple[Any, float]],
                  x_label: str = "x", y_label: str = "y") -> str:
    """Render one figure series as labelled (x, y) rows."""
    rows = [(x, y) for x, y in pairs]
    return format_table([x_label, y_label], rows, title=name)


def format_barchart(title: str,
                    groups: Sequence[tuple[str, Sequence[tuple[str, float]]]],
                    width: int = 50, unit: str = "") -> str:
    """Render grouped horizontal bars (the text rendition of a paper
    figure's bar groups).

    ``groups`` is ``[(group_label, [(series_label, value), ...]), ...]``;
    bars are scaled to the global maximum so groups are comparable, which
    is how the paper's shared-axis panels read.
    """
    if width < 8:
        raise ValueError("width must be >= 8")
    values = [v for _, series in groups for _, v in series]
    if not values:
        return f"{title}\n(no data)"
    peak = max(max(values), 1e-12)
    label_w = max((len(lbl) for _, series in groups for lbl, _ in series),
                  default=1)
    lines = [title, "=" * len(title)]
    for group_label, series in groups:
        lines.append(f"{group_label}:")
        for label, value in series:
            bar = "#" * max(1 if value > 0 else 0, round(width * value / peak))
            lines.append(f"  {label.ljust(label_w)} |{bar.ljust(width)}| "
                         f"{value:.2f}{unit}")
        lines.append("")
    return "\n".join(lines[:-1])
