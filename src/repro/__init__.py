"""repro — a P2P desktop grid, reproducing Kim et al. (IPDPS 2007),
"Creating a Robust Desktop Grid using Peer-to-Peer Services".

Public API tour
---------------
* :class:`repro.grid.DesktopGrid` / :class:`repro.grid.GridConfig` — build
  and run a simulated grid deployment.
* :func:`repro.match.make_matchmaker` — choose a matchmaking algorithm
  (``"centralized"``, ``"rn-tree"``, ``"can"``, ``"can-push"``,
  ``"ttl-walk"``).
* :mod:`repro.workloads` — the paper's clustered/mixed, lightly/heavily
  constrained workload families.
* :mod:`repro.experiments` — drivers that regenerate every figure/table.
* :mod:`repro.dht` — the Chord, CAN, and Kademlia substrates, usable on
  their own.

See ``examples/quickstart.py`` for a 30-line end-to-end run.
"""

from repro.grid import DesktopGrid, GridConfig, Job, JobProfile, JobState
from repro.match import make_matchmaker
from repro.workloads import WorkloadConfig

__version__ = "1.0.0"

__all__ = [
    "DesktopGrid",
    "GridConfig",
    "Job",
    "JobProfile",
    "JobState",
    "make_matchmaker",
    "WorkloadConfig",
    "__version__",
]
