"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the experiment drivers so a user can
regenerate any paper artifact without writing code:

.. code-block:: console

   $ python -m repro list
   $ python -m repro run figure2 --scale 0.25 --seeds 1,2,3
   $ python -m repro run churn
   $ python -m repro run all --out reports/
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable

from repro.experiments import (
    run_churn_experiment,
    run_heartbeat_sweep,
    run_latency_sensitivity,
    run_walk_length_sweep,
    run_dht_scaling,
    run_fairness_experiment,
    run_large_scale,
    run_figure2,
    run_hops_experiment,
    run_k_sweep_ablation,
    run_matchpipe_ablation,
    run_protocol_experiment,
    run_pushing_experiment,
    run_scaling_experiment,
    run_scenarios_experiment,
    run_ttl_ablation,
    run_virtual_dimension_ablation,
)


def _parse_seeds(text: str) -> tuple[int, ...]:
    try:
        seeds = tuple(int(s) for s in text.split(",") if s.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad seed list {text!r}") from None
    if not seeds:
        raise argparse.ArgumentTypeError("seed list is empty")
    return seeds


def _parse_sizes(text: str) -> tuple[int, ...]:
    try:
        sizes = tuple(int(s) for s in text.split(",") if s.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad size list {text!r}") from None
    if not sizes:
        raise argparse.ArgumentTypeError("size list is empty")
    if any(n < 1 for n in sizes):
        raise argparse.ArgumentTypeError("sizes must be positive")
    return sizes


#: Experiment registry: name -> (description, runner(scale, seeds) -> result).
#: Runners for parallelizable sweeps also accept an optional ``jobs=``
#: keyword (worker processes); the CLI forwards ``--jobs`` only when given,
#: so plain two-argument runners remain valid registry entries.
EXPERIMENTS: dict[str, tuple[str, Callable]] = {
    "figure2": ("Figure 2: job wait time, all four panels",
                lambda scale, seeds, jobs=None: run_figure2(
                    scale=scale, seeds=seeds, jobs=jobs)),
    "hops": ("matchmaking cost table ('a small number of hops')",
             lambda scale, seeds, jobs=None: run_hops_experiment(
                 scale=scale, seeds=seeds, jobs=jobs)),
    "pushing": ("load-aware pushing vs basic CAN",
                lambda scale, seeds, jobs=None: run_pushing_experiment(
                    scale=scale, seeds=seeds, jobs=jobs)),
    "churn": ("robustness under churn: P2P vs client-server",
              lambda scale, seeds, jobs=None: run_churn_experiment(
                  seeds=seeds, jobs=jobs)),
    "dht-scaling": ("DHT lookup cost vs N (Chord/Pastry/Kademlia/CAN)",
                    lambda scale, seeds, jobs=None: run_dht_scaling(
                        seed=seeds[0], include_large=scale >= 1.0,
                        jobs=jobs)),
    "large-scale": ("scale-out kernel validation at 10k-100k nodes",
                    lambda scale, seeds, jobs=None, sizes=None, churn_n=None:
                    run_large_scale(
                        workload_sizes=sizes if sizes is not None
                        else (max(50, int(2000 * scale)),
                              max(100, int(10_000 * scale))),
                        churn_n=churn_n if churn_n is not None
                        else max(500, int(100_000 * scale)),
                        seed=seeds[0], jobs=jobs)),
    "protocol": ("message-level Chord maintenance vs reliability",
                 lambda scale, seeds, jobs=None: run_protocol_experiment(
                     jobs=jobs)),
    "ablation-vdim": ("virtual-dimension ablation",
                      lambda scale, seeds, jobs=None:
                      run_virtual_dimension_ablation(
                          scale=scale, seed=seeds[0], jobs=jobs)),
    "ablation-k": ("RN-Tree extended-search k sweep",
                   lambda scale, seeds, jobs=None: run_k_sweep_ablation(
                       scale=scale, seed=seeds[0], jobs=jobs)),
    "ablation-ttl": ("TTL random walk vs structured matchmaking",
                     lambda scale, seeds, jobs=None: run_ttl_ablation(
                         scale=scale, seed=seeds[0], jobs=jobs)),
    "ablation-matchpipe": ("selection policy × probe mode under churn",
                           lambda scale, seeds, jobs=None:
                           run_matchpipe_ablation(seeds=seeds, jobs=jobs)),
    "fairness": ("fair-share vs FIFO queueing extension",
                 lambda scale, seeds, jobs=None:
                 run_fairness_experiment(seed=seeds[0])),
    "scaling": ("grid scalability: wait/cost vs N at constant load",
                lambda scale, seeds, jobs=None: run_scaling_experiment(
                    seed=seeds[0], jobs=jobs)),
    "scenarios": ("adversarial scenario packs x mitigation knobs",
                  lambda scale, seeds, jobs=None: run_scenarios_experiment(
                      seeds=seeds, jobs=jobs)),
    "tuning-heartbeat": ("heartbeat cadence: traffic vs detection latency",
                         lambda scale, seeds, jobs=None: run_heartbeat_sweep(
                             seed=seeds[0])),
    "tuning-walk": ("RN-Tree random-walk length sweep",
                    lambda scale, seeds, jobs=None: run_walk_length_sweep(
                        scale=scale, seed=seeds[0])),
    "tuning-latency": ("WAN latency sensitivity",
                       lambda scale, seeds, jobs=None: run_latency_sensitivity(
                           scale=scale, seed=seeds[0])),
}

#: Experiments whose driver is inherently single-replicate: the CLI runs
#: them with ``seeds[0]`` and *says so* when extra seeds are passed
#: (they used to be dropped silently).
SINGLE_SEED_EXPERIMENTS = frozenset({
    "dht-scaling", "protocol", "ablation-vdim", "ablation-k", "ablation-ttl",
    "fairness", "scaling", "tuning-heartbeat", "tuning-walk", "tuning-latency",
    "large-scale",
})

#: Experiments that can attach a telemetry stack: name -> runner taking
#: (scale, seeds, telemetry).  Kept separate from :data:`EXPERIMENTS`
#: so its entries stay plain ``(description, runner(scale, seeds))``
#: pairs for external callers.
TELEMETRY_RUNNERS: dict[str, Callable] = {
    "figure2": lambda scale, seeds, tel, jobs=None: run_figure2(
        scale=scale, seeds=seeds, telemetry=tel, jobs=jobs),
    "hops": lambda scale, seeds, tel, jobs=None: run_hops_experiment(
        scale=scale, seeds=seeds, telemetry=tel, jobs=jobs),
    "pushing": lambda scale, seeds, tel, jobs=None: run_pushing_experiment(
        scale=scale, seeds=seeds, telemetry=tel, jobs=jobs),
}

#: Experiments ``repro job-trace`` can drive: they must accept
#: ``grid_overrides`` so the causal-tracing run can switch the grid to
#: the message-level pipeline (rpc probes + acknowledged dispatch).
JOB_TRACE_RUNNERS: dict[str, Callable] = {
    "figure2": lambda scale, seeds, tel, overrides, jobs=None: run_figure2(
        scale=scale, seeds=seeds, telemetry=tel, grid_overrides=overrides,
        jobs=jobs),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="P2P desktop grid (Kim et al., IPDPS 2007): regenerate "
                    "the paper's figures and tables.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment",
                     choices=sorted(EXPERIMENTS) + ["all"],
                     help="experiment id (see 'repro list')")
    run.add_argument("--scale", type=float, default=0.25,
                     help="workload scale vs the paper's 1000 nodes/5000 "
                          "jobs (default 0.25; 1.0 = paper scale)")
    run.add_argument("--seeds", type=_parse_seeds, default=(1,),
                     help="comma-separated replicate seeds (default: 1)")
    run.add_argument("--out", type=Path, default=None,
                     help="directory to also write the report(s) into")
    run.add_argument("--check", action="store_true",
                     help="fail (exit 1) if the paper-shape checks fail")
    run.add_argument("--jobs", type=int, default=None, metavar="N",
                     help="worker processes for the sweep fan-out "
                          "(0 = all cores; default: serial, or the "
                          "REPRO_JOBS environment variable if set)")
    run.add_argument("--sizes", type=_parse_sizes, default=None,
                     metavar="N1,N2,...",
                     help="large-scale only: comma-separated workload-cell "
                          "node counts, overriding the --scale-derived "
                          "defaults (e.g. --sizes 2048,10000)")
    run.add_argument("--churn-n", type=int, default=None, metavar="N",
                     help="large-scale only: Chord ring size for the churn "
                          "cell, overriding the --scale-derived default")
    run.add_argument("--telemetry", type=Path, default=None, metavar="PATH",
                     help="attach the telemetry stack and export the "
                          "span/metric stream as JSONL to PATH (supported "
                          "for: " + ", ".join(sorted(TELEMETRY_RUNNERS)) + ")")
    run.add_argument("--engine-stats", action="store_true",
                     help="print parallel-engine self-telemetry after the "
                          "run (batching, worker utilization, merge time, "
                          "serialized bytes; meaningful with --jobs >= 2)")

    trace = sub.add_parser(
        "trace",
        help="run an experiment with full tracing and print the "
             "observability report")
    trace.add_argument("experiment", choices=sorted(TELEMETRY_RUNNERS),
                       help="experiment id (telemetry-capable ones only)")
    trace.add_argument("--scale", type=float, default=0.25,
                       help="workload scale (default 0.25)")
    trace.add_argument("--seeds", type=_parse_seeds, default=(1,),
                       help="comma-separated replicate seeds (default: 1)")
    trace.add_argument("--out", type=Path, default=None, metavar="PATH",
                       help="also export the raw stream as JSONL to PATH")
    trace.add_argument("--categories", type=str, default=None,
                       help="comma-separated trace categories to keep "
                            "(default: all; e.g. 'dht.lookup,job.match')")
    trace.add_argument("--buffer", type=int, default=200_000,
                       help="trace ring-buffer capacity in records "
                            "(default 200000; oldest records drop first)")

    jt = sub.add_parser(
        "job-trace",
        help="run a traced experiment and render causal per-job "
             "timelines (phase breakdown, critical path, anomalies)")
    jt.add_argument("experiment", choices=sorted(JOB_TRACE_RUNNERS),
                    help="experiment id (causal-tracing capable ones)")
    jt.add_argument("--scale", type=float, default=0.1,
                    help="workload scale (default 0.1 — tracing every job "
                         "is verbose; raise deliberately)")
    jt.add_argument("--seeds", type=_parse_seeds, default=(1,),
                    help="comma-separated replicate seeds (default: 1)")
    jt.add_argument("--slowest", type=int, default=5, metavar="K",
                    help="render ASCII timelines for the K slowest jobs "
                         "(default 5)")
    jt.add_argument("--probe-mode", choices=("oracle", "rpc"), default="rpc",
                    help="grid probe mode for the traced run (default rpc: "
                         "real probe/dispatch messages, so remote-node "
                         "spans appear in the trees)")
    jt.add_argument("--out", type=Path, default=None, metavar="PATH",
                    help="also export the raw span stream as JSONL to PATH")
    jt.add_argument("--buffer", type=int, default=500_000,
                    help="trace ring-buffer capacity in records "
                         "(default 500000)")
    jt.add_argument("--jobs", type=int, default=None, metavar="N",
                    help="worker processes (traces merge deterministically "
                         "in submission order)")
    jt.add_argument("--check", action="store_true",
                    help="fail (exit 1) on trace anomalies: orphan spans, "
                         "jobs without a terminal event, or ring truncation")

    ph = sub.add_parser(
        "perf-history",
        help="walk git log for committed BENCH_perf.json revisions and "
             "print per-cell wall/throughput trajectories")
    ph.add_argument("--repo", type=Path, default=Path("."),
                    help="repository root (default: cwd)")
    ph.add_argument("--cell", type=str, default=None,
                    help="restrict the report to one bench cell "
                         "(e.g. figure2.serial)")
    return parser


def _check_writable(path: Path | None) -> bool:
    """Fail fast on an unwritable telemetry path — *before* spending
    minutes on the experiment whose trace would then be lost."""
    if path is None:
        return True
    parent = path.parent if str(path.parent) else Path(".")
    if not parent.is_dir():
        print(f"error: cannot write telemetry to {path}: "
              f"directory {parent} does not exist", file=sys.stderr)
        return False
    return True


def _warn_extra_seeds(name: str, seeds: tuple[int, ...]) -> None:
    if name in SINGLE_SEED_EXPERIMENTS and len(seeds) > 1:
        print(f"warning: experiment '{name}' is single-replicate; "
              f"running seed {seeds[0]} and ignoring {list(seeds[1:])}",
              file=sys.stderr)


def _run_one(name: str, scale: float, seeds: tuple[int, ...],
             out: Path | None, check: bool,
             telemetry_out: Path | None = None,
             jobs: int | None = None,
             sizes: tuple[int, ...] | None = None,
             churn_n: int | None = None) -> bool:
    _warn_extra_seeds(name, seeds)
    # Forward --jobs only when given so registry entries (and the test
    # suite's monkeypatched fakes) may remain plain two-argument runners.
    kw: dict = {} if jobs is None else {"jobs": jobs}
    # --sizes/--churn-n are large-scale cell overrides; other runners do
    # not accept them, so warn and drop rather than crash mid-'run all'.
    if sizes is not None or churn_n is not None:
        if name == "large-scale":
            if sizes is not None:
                kw["sizes"] = sizes
            if churn_n is not None:
                kw["churn_n"] = churn_n
        else:
            print(f"warning: --sizes/--churn-n apply only to 'large-scale'; "
                  f"ignored for '{name}'", file=sys.stderr)
    tel = None
    if telemetry_out is not None:
        if name in TELEMETRY_RUNNERS:
            from repro.telemetry.core import Telemetry

            tel = Telemetry(profile_kernel=True, sample_interval=10.0)
            result = TELEMETRY_RUNNERS[name](scale, seeds, tel, **kw)
        else:
            print(f"warning: experiment '{name}' does not support "
                  "--telemetry; running without it", file=sys.stderr)
            _desc, runner = EXPERIMENTS[name]
            result = runner(scale, seeds, **kw)
    else:
        _desc, runner = EXPERIMENTS[name]
        result = runner(scale, seeds, **kw)
    report = result.report()
    print(report)
    ok = True
    checks = getattr(result, "shape_checks", None)
    if checks is not None:
        verdicts = checks()
        print("\nshape checks:")
        for key, passed in verdicts.items():
            print(f"  [{'ok' if passed else 'FAIL'}] {key}")
        ok = all(verdicts.values())
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        (out / f"{name}.txt").write_text(report + "\n")
        print(f"\n[written to {out / f'{name}.txt'}]")
    if tel is not None:
        tel.export_jsonl(telemetry_out)
        n = len(tel.bus) + len(tel.final_records())
        print(f"\n[telemetry: {n} records written to {telemetry_out}]")
        if tel.profile is not None and tel.profile.runs:
            from repro.telemetry.summary import kernel_profile_report

            print()
            print(kernel_profile_report(tel))
    return ok or not check


def _run_job_trace(args) -> int:
    from repro.telemetry.core import Telemetry
    from repro.telemetry.timeline import (
        render_anomalies,
        render_critical_path,
        render_job_timeline,
        render_phase_table,
        timeline_from_bus,
    )

    if not _check_writable(args.out):
        return 2
    tel = Telemetry(maxlen=args.buffer, sample_interval=10.0)
    overrides = {"probe_mode": args.probe_mode,
                 "dispatch_ack": args.probe_mode == "rpc"}
    kw: dict = {} if args.jobs is None else {"jobs": args.jobs}
    JOB_TRACE_RUNNERS[args.experiment](args.scale, args.seeds, tel,
                                       overrides, **kw)
    tl = timeline_from_bus(tel.bus)
    print(f"causal trace: {len(tl.jobs)} jobs, {len(tel.bus)} records "
          f"(probe_mode={args.probe_mode})\n")
    for jt in tl.slowest(args.slowest):
        print(render_job_timeline(jt))
        print("critical path:")
        print(render_critical_path(jt))
        print()
    print(render_phase_table(tl))
    print()
    print(render_anomalies(tl))
    if args.out is not None:
        tel.export_jsonl(args.out)
        n = len(tel.bus) + len(tel.final_records())
        print(f"\n[trace: {n} records written to {args.out}]")
    if args.check and not tl.healthy:
        print("\njob-trace --check: trace anomalies detected",
              file=sys.stderr)
        return 1
    return 0


def _run_perf_history(args) -> int:
    from repro.perfhistory import collect_history, history_report

    points = collect_history(repo=args.repo)
    print(history_report(points, only_cell=args.cell))
    return 0


def _run_trace(args) -> int:
    from repro.telemetry.core import Telemetry
    from repro.telemetry.summary import telemetry_report

    if not _check_writable(args.out):
        return 2
    categories = None
    if args.categories:
        categories = {c.strip() for c in args.categories.split(",")
                      if c.strip()}
    tel = Telemetry(categories=categories, maxlen=args.buffer,
                    profile_kernel=True, sample_interval=10.0)
    TELEMETRY_RUNNERS[args.experiment](args.scale, args.seeds, tel)
    print(telemetry_report(tel))
    if args.out is not None:
        tel.export_jsonl(args.out)
        n = len(tel.bus) + len(tel.final_records())
        print(f"\n[telemetry: {n} records written to {args.out}]")
    return 0


def main(argv: list[str] | None = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # Piping into `head` etc. closes stdout early; exit quietly like
        # any well-behaved CLI.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name in sorted(EXPERIMENTS):
            print(f"{name.ljust(width)}  {EXPERIMENTS[name][0]}")
        return 0
    if args.command == "trace":
        return _run_trace(args)
    if args.command == "job-trace":
        return _run_job_trace(args)
    if args.command == "perf-history":
        return _run_perf_history(args)
    if not _check_writable(args.telemetry):
        return 2
    names = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    engine_stats = getattr(args, "engine_stats", False)
    if engine_stats:
        from repro.experiments import parallel

        parallel.reset_engine_stats()
    all_ok = True
    for name in names:
        if len(names) > 1:
            print(f"\n=== {name} ===\n")
        all_ok &= _run_one(name, args.scale, args.seeds, args.out, args.check,
                           telemetry_out=args.telemetry,
                           jobs=getattr(args, "jobs", None),
                           sizes=getattr(args, "sizes", None),
                           churn_n=getattr(args, "churn_n", None))
    if engine_stats:
        print()
        print(parallel.render_engine_stats())
    return 0 if all_ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
