"""The Pastry overlay: prefix routing with leaf-set delivery.

Routing (Pastry §2.3): if the key is within the leaf-set arc, deliver to
the numerically closest leaf (one hop).  Otherwise forward to the routing
-table entry sharing one more prefix digit with the key; if that entry is
missing or dead, the *rare case* forwards to any known node that shares
at least as long a prefix and is numerically closer to the key — which
guarantees progress, so the expected path length is ``log_{2^b} N``.
"""

from __future__ import annotations

import bisect
from typing import Iterable

import numpy as np

from repro.dht.base import DHTOverlay, RouteResult
from repro.dht.pastry.node import (
    PastryNode,
    circular_distance,
    digits_of,
    shared_prefix_len,
)
from repro.util.ids import GUID_BITS


class PastryOverlay(DHTOverlay):
    """A simulated Pastry network.

    Parameters
    ----------
    b:
        Digit width; routing resolves ``b`` bits per hop (default 4 =>
        hexadecimal digits, the Pastry paper's default).
    leaf_set_size:
        Total leaf-set size ``l`` (``l/2`` per side).
    """

    def __init__(self, rng: np.random.Generator, bits: int = GUID_BITS,
                 b: int = 4, leaf_set_size: int = 8):
        super().__init__()
        if leaf_set_size < 2 or leaf_set_size % 2 != 0:
            raise ValueError("leaf_set_size must be a positive even number")
        self.rng = rng
        self.bits = bits
        self.b = b
        self.l = leaf_set_size
        self.nodes: dict[int, PastryNode] = {}
        self._live_ids: list[int] = []
        self._prefix_cache: dict[tuple[int, ...], list[int]] | None = None

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def build(self, node_ids: Iterable[int]) -> list[PastryNode]:
        """Oracle-construct the network (sorted leaf sets + full routing
        tables, the converged state protocol joins reach)."""
        created = []
        for nid in node_ids:
            if nid in self.nodes:
                raise ValueError(f"duplicate node id {nid:#x}")
            node = PastryNode(nid, bits=self.bits, b=self.b)
            self.nodes[nid] = node
            created.append(node)
        self._live_ids = sorted(self.nodes)
        self._prefix_cache = None
        for node in created:
            self._oracle_state(node)
        return created

    def join(self, node: PastryNode) -> None:
        """Admit one node (oracle wiring of it and its new neighbors;
        message-level join is modelled for Chord — see
        :mod:`repro.dht.chord.protocol` — Pastry uses the converged state)."""
        if node.node_id in self.nodes and self.nodes[node.node_id] is not node:
            raise ValueError(f"node id collision {node.node_id:#x}")
        self.nodes[node.node_id] = node
        node.alive = True
        bisect.insort(self._live_ids, node.node_id)
        self._prefix_cache = None
        self._oracle_state(node)
        # Nodes near the joiner (leaf-wise) and nodes whose routing table
        # had a hole the joiner fills learn about it.
        for other_id in self._leaf_neighborhood(node.node_id):
            self._oracle_state(self.nodes[other_id])
        prefix_len_map = digits_of(node.node_id, bits=self.bits, b=self.b)
        for other in self.nodes.values():
            if other is node or not other.alive:
                continue
            row = shared_prefix_len(other.digits, prefix_len_map)
            if row < len(other.routing_table):
                col = prefix_len_map[row]
                cur = other.routing_table[row][col]
                if cur is None or not cur.alive:
                    other.routing_table[row][col] = node

    def crash(self, node_id: int) -> None:
        node = self.nodes[node_id]
        if not node.alive:
            return
        node.alive = False
        node.store.clear()
        idx = bisect.bisect_left(self._live_ids, node_id)
        if idx < len(self._live_ids) and self._live_ids[idx] == node_id:
            self._live_ids.pop(idx)
        self._prefix_cache = None

    def repair(self) -> None:
        """Oracle repair of every live node's state after churn (the fixed
        point of Pastry's leaf-set/routing-table maintenance)."""
        for nid in self._live_ids:
            self._oracle_state(self.nodes[nid])

    def live_nodes(self) -> list[PastryNode]:
        return [self.nodes[nid] for nid in self._live_ids]

    @property
    def size(self) -> int:
        return len(self._live_ids)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def owner_oracle(self, key: int) -> PastryNode | None:
        """The live node circularly closest to ``key`` (ties: smaller id)."""
        if not self._live_ids:
            return None
        key &= (1 << self.bits) - 1
        idx = bisect.bisect_left(self._live_ids, key)
        candidates = {self._live_ids[(idx - 1) % len(self._live_ids)],
                      self._live_ids[idx % len(self._live_ids)]}
        best = min(candidates,
                   key=lambda nid: (circular_distance(nid, key, bits=self.bits),
                                    nid))
        return self.nodes[best]

    def route(self, key: int, start: PastryNode | None = None) -> RouteResult:
        key &= (1 << self.bits) - 1
        if start is None or not start.alive:
            start = self._random_live()
        if start is None:
            result = RouteResult(False, None, 0)
            self.note_route(result)
            return result
        key_digits = digits_of(key, bits=self.bits, b=self.b)
        cur = start
        hops = 0
        path = [cur.node_id]
        success = True
        max_hops = 4 * len(cur.digits) + 2 * self.size + 8
        while True:
            if hops > max_hops:
                success = False
                break
            # Fast path: the key falls inside the leaf-set arc.
            if cur.key_in_leaf_range(key):
                closest = cur.closest_leaf(key)
                if closest is not cur:
                    hops += 1
                    path.append(closest.node_id)
                cur = closest
                break
            row = shared_prefix_len(cur.digits, key_digits)
            nxt = None
            if row < len(cur.routing_table):
                entry = cur.routing_table[row][key_digits[row]]
                if entry is not None and entry.alive:
                    nxt = entry
            if nxt is None:
                # Rare case: no (live) routing entry — forward to any known
                # node with >= prefix length that is strictly closer.
                cur_d = circular_distance(cur.node_id, key, bits=self.bits)
                for cand in cur.all_known():
                    if not cand.alive:
                        continue
                    if shared_prefix_len(cand.digits, key_digits) >= row and \
                            circular_distance(cand.node_id, key,
                                              bits=self.bits) < cur_d:
                        nxt = cand
                        break
            if nxt is None:
                # No progress possible: we are the closest node we know of.
                break
            cur = nxt
            hops += 1
            path.append(cur.node_id)
        result = RouteResult(success, cur if success else None, hops, path)
        self.note_route(result)
        return result

    def replica_set(self, owner: PastryNode, key: int, replicas: int
                    ) -> list[PastryNode]:
        """Owner plus its nearest live leaves (Pastry/PAST replication)."""
        out = [owner]
        ranked = sorted(
            (leaf for leaf in owner.leaf_set() if leaf.alive),
            key=lambda n: (circular_distance(n.node_id, key, bits=self.bits),
                           n.node_id),
        )
        for leaf in ranked:
            if leaf not in out and len(out) < replicas:
                out.append(leaf)
        return out

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _random_live(self) -> PastryNode | None:
        if not self._live_ids:
            return None
        nid = self._live_ids[int(self.rng.integers(0, len(self._live_ids)))]
        return self.nodes[nid]

    def _leaf_neighborhood(self, nid: int) -> list[int]:
        """Ids of the ``l`` nodes around ``nid`` in the sorted ring."""
        ids = self._live_ids
        n = len(ids)
        if n <= 1:
            return []
        idx = bisect.bisect_left(ids, nid)
        out = []
        for k in range(1, self.l // 2 + 1):
            out.append(ids[(idx - k) % n])
            out.append(ids[(idx + k) % n])
        return [i for i in dict.fromkeys(out) if i != nid]

    def _oracle_state(self, node: PastryNode) -> None:
        ids = self._live_ids
        n = len(ids)
        node.leaf_smaller = []
        node.leaf_larger = []
        if n > 1:
            idx = bisect.bisect_left(ids, node.node_id)
            half = min(self.l // 2, (n - 1) // 2 + 1)
            seen = {node.node_id}
            for k in range(1, half + 1):
                small = ids[(idx - k) % n]
                if small not in seen:
                    seen.add(small)
                    node.leaf_smaller.append(self.nodes[small])
                large = ids[(idx + k) % n]
                if large not in seen:
                    seen.add(large)
                    node.leaf_larger.append(self.nodes[large])
        # Routing table: for each (row, col) pick the candidate closest to
        # this node (Pastry would pick the *network*-closest; id-closest is
        # the standard locality-free simulator stand-in).
        prefix_groups = self._prefix_groups()
        n_rows = len(node.routing_table)
        n_cols = 1 << self.b
        for row in range(n_rows):
            prefix = node.digits[:row]
            for col in range(n_cols):
                if col == node.digits[row]:
                    node.routing_table[row][col] = None
                    continue
                group = prefix_groups.get(prefix + (col,))
                if not group:
                    node.routing_table[row][col] = None
                    continue
                best = min(group, key=lambda nid: (
                    circular_distance(nid, node.node_id, bits=self.bits), nid))
                node.routing_table[row][col] = self.nodes[best]
            if not any(e is not None for e in node.routing_table[row]) \
                    and row > 0:
                # No other node shares even this prefix: deeper rows are
                # empty too; stop early (the leaf set covers delivery).
                break

    def _prefix_groups(self) -> dict[tuple[int, ...], list[int]]:
        """Live ids grouped by every prefix (cache invalidated on churn)."""
        if self._prefix_cache is not None:
            return self._prefix_cache
        groups: dict[tuple[int, ...], list[int]] = {}
        depths = self.bits // self.b
        for nid in self._live_ids:
            digits = digits_of(nid, bits=self.bits, b=self.b)
            for depth in range(1, depths + 1):
                groups.setdefault(digits[:depth], []).append(nid)
        self._prefix_cache = groups
        return groups
