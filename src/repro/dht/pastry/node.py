"""Pastry node state: prefix digits, routing table, leaf set."""

from __future__ import annotations

from repro.dht.base import DHTNode
from repro.util.ids import GUID_BITS


def digits_of(node_id: int, *, bits: int = GUID_BITS, b: int = 4) -> tuple[int, ...]:
    """The id as a big-endian sequence of base-``2**b`` digits."""
    n_digits = bits // b
    mask = (1 << b) - 1
    return tuple((node_id >> (b * (n_digits - 1 - i))) & mask
                 for i in range(n_digits))


def shared_prefix_len(a: tuple[int, ...], b: tuple[int, ...]) -> int:
    """Number of leading digits the two ids share."""
    n = 0
    for x, y in zip(a, b):
        if x != y:
            break
        n += 1
    return n


def circular_distance(a: int, b: int, *, bits: int = GUID_BITS) -> int:
    """Shortest distance around the id circle (Pastry's closeness metric)."""
    d = (a - b) & ((1 << bits) - 1)
    return min(d, (1 << bits) - d)


class PastryNode(DHTNode):
    """One Pastry participant.

    Attributes
    ----------
    routing_table:
        ``routing_table[row][col]`` holds a node whose id shares the first
        ``row`` digits with ours and whose digit at position ``row`` is
        ``col`` (None when no such node is known; the own-digit column is
        conventionally None too — routing never uses it).
    leaf_smaller / leaf_larger:
        The leaf set: the ``l/2`` numerically closest live nodes on each
        side (circularly), nearest first.
    """

    __slots__ = ("bits", "b", "digits", "routing_table",
                 "leaf_smaller", "leaf_larger")

    def __init__(self, node_id: int, bits: int = GUID_BITS, b: int = 4):
        super().__init__(node_id)
        if bits % b != 0:
            raise ValueError(f"bits ({bits}) must be a multiple of b ({b})")
        self.bits = bits
        self.b = b
        self.digits = digits_of(node_id, bits=bits, b=b)
        n_rows = bits // b
        n_cols = 1 << b
        self.routing_table: list[list[PastryNode | None]] = [
            [None] * n_cols for _ in range(n_rows)
        ]
        self.leaf_smaller: list[PastryNode] = []
        self.leaf_larger: list[PastryNode] = []

    # -- queries -----------------------------------------------------------

    def leaf_set(self) -> list["PastryNode"]:
        return self.leaf_smaller + self.leaf_larger

    def leaf_span(self) -> tuple[int, int] | None:
        """(min, max) circular span covered by the leaf set, as clockwise
        offsets from the farthest counter-clockwise leaf; None if empty."""
        if not self.leaf_smaller or not self.leaf_larger:
            return None
        return (self.leaf_smaller[-1].node_id, self.leaf_larger[-1].node_id)

    def key_in_leaf_range(self, key: int) -> bool:
        """True iff ``key`` falls within the circular arc covered by the
        leaf set (Pastry's fast path: deliver to the closest leaf)."""
        span = self.leaf_span()
        if span is None:
            return True  # tiny network: the leaf set IS the network
        lo, hi = span
        # Clockwise arc from lo to hi, inclusive.
        arc = (hi - lo) & ((1 << self.bits) - 1)
        off = (key - lo) & ((1 << self.bits) - 1)
        return off <= arc

    def closest_leaf(self, key: int) -> "PastryNode":
        """Numerically (circularly) closest live node among self + leaves."""
        best = self
        best_d = circular_distance(self.node_id, key, bits=self.bits)
        for leaf in self.leaf_set():
            if not leaf.alive:
                continue
            d = circular_distance(leaf.node_id, key, bits=self.bits)
            if d < best_d or (d == best_d and leaf.node_id < best.node_id):
                best, best_d = leaf, d
        return best

    def all_known(self) -> list["PastryNode"]:
        """Every routing-state entry (for the rare-case fallback)."""
        out: list[PastryNode] = []
        seen: set[int] = set()
        for leaf in self.leaf_set():
            if leaf.node_id not in seen:
                seen.add(leaf.node_id)
                out.append(leaf)
        for row in self.routing_table:
            for entry in row:
                if entry is not None and entry.node_id not in seen:
                    seen.add(entry.node_id)
                    out.append(entry)
        return out
