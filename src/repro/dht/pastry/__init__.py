"""Pastry DHT (Rowstron & Druschel, Middleware 2001).

Prefix-based routing with leaf sets — the third of the four DHTs the
paper's §2 cites as candidate substrates ([17] CAN, [18] Pastry, [19]
Chord, [21] Tapestry; Tapestry's routing is Pastry-family prefix routing,
so this implementation covers that design point too).  Exposes the common
:class:`repro.dht.base.DHTOverlay` API and slots into the DHT-scaling
benchmarks alongside Chord, CAN, and Kademlia.
"""

from repro.dht.pastry.node import PastryNode
from repro.dht.pastry.overlay import PastryOverlay

__all__ = ["PastryNode", "PastryOverlay"]
