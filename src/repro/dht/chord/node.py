"""Chord node state: successor list, predecessor, finger table.

Routing state refers to other :class:`ChordNode` objects directly (the
simulator's stand-in for cached network addresses); a reference to a dead
node is exactly a stale address — usable for comparison, but any attempt to
*route through* it is skipped, modelling a timeout.
"""

from __future__ import annotations

from repro.dht.base import DHTNode
from repro.util.ids import GUID_BITS, ring_add, ring_between


class ChordNode(DHTNode):
    """One Chord participant.

    Attributes
    ----------
    successors:
        Successor list, nearest first.  Entry 0 is *the* successor; the rest
        provide failure tolerance (a node is cut off only if its whole list
        dies between repairs).
    predecessor:
        Known predecessor (may be stale/dead until stabilization runs).
    fingers:
        ``fingers[i]`` targets ``successor(id + 2**i)``; stale entries are
        tolerated by the lookup procedure.
    """

    __slots__ = ("bits", "successors", "predecessor", "fingers")

    def __init__(self, node_id: int, bits: int = GUID_BITS):
        super().__init__(node_id)
        self.bits = bits
        self.successors: list[ChordNode] = []
        self.predecessor: ChordNode | None = None
        self.fingers: list[ChordNode | None] = [None] * bits

    # -- routing-state queries -------------------------------------------

    def finger_start(self, i: int) -> int:
        """The id ``fingers[i]`` should be the successor of."""
        return ring_add(self.node_id, 1 << i, bits=self.bits)

    def first_live_successor(self) -> "ChordNode | None":
        """First live entry of the successor list, or None if all are dead."""
        for succ in self.successors:
            if succ.alive:
                return succ
        return None

    def closest_preceding_live(self, key: int) -> "ChordNode":
        """The live routing-table node closest to (but strictly before) ``key``.

        Scans fingers from farthest to nearest, then the successor list, and
        falls back to ``self`` when nothing qualifies (the caller then steps
        to the successor).  Skipping dead entries models lookup retry after
        a timeout on a stale address.
        """
        best = self
        for finger in reversed(self.fingers):
            if finger is not None and finger.alive and \
                    ring_between(finger.node_id, self.node_id, key):
                return finger
        # Fingers may all be stale after churn; the successor list still
        # guarantees progress.
        for succ in self.successors:
            if succ.alive and ring_between(succ.node_id, self.node_id, key):
                best = succ  # nearest-first list: later entries are farther
        return best

    def owns(self, key: int) -> bool:
        """True iff ``key`` falls in ``(predecessor, self]``.

        Only meaningful when the predecessor pointer is current; the overlay
        uses interval tests on the live ring for authoritative ownership.
        """
        if self.predecessor is None or self.predecessor is self:
            return True
        if key == self.node_id:
            return True
        return ring_between(key, self.predecessor.node_id, self.node_id)
