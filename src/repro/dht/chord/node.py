"""Chord node state: successor list, predecessor, finger table.

Routing state refers to other :class:`ChordNode` objects directly (the
simulator's stand-in for cached network addresses); a reference to a dead
node is exactly a stale address — usable for comparison, but any attempt to
*route through* it is skipped, modelling a timeout.

Finger storage is columnar: once a node is admitted to a
:class:`~repro.dht.chord.overlay.ChordOverlay`, its finger table is one
int32 row of the overlay's dense ``(nodes, bits)`` matrix (entries are
dense node slots, ``-1`` empty) instead of a per-node list of object
references — ~256 B of array row instead of a ~570 B pointer list per
node at ``bits=64`` — and :meth:`closest_preceding_live` evaluates the
whole table as a few array masks over the overlay's id/alive columns
instead of a Python scan.  ``node.fingers`` stays a list-like view
(:class:`FingerRow`) so maintenance code and tests read and write
entries exactly as before; a node constructed standalone (before any
overlay admits it) falls back to a plain local list.
"""

from __future__ import annotations

from repro.dht.base import DHTNode
from repro.util.ids import GUID_BITS, ring_add, ring_between

#: The ``alive`` slot descriptor from the base class; :class:`ChordNode`
#: shadows it with a property so every write also lands in the owning
#: overlay's dense ``_alive_col`` (the column the vectorized
#: closest-preceding scan reads) — no caller can desync the two.
_ALIVE = DHTNode.alive


class FingerRow:
    """List-like view of one node's row of the overlay finger matrix.

    Resolves dense slots back to :class:`ChordNode` objects on access, so
    ``node.fingers[i]``, iteration, and ``reversed()`` behave exactly like
    the former per-node list.  The view holds ``(overlay, dense)`` rather
    than a row reference so it stays valid across matrix growth.
    """

    __slots__ = ("_ov", "_d")

    def __init__(self, ov, dense: int):
        self._ov = ov
        self._d = dense

    def __len__(self) -> int:
        return self._ov.bits

    def __getitem__(self, i: int) -> "ChordNode | None":
        idx = int(self._ov._finger_row(self._d)[i])
        return None if idx < 0 else self._ov._by_dense[idx]

    def __setitem__(self, i: int, node: "ChordNode | None") -> None:
        self._ov._finger_row(self._d)[i] = -1 if node is None else node._dense

    def __iter__(self):
        by_dense = self._ov._by_dense
        for idx in self._ov._finger_row(self._d).tolist():
            yield None if idx < 0 else by_dense[idx]

    def __reversed__(self):
        by_dense = self._ov._by_dense
        for idx in self._ov._finger_row(self._d)[::-1].tolist():
            yield None if idx < 0 else by_dense[idx]


class ChordNode(DHTNode):
    """One Chord participant.

    Attributes
    ----------
    successors:
        Successor list, nearest first.  Entry 0 is *the* successor; the rest
        provide failure tolerance (a node is cut off only if its whole list
        dies between repairs).
    predecessor:
        Known predecessor (may be stale/dead until stabilization runs).
    fingers:
        ``fingers[i]`` targets ``successor(id + 2**i)``; stale entries are
        tolerated by the lookup procedure.  Backed by the overlay finger
        matrix once admitted (see module docstring).
    fix_next:
        Next finger level :meth:`ChordOverlay.fix_fingers_node` will
        refresh (per-node protocol state, formerly an overlay-side dict).
    """

    __slots__ = ("bits", "successors", "predecessor", "fix_next",
                 "_ov", "_dense", "_local_fingers")

    def __init__(self, node_id: int, bits: int = GUID_BITS):
        # Overlay attachment must exist before super().__init__ assigns
        # ``alive`` (the property below reads it).
        self._ov = None
        self._dense = -1
        super().__init__(node_id)
        self.bits = bits
        self.successors: list[ChordNode] = []
        self.predecessor: ChordNode | None = None
        self.fix_next = 0
        self._local_fingers: list[ChordNode | None] | None = [None] * bits

    # -- columnar mirrors --------------------------------------------------

    @property
    def alive(self) -> bool:  # shadows the DHTNode slot
        return _ALIVE.__get__(self, ChordNode)

    @alive.setter
    def alive(self, value: bool) -> None:
        _ALIVE.__set__(self, value)
        ov = self._ov
        if ov is not None:
            ov._alive_col[self._dense] = value

    @property
    def fingers(self):
        ov = self._ov
        if ov is None:
            return self._local_fingers
        return FingerRow(ov, self._dense)

    @fingers.setter
    def fingers(self, values) -> None:
        ov = self._ov
        if ov is None:
            self._local_fingers = list(values)
            return
        row = ov._finger_row(self._dense)
        for i, f in enumerate(values):
            row[i] = -1 if f is None else f._dense

    # -- routing-state queries -------------------------------------------

    def finger_start(self, i: int) -> int:
        """The id ``fingers[i]`` should be the successor of."""
        return ring_add(self.node_id, 1 << i, bits=self.bits)

    def first_live_successor(self) -> "ChordNode | None":
        """First live entry of the successor list, or None if all are dead."""
        for succ in self.successors:
            if succ.alive:
                return succ
        return None

    def closest_preceding_live(self, key: int) -> "ChordNode":
        """The live routing-table node closest to (but strictly before) ``key``.

        Scans fingers from farthest to nearest, then the successor list, and
        falls back to ``self`` when nothing qualifies (the caller then steps
        to the successor).  Skipping dead entries models lookup retry after
        a timeout on a stale address.  Overlay-attached nodes evaluate the
        finger scan as one array mask over the finger matrix (same result:
        the highest qualifying level *is* the first hit of the reverse
        scan); standalone nodes keep the scalar loop.
        """
        ov = self._ov
        if ov is not None:
            hit = ov._closest_finger(self._dense, self.node_id, key)
            if hit is not None:
                return hit
        else:
            for finger in reversed(self._local_fingers):
                if finger is not None and finger.alive and \
                        ring_between(finger.node_id, self.node_id, key):
                    return finger
        # Fingers may all be stale after churn; the successor list still
        # guarantees progress.
        best = self
        for succ in self.successors:
            if succ.alive and ring_between(succ.node_id, self.node_id, key):
                best = succ  # nearest-first list: later entries are farther
        return best

    def owns(self, key: int) -> bool:
        """True iff ``key`` falls in ``(predecessor, self]``.

        Only meaningful when the predecessor pointer is current; the overlay
        uses interval tests on the live ring for authoritative ownership.
        """
        if self.predecessor is None or self.predecessor is self:
            return True
        if key == self.node_id:
            return True
        return ring_between(key, self.predecessor.node_id, self.node_id)
