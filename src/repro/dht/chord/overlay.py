"""The Chord overlay: membership, iterative lookup, stabilization, storage.

Two construction modes are provided, matching how the paper's simulator is
used:

* **Oracle construction** (:meth:`ChordOverlay.build`) — pointers are
  computed directly from the sorted live-id list.  Used to set up large
  static populations for the load-balance experiments in O(N log N).
* **Protocol join** (:meth:`ChordOverlay.join`) — a joining node looks up
  its own id to find its successor, then periodic :meth:`stabilize_node` /
  :meth:`fix_fingers_node` rounds (driven by :class:`PeriodicTask` in churn
  experiments) converge the ring, exactly as in the Chord paper.

Crashes lose all of a node's state; the successor-list redundancy plus
stabilization repair the ring, and the replicated KV layer keeps data
reachable while at least one replica survives.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable

import numpy as np

from repro.dht.base import DHTOverlay, RouteResult
from repro.dht.chord.node import ChordNode
from repro.util.ids import GUID_BITS, ring_add, ring_between, ring_between_right_inclusive


class ChordOverlay(DHTOverlay):
    """A simulated Chord ring.

    Parameters
    ----------
    rng:
        Source of randomness for picking default lookup start nodes.
    bits:
        Identifier-space width (affects finger-table size).
    successor_list_len:
        Redundancy of successor lists (Chord's ``r``); the ring partitions
        only if ``r`` consecutive nodes die between repairs.
    """

    def __init__(self, rng: np.random.Generator, bits: int = GUID_BITS,
                 successor_list_len: int = 8):
        super().__init__()
        if successor_list_len < 1:
            raise ValueError("successor_list_len must be >= 1")
        self.rng = rng
        self.bits = bits
        self.r = successor_list_len
        self.nodes: dict[int, ChordNode] = {}
        self._live_ids: list[int] = []  # sorted; oracle view for construction
        # Columnar routing state: every admitted node gets a dense slot.
        # Row ``d`` of the segmented finger matrix holds the dense slots of
        # node d's fingers (-1 empty); ``_id_col``/``_alive_col`` are the
        # per-slot GUID and liveness columns the vectorized
        # closest-preceding scan joins against.  Slots are never reused (a
        # recovered node is a new slot; stale fingers keep resolving to the
        # dead object, exactly as the former object references did).  The
        # matrix is a list of fixed-size row blocks rather than one 2-D
        # array so growth under churn appends a ~1 MB segment instead of
        # reallocating-and-copying the whole table (which would double its
        # residency transiently and spike the benches' traced peak).
        self._id_mask = (1 << bits) - 1
        self._pow2 = np.left_shift(np.uint64(1),
                                   np.arange(bits, dtype=np.uint64))
        cap = 64
        self._n_dense = 0
        self._id_col = np.zeros(cap, dtype=np.uint64)
        self._alive_col = np.zeros(cap, dtype=bool)
        self._finger_segs: list[np.ndarray] = []
        self._by_dense: list[ChordNode] = []

    # ------------------------------------------------------------------
    # dense-slot management
    # ------------------------------------------------------------------

    #: Rows per finger-matrix segment (4096 x 64 x int32 = 1 MB).
    _SEG_SHIFT = 12
    _SEG_ROWS = 1 << _SEG_SHIFT
    _SEG_MASK = _SEG_ROWS - 1

    def _finger_row(self, dense: int) -> np.ndarray:
        """The finger row of dense slot ``dense`` (a live view)."""
        return self._finger_segs[dense >> self._SEG_SHIFT][
            dense & self._SEG_MASK]

    def _reserve_dense(self, extra: int) -> None:
        need = self._n_dense + extra
        while len(self._finger_segs) * self._SEG_ROWS < need:
            self._finger_segs.append(
                np.full((self._SEG_ROWS, self.bits), -1, dtype=np.int32))
        cap = len(self._id_col)
        if need <= cap:
            return
        new_cap = max(need, cap * 2)
        n = self._n_dense
        for name in ("_id_col", "_alive_col"):
            old = getattr(self, name)
            new = np.zeros(new_cap, dtype=old.dtype)
            new[:n] = old[:n]
            setattr(self, name, new)

    def _attach(self, node: ChordNode) -> int:
        """Give ``node`` a dense slot (idempotent for re-admissions)."""
        if node._ov is self and node._dense >= 0:
            return node._dense
        self._reserve_dense(1)
        d = self._n_dense
        self._n_dense = d + 1
        self._id_col[d] = node.node_id
        self._alive_col[d] = node.alive
        self._by_dense.append(node)
        local = node._local_fingers
        node._ov = self
        node._dense = d
        node._local_fingers = None
        if local is not None and any(f is not None for f in local):
            node.fingers = local  # preserve pre-admission entries
        return d

    def _closest_finger(self, dense: int, nid: int, key: int):
        """Vectorized finger half of ``closest_preceding_live``.

        Offsets are computed clockwise from ``nid`` in uint64 (wraparound
        subtraction *is* ring distance, masked down for sub-64-bit rings),
        so "alive and strictly between (nid, key)" is one mask; the highest
        qualifying level is exactly the first hit of the scalar reverse
        scan.  Returns None when no finger qualifies (caller falls back to
        the successor list).

        Small rings take the scalar reverse scan instead: the mask costs
        ~10 µs of fixed numpy overhead per call, which a few-hundred-node
        ring's short routes never amortize, while the scalar scan exits
        at the first (usually near-top) qualifying level.  Same element
        either way.
        """
        if self._n_dense < 512:
            by_dense = self._by_dense
            for idx in self._finger_row(dense)[::-1].tolist():
                if idx >= 0:
                    node = by_dense[idx]
                    if node.alive and ring_between(node.node_id, nid, key):
                        return node
            return None
        row = self._finger_row(dense)
        fid = self._id_col[row]
        off = (fid - np.uint64(nid)) & np.uint64(self._id_mask)
        ok = (row >= 0) & (off != 0) & self._alive_col[row]
        off_key = (key - nid) & self._id_mask
        if off_key:
            ok &= off < np.uint64(off_key)
        # else: key == nid — the whole ring is "between", any live finger
        # other than self qualifies (matches scalar ring_between).
        hits = np.flatnonzero(ok)
        if hits.size == 0:
            return None
        return self._by_dense[int(row[int(hits[-1])])]

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def build(self, node_ids: Iterable[int]) -> list[ChordNode]:
        """Oracle-construct a ring containing ``node_ids`` (must be fresh)."""
        ids = list(node_ids)
        created = []
        self._reserve_dense(len(ids))
        for nid in ids:
            if nid in self.nodes:
                raise ValueError(f"duplicate node id {nid:#x}")
            node = ChordNode(nid, bits=self.bits)
            self.nodes[nid] = node
            self._attach(node)
            created.append(node)
        self._live_ids = sorted(n.node_id for n in self.nodes.values() if n.alive)
        self._rebuild_pointers()
        return created

    def join(self, node: ChordNode, bootstrap: ChordNode | None = None) -> None:
        """Protocol join: locate the successor via lookup, splice in.

        The new node's fingers are seeded lazily (pointed at the successor);
        ``fix_fingers_node`` rounds sharpen them.  Other nodes learn about
        the joiner through stabilization, per the Chord paper.
        """
        if node.node_id in self.nodes and self.nodes[node.node_id] is not node:
            raise ValueError(f"node id collision {node.node_id:#x}")
        self.nodes[node.node_id] = node
        self._attach(node)
        node.alive = True
        if not self._live_ids:  # first node: ring of one
            node.successors = [node]
            node.predecessor = node
            node.fingers = [node] * self.bits
            self._insert_live_id(node.node_id)
            return
        start = bootstrap if bootstrap is not None and bootstrap.alive \
            else self._random_live()
        result = self._route(node.node_id, start, record=False)
        if not result.success:
            raise RuntimeError("join lookup failed: overlay unreachable")
        succ = result.owner
        node.successors = ([succ] + succ.successors)[: self.r]
        node.predecessor = None  # learned via notify during stabilization
        node.fingers = [succ] * self.bits
        self._insert_live_id(node.node_id)
        # Immediately notify the successor (first stabilization half-round)
        # so the ring is never observably inconsistent for ownership tests.
        self._notify(succ, node)

    def oracle_join(self, node: ChordNode) -> None:
        """Admit a node and splice the oracle pointers exactly.

        Leaves every live node's pointers as a full :meth:`repair` would
        (provided they were oracle-exact beforehand): the newcomer gets
        fresh pointers, its successor's predecessor moves, its ``r`` live
        predecessors' successor lists absorb it, and finger entries whose
        target falls in the newly claimed arc are re-pointed at it.  Cost
        O((r + B) log N) instead of repair's O(N·B).
        """
        if node.node_id in self.nodes and self.nodes[node.node_id] is not node:
            raise ValueError(f"node id collision {node.node_id:#x}")
        self.nodes[node.node_id] = node
        self._attach(node)
        node.alive = True
        self._insert_live_id(node.node_id)
        self._oracle_pointers(node)
        n = len(self._live_ids)
        if n == 1:
            return
        if n <= self.r + 1:
            # Tiny ring: every successor list spans the whole ring, so
            # the incremental splice degenerates to a full repair anyway.
            self.repair()
            return
        succ = self.nodes[self._oracle_successor_ids(node.node_id, 1)[0]]
        succ.predecessor = node
        self._refresh_successor_lists(node.node_id)
        pred = self._oracle_predecessor(node.node_id)
        self._retarget_fingers(pred.node_id, node.node_id, node)

    def crash_repair(self, node_id: int) -> None:
        """Crash ``node_id`` and splice the oracle pointers incrementally.

        Equivalent to :meth:`crash` followed by :meth:`repair` *when the
        ring's pointers were oracle-exact beforehand* (as after ``build``,
        ``oracle_join``, ``repair``, or a previous ``crash_repair``):
        removing one id only invalidates pointers that referenced it, and
        those are reachable by ring arithmetic — the dead node's successor
        (predecessor pointer), its ``r`` live predecessors (successor
        lists), and per finger level the nodes whose finger target falls
        in the vacated arc.  Cost O((r + B) log N) instead of O(N·B).
        """
        node = self.nodes[node_id]
        if not node.alive:
            return
        self.crash(node_id)
        n = len(self._live_ids)
        if n == 0:
            return
        if n <= self.r + 1:
            self.repair()
            return
        succ = self.successor_of(node_id)
        pred = self._oracle_predecessor(node_id)
        if succ.predecessor is not None \
                and succ.predecessor.node_id == node_id:
            succ.predecessor = pred
        self._refresh_successor_lists(node_id)
        self._retarget_fingers(pred.node_id, node_id, succ)

    def predecessor_id(self, key: int) -> int | None:
        """The live id strictly preceding ``key`` on the ring (oracle)."""
        node = self._oracle_predecessor(key)
        return None if node is None else node.node_id

    def _refresh_successor_lists(self, around_id: int) -> None:
        """Recompute the successor lists of the ``r`` live predecessors of
        ``around_id`` — the only lists a membership change there can touch
        once ``n > r + 1``."""
        cur = around_id
        for _ in range(min(self.r, len(self._live_ids))):
            p = self._oracle_predecessor(cur)
            p.successors = [
                self.nodes[sid]
                for sid in self._oracle_successor_ids(p.node_id, self.r)]
            cur = p.node_id

    def _ids_in_arc(self, a: int, b: int) -> list[int]:
        """Live ids in the ring interval ``(a, b]`` (wrap-aware, a != b)."""
        ids = self._live_ids
        lo = bisect.bisect_right(ids, a)
        hi = bisect.bisect_right(ids, b)
        if a < b:
            return ids[lo:hi]
        return ids[lo:] + ids[:hi]

    def _retarget_fingers(self, lo: int, hi: int, target: ChordNode) -> None:
        """Point finger entries whose start falls in ``(lo, hi]`` at
        ``target``: level ``i`` of node ``x`` targets ``x + 2^i``, so the
        affected nodes sit in the arc shifted down by ``2^i``."""
        mask = (1 << self.bits) - 1
        segs = self._finger_segs
        shift, smask = self._SEG_SHIFT, self._SEG_MASK
        td = target._dense
        nodes = self.nodes
        for i in range(self.bits):
            span = 1 << i
            for nid in self._ids_in_arc((lo - span) & mask,
                                        (hi - span) & mask):
                d = nodes[nid]._dense
                segs[d >> shift][d & smask, i] = td

    def crash(self, node_id: int) -> None:
        node = self.nodes[node_id]
        if not node.alive:
            return
        node.alive = False
        node.store.clear()
        self._remove_live_id(node_id)

    def recover(self, node_id: int, *, oracle: bool = True) -> ChordNode:
        """Bring a crashed node back with fresh (empty) state and rejoin."""
        old = self.nodes.pop(node_id)
        if old.alive:
            raise ValueError(f"node {node_id:#x} is not crashed")
        node = ChordNode(node_id, bits=self.bits)
        if oracle:
            self.oracle_join(node)
        else:
            self.join(node)
        return node

    def leave(self, node_id: int) -> None:
        """Graceful departure: hand keys to the successor, then go down."""
        node = self.nodes[node_id]
        if not node.alive:
            return
        succ = node.first_live_successor()
        if succ is not None and succ is not node:
            succ.store.update(node.store)
        node.store.clear()
        node.alive = False
        self._remove_live_id(node_id)

    def live_nodes(self) -> list[ChordNode]:
        return [self.nodes[nid] for nid in self._live_ids]

    @property
    def size(self) -> int:
        return len(self._live_ids)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def route(self, key: int, start: ChordNode | None = None) -> RouteResult:
        result = self._route(key, start, record=True)
        return result

    def _route(self, key: int, start: ChordNode | None, record: bool) -> RouteResult:
        key &= (1 << self.bits) - 1
        if start is None or not start.alive:
            start = self._random_live()
        if start is None:
            result = RouteResult(False, None, 0)
            if record:
                self.note_route(result)
            return result
        # Generous bound: a healthy ring needs O(log N); a freshly-joined
        # node whose fingers all point at its successor may walk the ring
        # linearly, so allow that, but never loop forever on a partition.
        max_hops = max(64, 2 * self.size + 16)
        cur = start
        hops = 0
        path = [cur.node_id]
        success = False
        owner: ChordNode | None = None
        while hops <= max_hops:
            succ = cur.first_live_successor()
            if succ is None:
                break  # cut off: every known successor is dead
            if succ is cur or ring_between_right_inclusive(key, cur.node_id, succ.node_id):
                owner = succ
                success = True
                if succ is not cur:
                    hops += 1
                    path.append(succ.node_id)
                break
            nxt = cur.closest_preceding_live(key)
            if nxt is cur:
                nxt = succ
            cur = nxt
            hops += 1
            path.append(cur.node_id)
        result = RouteResult(success, owner, hops, path)
        if record:
            self.note_route(result)
        return result

    def successor_of(self, key: int) -> ChordNode | None:
        """Oracle ownership: the live node whose id is the first >= key."""
        if not self._live_ids:
            return None
        key &= (1 << self.bits) - 1
        idx = bisect.bisect_left(self._live_ids, key)
        if idx == len(self._live_ids):
            idx = 0
        return self.nodes[self._live_ids[idx]]

    def replica_set(self, owner: ChordNode, key: int, replicas: int) -> list[ChordNode]:
        """Owner plus its next live successors (Chord's replica placement)."""
        out = [owner]
        cur = owner
        guard = 0
        while len(out) < replicas and guard < 4 * replicas + 8:
            guard += 1
            nxt = cur.first_live_successor()
            if nxt is None or nxt in out:
                break
            out.append(nxt)
            cur = nxt
        return out

    # ------------------------------------------------------------------
    # maintenance (the Chord stabilization protocol)
    # ------------------------------------------------------------------

    def stabilize_node(self, node: ChordNode) -> None:
        """One stabilization round for ``node`` (Chord Fig. 7).

        Uses only ``node``'s own references and state readable from its
        (live) successor — the same information flow as the message
        protocol.
        """
        if not node.alive:
            return
        succ = node.first_live_successor()
        if succ is None:
            # Last resort: try to re-enter through any live finger.
            for finger in node.fingers:
                if finger is not None and finger.alive and finger is not node:
                    succ = finger
                    break
        if succ is None:
            return  # isolated; only external repair can help
        if succ is node:
            # Ring-of-one (or believed so): a joiner announces itself via
            # notify, so our own predecessor is the adoption candidate.
            x = node.predecessor
            if x is not None and x.alive and x is not node:
                succ = x
        else:
            x = succ.predecessor
            if x is not None and x.alive and x is not node and \
                    ring_between(x.node_id, node.node_id, succ.node_id):
                succ = x
        if succ is node:
            node.successors = [node]
        else:
            merged = [succ]
            for s in succ.successors:
                if s is not node and s not in merged:
                    merged.append(s)
            node.successors = merged[: self.r]
        self._notify(succ, node)

    def _notify(self, succ: ChordNode, candidate: ChordNode) -> None:
        if succ is candidate:
            return
        pred = succ.predecessor
        if pred is None or not pred.alive or pred is succ or \
                ring_between(candidate.node_id, pred.node_id, succ.node_id):
            succ.predecessor = candidate

    def fix_fingers_node(self, node: ChordNode, count: int = 1) -> None:
        """Refresh ``count`` finger entries via lookups from ``node``."""
        if not node.alive:
            return
        i = node.fix_next
        for _ in range(count):
            target = node.finger_start(i)
            result = self._route(target, node, record=False)
            if result.success:
                node.fingers[i] = result.owner
            i = (i + 1) % self.bits
        node.fix_next = i

    def maintenance_round(self) -> None:
        """Stabilize + one finger fix on every live node (test/driver helper)."""
        for node in self.live_nodes():
            self.stabilize_node(node)
        for node in self.live_nodes():
            self.fix_fingers_node(node, count=4)

    def repair(self) -> None:
        """Oracle repair: rebuild every live node's pointers exactly.

        Experiments that are not studying maintenance traffic call this
        after churn events instead of simulating thousands of stabilization
        messages (same fixed point, per the Chord convergence theorem).
        """
        self._rebuild_pointers()

    def _rebuild_pointers(self) -> None:
        """Oracle links (scalar) + finger rows (bulk-vectorized) for every
        live node — the O(N·B) half of construction/repair is one chunked
        ``searchsorted`` over the sorted live-id array instead of N·B
        bisects."""
        for nid in self._live_ids:
            node = self.nodes[nid]
            if node._ov is not self or node._dense < 0:
                # Tolerate members spliced straight into ``nodes`` (tests
                # exercise repair() as the ground truth that way).
                self._attach(node)
            self._oracle_links(node)
        self._bulk_oracle_fingers()

    # ------------------------------------------------------------------
    # storage helpers
    # ------------------------------------------------------------------

    def put(self, key: int, value: Any, replicas: int = 1) -> RouteResult:
        return super().put(key & ((1 << self.bits) - 1), value, replicas)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _random_live(self) -> ChordNode | None:
        if not self._live_ids:
            return None
        nid = self._live_ids[int(self.rng.integers(0, len(self._live_ids)))]
        return self.nodes[nid]

    def _insert_live_id(self, nid: int) -> None:
        idx = bisect.bisect_left(self._live_ids, nid)
        if idx < len(self._live_ids) and self._live_ids[idx] == nid:
            raise ValueError(f"id {nid:#x} already live")
        self._live_ids.insert(idx, nid)

    def _remove_live_id(self, nid: int) -> None:
        idx = bisect.bisect_left(self._live_ids, nid)
        if idx < len(self._live_ids) and self._live_ids[idx] == nid:
            self._live_ids.pop(idx)

    def _oracle_successor_ids(self, nid: int, count: int) -> list[int]:
        ids = self._live_ids
        n = len(ids)
        if n == 0:
            return []
        idx = bisect.bisect_right(ids, nid)
        out = []
        for k in range(min(count, n - 1) if n > 1 else 0):
            out.append(ids[(idx + k) % n])
        return out

    def _oracle_predecessor(self, nid: int) -> ChordNode | None:
        ids = self._live_ids
        n = len(ids)
        if n <= 1:
            return None
        idx = bisect.bisect_left(ids, nid)
        return self.nodes[ids[(idx - 1) % n]]

    def _oracle_links(self, node: ChordNode) -> None:
        """Oracle successor list + predecessor (the non-finger pointers)."""
        if len(self._live_ids) == 1:
            node.successors = [node]
            node.predecessor = node
            return
        succ_ids = self._oracle_successor_ids(node.node_id, self.r)
        node.successors = [self.nodes[sid] for sid in succ_ids]
        pred = self._oracle_predecessor(node.node_id)
        node.predecessor = pred if pred is not None else node

    def _bulk_oracle_fingers(self) -> None:
        """Exact finger rows for every live node in one vectorized pass.

        ``searchsorted`` over the sorted live-id array is ``bisect_left``,
        so each entry is identical to what :meth:`_oracle_pointers`
        computes one bisect at a time.  Chunked so the transient target
        matrix stays ~2 MB regardless of ring size (the bench memory
        accounting traces allocations, and build must not spike the peak).
        """
        n = len(self._live_ids)
        if n == 0:
            return
        ids = np.fromiter(self._live_ids, dtype=np.uint64, count=n)
        dense_sorted = np.fromiter(
            (self.nodes[nid]._dense for nid in self._live_ids),
            dtype=np.int64, count=n)
        dense32 = dense_sorted.astype(np.int32)
        mask = np.uint64(self._id_mask)
        pow2 = self._pow2
        segs = self._finger_segs
        shift, smask = self._SEG_SHIFT, self._SEG_MASK
        for s in range(0, n, 4096):
            e = min(s + 4096, n)
            # uint64 addition wraps mod 2**64; the mask folds sub-64-bit
            # rings (2**64 is a multiple of 2**bits, so wrap-then-mask is
            # exactly ring_add).
            targets = (ids[s:e, None] + pow2[None, :]) & mask
            pos = ids.searchsorted(targets.ravel())
            pos[pos == n] = 0  # wrapped past the last id: first id owns it
            rows = dense32[pos].reshape(e - s, self.bits)
            dst = dense_sorted[s:e]
            seg_of = dst >> shift
            for g in np.unique(seg_of):
                sel = seg_of == g
                segs[int(g)][dst[sel] & smask] = rows[sel]

    def _oracle_pointers(self, node: ChordNode) -> None:
        n = len(self._live_ids)
        if n == 1:
            node.successors = [node]
            node.predecessor = node
            node.fingers = [node] * self.bits
            return
        self._oracle_links(node)
        ids = self._live_ids
        nodes = self.nodes
        bl = bisect.bisect_left
        mask = (1 << self.bits) - 1
        nid = node.node_id
        fingers: list[ChordNode | None] = []
        append = fingers.append
        # Consecutive finger targets usually land on the same successor
        # (live ids are sparse on the ring), so reuse the previous bisect
        # hit while the new target still falls at or before it: bisect_left
        # found no id in [prev_target, last_id), hence none in
        # [prev_target, target) either when target <= last_id.
        prev_target = -1
        last_id = -1
        last_node = None
        for i in range(self.bits):
            target = (nid + (1 << i)) & mask
            if prev_target <= target <= last_id:
                append(last_node)
                prev_target = target
                continue
            idx = bl(ids, target)
            if idx == n:
                idx = 0
            last_id = ids[idx]
            last_node = nodes[last_id]
            append(last_node)
            prev_target = target
        node.fingers = fingers
