"""Message-level Chord: every join, stabilization round, and lookup is a
real RPC exchange over the simulated network.

The structural :class:`repro.dht.chord.ChordOverlay` answers "where does
this key live" cheaply for the matchmaking experiments; this module
answers the §3.3 systems questions — *how much maintenance traffic does
the ring cost, and how stale can it get before lookups fail* — with no
oracle anywhere: nodes know only ids they learned from messages, liveness
is discovered through timeouts, and churn repairs itself through Chord's
stabilize/notify/fix-fingers protocol (Stoica et al., Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.sim.kernel import Simulator
from repro.sim.network import Message, Network
from repro.sim.process import PeriodicTask
from repro.sim.rpc import RpcLayer
from repro.util.ids import GUID_BITS, ring_add, ring_between, ring_between_right_inclusive


class ProtocolChordNode:
    """One message-level Chord participant.

    Routing state holds *ids only* (addresses) — everything a node knows
    arrived in a message.  The node also acts as the RPC server for the
    Chord methods (``find_next``, ``get_state``, ``notify``, ``ping``).
    """

    def __init__(self, node_id: int, net: "ChordProtocolNetwork"):
        self.node_id = node_id
        self.net = net
        self.alive = True
        self.bits = net.bits
        self.successors: list[int] = []
        self.predecessor: int | None = None
        self.fingers: list[int | None] = [None] * net.bits
        self._next_finger = 0
        self._fallback_rotation = 0

    # -- endpoint ----------------------------------------------------------

    def handle_message(self, msg: Message) -> None:
        if not self.net.rpc.handle_message(self.node_id, msg):
            raise ValueError(f"unexpected message kind {msg.kind!r}")

    # -- RPC server --------------------------------------------------------

    def serve(self, method: str, payload, respond: Callable) -> None:
        if method == "find_next":
            key, excluded = payload
            respond(self._find_next(key, excluded))
        elif method == "get_state":
            respond((self.predecessor, list(self.successors)))
        elif method == "notify":
            self._notify(payload)
            respond(True)
        elif method == "ping":
            respond(True)
        else:  # pragma: no cover - defensive
            respond(None)

    def _find_next(self, key: int, excluded: tuple[int, ...]):
        """One iterative-lookup step: either the key's owner (our first
        acceptable successor) or the closest preceding node we know."""
        succ = next((s for s in self.successors if s not in excluded), None)
        if succ is None:
            return ("dead-end", None)
        if succ == self.node_id or \
                ring_between_right_inclusive(key, self.node_id, succ):
            return ("owner", succ)
        best = None
        for finger in reversed(self.fingers):
            if finger is not None and finger not in excluded and \
                    ring_between(finger, self.node_id, key):
                best = finger
                break
        if best is None:
            for s in self.successors:
                if s not in excluded and ring_between(s, self.node_id, key):
                    best = s
        if best is None:
            return ("owner", succ)  # nothing closer known: hand to successor
        return ("forward", best)

    def _notify(self, candidate: int) -> None:
        if candidate == self.node_id:
            return
        if self.predecessor is None or \
                ring_between(candidate, self.predecessor, self.node_id):
            self.predecessor = candidate

    # -- maintenance (client side, real RPCs) --------------------------------

    def stabilize(self) -> None:
        """One stabilization round (Chord Fig. 7, over real messages)."""
        if not self.alive:
            return
        succ = self.successors[0] if self.successors else None
        if succ is None or succ == self.node_id:
            # Ring-of-one: adopt whoever notified us.
            if self.predecessor is not None and self.predecessor != self.node_id:
                self.successors = [self.predecessor]
                self.net.rpc.call(self.node_id, self.predecessor, "notify",
                                  self.node_id, lambda _: None, lambda: None)
            return

        def on_reply(state) -> None:
            if not self.alive:
                return
            pred, succ_list = state
            new_succ = succ
            if pred is not None and pred != self.node_id and \
                    ring_between(pred, self.node_id, succ):
                new_succ = pred
            merged = [new_succ]
            if new_succ == succ:
                for s in succ_list:
                    if s != self.node_id and s not in merged:
                        merged.append(s)
            elif succ not in merged:
                merged.append(succ)
            self.successors = merged[: self.net.succ_list_len]
            self.net.rpc.call(self.node_id, new_succ, "notify", self.node_id,
                              lambda _: None, lambda: None)

        def on_timeout() -> None:
            if not self.alive:
                return
            # Successor presumed dead: fail over to the next list entry.
            if self.successors and self.successors[0] == succ:
                self.successors.pop(0)
            if not self.successors:
                # Cut off: rotate through *every* other contact we know
                # (predecessor, fingers), one per round.  Always trying the
                # same stale finger would wedge the node in a one-member
                # island forever; rotation reaches a live contact if we
                # know any.
                candidates: list[int] = []
                if self.predecessor is not None and \
                        self.predecessor != self.node_id:
                    candidates.append(self.predecessor)
                for f in self.fingers:
                    if f is not None and f != self.node_id \
                            and f not in candidates and f != succ:
                        candidates.append(f)
                if candidates:
                    pick = candidates[self._fallback_rotation % len(candidates)]
                    self._fallback_rotation += 1
                    self.successors = [pick]
                else:
                    self.successors = [self.node_id]

        self.net.rpc.call(self.node_id, succ, "get_state", None,
                          on_reply, on_timeout)

    def fix_one_finger(self) -> None:
        if not self.alive:
            return
        i = self._next_finger
        self._next_finger = (self._next_finger + 1) % self.bits
        target = ring_add(self.node_id, 1 << i, bits=self.bits)

        def on_done(owner: int | None, hops: int) -> None:
            if owner is not None and self.alive:
                self.fingers[i] = owner

        self.net.lookup(target, self.node_id, on_done, record=False)

    def check_predecessor(self) -> None:
        if not self.alive or self.predecessor is None:
            return
        pred = self.predecessor

        def on_timeout() -> None:
            if self.predecessor == pred:
                self.predecessor = None

        self.net.rpc.call(self.node_id, pred, "ping", None,
                          lambda _: None, on_timeout)


@dataclass
class ProtocolLookupStats:
    started: int = 0
    succeeded: int = 0
    failed: int = 0
    total_queries: int = 0
    results: list[tuple[int, int | None, int]] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        done = self.succeeded + self.failed
        return self.succeeded / done if done else float("nan")

    @property
    def mean_queries(self) -> float:
        return self.total_queries / self.started if self.started else float("nan")


class ChordProtocolNetwork:
    """Factory/driver for a message-level Chord deployment."""

    def __init__(self, sim: Simulator, network: Network,
                 rng: np.random.Generator,
                 bits: int = GUID_BITS, succ_list_len: int = 8,
                 rpc_timeout: float = 0.5,
                 stabilize_interval: float = 5.0,
                 finger_fixes_per_round: int = 2):
        self.sim = sim
        self.network = network
        self.rng = rng
        self.rpc = RpcLayer(sim, network, default_timeout=rpc_timeout)
        self.bits = bits
        self.succ_list_len = succ_list_len
        self.stabilize_interval = stabilize_interval
        self.finger_fixes_per_round = finger_fixes_per_round
        self.nodes: dict[int, ProtocolChordNode] = {}
        self._tasks: dict[int, PeriodicTask] = {}
        self.lookup_stats = ProtocolLookupStats()

    # -- membership -------------------------------------------------------

    def create(self, node_id: int) -> ProtocolChordNode:
        if node_id in self.nodes:
            raise ValueError(f"duplicate node id {node_id:#x}")
        node = ProtocolChordNode(node_id, self)
        self.nodes[node_id] = node
        self.network.register(node)
        self.rpc.serve(node_id, node.serve)
        return node

    def bootstrap(self, node_id: int) -> ProtocolChordNode:
        """The first node: a ring of one."""
        node = self.create(node_id)
        node.successors = [node_id]
        node.predecessor = node_id
        self._start_maintenance(node)
        return node

    def join(self, node_id: int, bootstrap_id: int,
             on_done: Callable[[bool], None] | None = None,
             retries: int | None = None, retry_backoff: float = 5.0,
             contacts: Callable[[], int | None] | None = None
             ) -> ProtocolChordNode:
        """Protocol join: look up our own id through a bootstrap contact.

        A failed join attempt (bootstrap dead or lookup dead-ended mid-
        churn) retries after ``retry_backoff`` seconds, via ``contacts()``
        when provided (e.g. "any currently live node") else the original
        bootstrap.  ``retries=None`` (default) retries until the node
        itself crashes — a real deployment's joining node keeps knocking.
        """
        node = self.create(node_id)

        def attempt(tries_left: int | None, contact: int) -> None:
            def joined(owner: int | None, hops: int) -> None:
                if not node.alive:
                    if on_done:
                        on_done(False)
                    return
                if owner is None or owner == node_id:
                    if tries_left is None:
                        self.sim.schedule(retry_backoff, retry, None)
                    elif tries_left > 0:
                        self.sim.schedule(retry_backoff, retry, tries_left - 1)
                    elif on_done:
                        on_done(False)
                    return
                node.successors = [owner]
                self.rpc.call(node_id, owner, "notify", node_id,
                              lambda _: None, lambda: None)
                self._start_maintenance(node)
                if on_done:
                    on_done(True)

            self.lookup(node.node_id, contact, joined, record=False,
                        exclude=(node_id,))

        def retry(tries_left: int | None) -> None:
            contact = contacts() if contacts is not None else bootstrap_id
            if contact is None or contact == node_id:
                contact = bootstrap_id
            attempt(tries_left, contact)

        attempt(retries, bootstrap_id)
        return node

    def crash(self, node_id: int) -> None:
        node = self.nodes.get(node_id)
        if node is None or not node.alive:
            return
        node.alive = False
        self.rpc.unserve(node_id)
        task = self._tasks.pop(node_id, None)
        if task is not None:
            task.stop()

    def recover(self, node_id: int, bootstrap_id: int,
                contacts: Callable[[], int | None] | None = None
                ) -> ProtocolChordNode:
        """Rejoin after a crash with fresh state (same identity)."""
        old = self.nodes.pop(node_id, None)
        if old is not None and old.alive:
            raise ValueError(f"node {node_id:#x} is not crashed")
        self.network.unregister(node_id)
        return self.join(node_id, bootstrap_id, contacts=contacts)

    def live_ids(self) -> list[int]:
        return sorted(nid for nid, n in self.nodes.items() if n.alive)

    def _start_maintenance(self, node: ProtocolChordNode) -> None:
        def round_() -> None:
            node.stabilize()
            node.check_predecessor()
            for _ in range(self.finger_fixes_per_round):
                node.fix_one_finger()

        self._tasks[node.node_id] = PeriodicTask(
            self.sim, self.stabilize_interval, round_,
            rng=self.rng, jitter=0.2)

    # -- lookups ------------------------------------------------------------

    def lookup(self, key: int, start_id: int,
               on_done: Callable[[int | None, int], None],
               record: bool = True, max_queries: int | None = None,
               exclude: tuple[int, ...] = ()) -> None:
        """Iterative lookup driven by the initiating node.

        Each hop is one ``find_next`` RPC; a timed-out hop is excluded and
        the *previous* responsive node is asked again, exactly like a real
        iterative resolver retrying around a dead peer.  ``exclude`` seeds
        the exclusion set (a rejoining node excludes *itself* so stale ring
        state naming it as owner cannot satisfy its own join lookup).
        """
        key &= (1 << self.bits) - 1
        limit = max_queries if max_queries is not None \
            else max(32, 4 * max(2, len(self.nodes)).bit_length() + 16)
        state = {"queries": 0, "excluded": set(exclude), "done": False}
        if record:
            self.lookup_stats.started += 1

        def finish(owner: int | None) -> None:
            if state["done"]:
                return
            state["done"] = True
            if record:
                self.lookup_stats.total_queries += state["queries"]
                if owner is not None:
                    self.lookup_stats.succeeded += 1
                else:
                    self.lookup_stats.failed += 1
                self.lookup_stats.results.append(
                    (key, owner, state["queries"]))
            on_done(owner, state["queries"])

        def ask(target: int, retry_from: int | None) -> None:
            if state["queries"] >= limit:
                finish(None)
                return
            state["queries"] += 1

            def on_reply(result) -> None:
                kind, value = result
                if kind == "owner":
                    # Verify the owner answers (it may be freshly dead).
                    if value == target:
                        finish(value)
                        return
                    self.rpc.call(start_id, value, "ping", None,
                                  lambda _: finish(value),
                                  lambda: retry_excluding(value, target))
                elif kind == "forward":
                    ask(value, retry_from=target)
                else:  # dead-end
                    finish(None)

            def on_timeout() -> None:
                retry_excluding(target, retry_from)

            self.rpc.call(start_id, target, "find_next",
                          (key, tuple(state["excluded"])),
                          on_reply, on_timeout)

        def retry_excluding(dead: int, retry_from: int | None) -> None:
            state["excluded"].add(dead)
            fallback = retry_from if retry_from is not None and \
                retry_from not in state["excluded"] else start_id
            if fallback in state["excluded"]:
                finish(None)
                return
            ask(fallback, retry_from=None)

        ask(start_id, retry_from=None)

    # -- verification helpers (tests only) -------------------------------------

    def ring_consistent(self) -> bool:
        """True iff following live successor pointers from the minimum id
        visits every live node exactly once (a converged ring)."""
        live = self.live_ids()
        if not live:
            return True
        visited = []
        cur = live[0]
        for _ in range(len(live) + 1):
            visited.append(cur)
            node = self.nodes[cur]
            nxt = next((s for s in node.successors
                        if s in self.nodes and self.nodes[s].alive), None)
            if nxt is None:
                return len(live) == 1
            cur = nxt
            if cur == live[0]:
                break
        return sorted(visited) == live

    def oracle_owner(self, key: int) -> int | None:
        live = self.live_ids()
        if not live:
            return None
        key &= (1 << self.bits) - 1
        import bisect

        idx = bisect.bisect_left(live, key)
        return live[idx % len(live)]
