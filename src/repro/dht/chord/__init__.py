"""Chord DHT (Stoica et al., SIGCOMM 2001) — the RN-Tree's substrate."""

from repro.dht.chord.node import ChordNode
from repro.dht.chord.overlay import ChordOverlay

__all__ = ["ChordNode", "ChordOverlay"]
