"""The CAN overlay: join/split, greedy routing, takeover, neighbor upkeep.

Join follows the CAN paper with one matchmaking-specific refinement
(paper §3.2 of Kim et al.): a joining node routes to the zone containing
*its own representative point* and the zone splits **between the two
points** (on the dimension that best separates them, relative to zone
extent) rather than blindly halving.  Both nodes therefore keep their own
point inside their zone — the invariant the matchmaking layer depends on
("a zone's owner is a node whose capabilities lie in that zone").  The
virtual dimension guarantees the two points differ almost surely even for
identical machines.
"""

from __future__ import annotations

import numpy as np

from repro.dht.base import DHTOverlay, RouteResult
from repro.dht.can.node import CANNode, NeighborSet
from repro.dht.can.space import Point, Zone, unit_zone


class _BSPNode:
    """One node of the split-history BSP index.

    Zones are only ever created by splitting an existing zone, so the
    split history is a binary space partition whose leaves tessellate the
    key space exactly like the live zones do.  A leaf (``dim is None``)
    records the zone and its current owner; takeovers move zone objects
    between owners without changing geometry, so they only relabel the
    leaf.  Point→owner resolution is then an O(tree depth) descent
    instead of a linear scan over every zone.
    """

    __slots__ = ("dim", "at", "lower", "upper", "zone", "owner")

    def __init__(self, zone: Zone, owner: CANNode):
        self.dim: int | None = None
        self.at = 0.0
        self.lower: _BSPNode | None = None
        self.upper: _BSPNode | None = None
        self.zone: Zone | None = zone
        self.owner: CANNode | None = owner


class CANOverlay(DHTOverlay):
    """A simulated CAN over ``[0,1)^dims``."""

    def __init__(self, rng: np.random.Generator, dims: int):
        super().__init__()
        if dims < 1:
            raise ValueError("dims must be >= 1")
        self.rng = rng
        self.dims = dims
        self.nodes: dict[int, CANNode] = {}
        self._live: list[CANNode] = []
        self._bsp: _BSPNode | None = None

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def join(self, node: CANNode, bootstrap: CANNode | None = None) -> None:
        """Admit ``node``: route to its point's zone and split it."""
        if len(node.point) != self.dims:
            raise ValueError(f"point has {len(node.point)} dims, overlay has {self.dims}")
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id:#x}")
        self.nodes[node.node_id] = node
        node.alive = True
        if not self._live:
            node.zones = [unit_zone(self.dims)]
            node.neighbors = NeighborSet()
            self._live.append(node)
            self._bsp = _BSPNode(node.zones[0], node)
            return
        if bootstrap is None or not bootstrap.alive:
            # The pre-index join routed from a random live node; keep that
            # RNG draw so every downstream stream stays bit-identical.
            self._random_live()
        leaf = self._bsp_leaf(node.point)
        if leaf is None or leaf.owner is None or not leaf.owner.alive:
            raise RuntimeError("CAN join routing failed")
        owner: CANNode = leaf.owner
        self._split_with(owner, node)
        self._live.append(node)

    def crash(self, node_id: int) -> None:
        """Abrupt failure.  The zone is immediately adopted by a neighbor
        (the structural equivalent of CAN's takeover timer protocol); if
        the node had no live neighbor the space would tear, which cannot
        happen while any other node is alive because zones tessellate."""
        node = self.nodes[node_id]
        if not node.alive:
            return
        node.alive = False
        node.store.clear()
        self._live.remove(node)
        self._takeover(node)
        node.zones = []
        node.neighbors = NeighborSet()

    def leave(self, node_id: int) -> None:
        """Graceful departure: hand zones and stored keys to a neighbor."""
        node = self.nodes[node_id]
        if not node.alive:
            return
        heir = self._smallest_live_neighbor(node)
        node.alive = False
        self._live.remove(node)
        if heir is not None:
            heir.store.update(node.store)
        node.store.clear()
        self._takeover(node)
        node.zones = []
        node.neighbors = NeighborSet()

    def live_nodes(self) -> list[CANNode]:
        return list(self._live)

    @property
    def size(self) -> int:
        return len(self._live)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def route(self, key, start: CANNode | None = None) -> RouteResult:
        """Route to the owner of ``key`` (a Point)."""
        result = self._route(key, start, record=True)
        return result

    def _route(self, point: Point, start: CANNode | None, record: bool) -> RouteResult:
        if start is None or not start.alive:
            start = self._random_live()
        if start is None:
            result = RouteResult(False, None, 0)
            if record:
                self.note_route(result)
            return result
        cur = start
        hops = 0
        path = [cur.node_id]
        success = True
        max_hops = 8 * (len(self._live) + 4)
        visited = {cur.node_id}
        while not cur.owns_point(point):
            # A neighbor that *owns* the point wins outright.  This also
            # resolves exact-boundary targets: with discrete capability
            # levels a point can lie on a shared (closed) zone face, where
            # several zones are at distance 0 but only one owns it under
            # the half-open convention.
            owner_nb = None
            for nb in cur.neighbors:
                if nb.alive and nb.owns_point(point):
                    owner_nb = nb
                    break
            if owner_nb is not None:
                cur = owner_nb
                hops += 1
                path.append(cur.node_id)
                break
            # Greedy: step to the neighbor closest to the target.  The zone
            # across the exit face is strictly closer except on distance
            # plateaus (target collinear with a face), where we allow
            # equal-distance moves to unvisited zones.
            cur_d = cur.distance_to(point)
            best = None
            best_d = cur_d
            plateau = None
            for nb in cur.neighbors:
                if not nb.alive:
                    continue
                d = nb.distance_to(point)
                if d < best_d:
                    best, best_d = nb, d
                elif d == cur_d and plateau is None and nb.node_id not in visited:
                    plateau = nb
            nxt = best if best is not None else plateau
            if nxt is None:
                success = False
                break
            cur = nxt
            visited.add(cur.node_id)
            hops += 1
            path.append(cur.node_id)
            if hops > max_hops:
                success = False
                break
        result = RouteResult(success, cur if success else None, hops, path)
        if record:
            self.note_route(result)
        return result

    def zone_owner(self, point: Point) -> CANNode | None:
        """Oracle ownership via the split-history index (O(tree depth))."""
        if not self._live:
            return None
        leaf = self._bsp_leaf(point)
        if leaf is None or leaf.owner is None:
            return None
        owner = leaf.owner
        # The containment check rejects out-of-range points exactly like
        # the historical linear scan did (and the closed top face at the
        # 1.0 boundary is the zone's call, not the descent's).
        if owner.alive and owner.owns_point(point):
            return owner
        return None

    def _bsp_leaf(self, point: Point) -> _BSPNode | None:
        """Descend the split history to the leaf whose region holds
        ``point``.  Split planes use the half-open convention, so a
        coordinate equal to the plane belongs to the upper side; all
        planes are bit-exact split coordinates, so ``<`` is exact."""
        node = self._bsp
        while node is not None and node.dim is not None:
            node = node.lower if point[node.dim] < node.at else node.upper
        return node

    def replica_set(self, owner: CANNode, key, replicas: int) -> list[CANNode]:
        """Owner plus its nearest live neighbors (CAN neighbor replication)."""
        out = [owner]
        if replicas > 1:
            ranked = sorted(
                (nb for nb in owner.neighbors if nb.alive),
                key=lambda nb: (nb.distance_to(owner.point), nb.node_id),
            )
            out.extend(ranked[: replicas - 1])
        return out

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _random_live(self) -> CANNode | None:
        if not self._live:
            return None
        return self._live[int(self.rng.integers(0, len(self._live)))]

    def _split_with(self, owner: CANNode, joiner: CANNode) -> None:
        """Split the owner's zone containing the joiner's point between the
        two representative points."""
        zone_idx = next(i for i, z in enumerate(owner.zones) if z.contains(joiner.point))
        zone = owner.zones[zone_idx]
        dim, at = _separating_split(zone, owner.point, joiner.point, self.rng)
        lower, upper = zone.split(dim, at)
        # The joiner must end up owning the half with its own point in it;
        # the owner keeps the other half.  (When splitting the owner's
        # *primary* zone the separating split guarantees the kept half still
        # contains the owner's point; an adopted zone never contained it.)
        if lower.contains(joiner.point):
            joiner_zone, owner_zone = lower, upper
        else:
            joiner_zone, owner_zone = upper, lower
        if zone_idx == 0 and not owner_zone.contains(owner.point):
            raise ValueError(
                "cannot split between coincident representative points; "
                "add a virtual dimension to disambiguate identical nodes"
            )
        owner.zones[zone_idx] = owner_zone
        joiner.zones = [joiner_zone]
        # Record the split in the BSP index: the leaf holding the joiner's
        # point is exactly the zone just split; it becomes an inner node
        # over the two halves.
        leaf = self._bsp_leaf(joiner.point)
        if leaf is not None:
            leaf.lower = _BSPNode(
                lower, joiner if joiner_zone is lower else owner)
            leaf.upper = _BSPNode(
                upper, joiner if joiner_zone is upper else owner)
            leaf.dim, leaf.at = dim, at
            leaf.zone = leaf.owner = None
        # Rewire neighbor sets: candidates are the old owner's neighbors
        # plus the owner itself.
        candidates = NeighborSet(owner.neighbors)
        candidates.add(owner)
        joiner.neighbors = NeighborSet()
        for cand in candidates:
            if cand is joiner or not cand.alive:
                continue
            if _are_neighbors(cand, joiner):
                joiner.neighbors.add(cand)
                cand.neighbors.add(joiner)
        # The owner may have lost abutment with some former neighbors.
        for former in list(owner.neighbors):
            if not _are_neighbors(owner, former):
                owner.neighbors.discard(former)
                former.neighbors.discard(owner)

    def _takeover(self, dead: CANNode) -> None:
        """Assign each of the dead node's zones to its smallest live
        neighbor that abuts that zone (CAN's takeover rule)."""
        for former in list(dead.neighbors):
            former.neighbors.discard(dead)
        for zone in dead.zones:
            heir = None
            heir_vol = float("inf")
            for nb in dead.neighbors:
                if not nb.alive:
                    continue
                if any(zone.abuts(z) for z in nb.zones):
                    vol = nb.total_volume()
                    if vol < heir_vol:
                        heir, heir_vol = nb, vol
            if heir is None:
                # Possible when several neighbors died together; scan for
                # any live abutting node (structural repair).
                for cand in self._live:
                    if any(zone.abuts(z) for z in cand.zones):
                        heir = cand
                        break
            if heir is None and self._live:
                # Cascading failures can leave a zone with no *abutting*
                # live node (only corner contact).  The zone must still be
                # owned — give it to the nearest live node; neighbor links
                # are recomputed below from the adopted zone's geometry.
                center = zone.center()
                heir = min(self._live,
                           key=lambda cand: (cand.distance_to(center),
                                             cand.node_id))
            if heir is None:
                continue  # overlay is empty
            heir.zones.append(zone)
            # Relabel the zone's leaf in the index (geometry unchanged);
            # the center is interior, so the descent cannot land on a
            # boundary-sharing sibling.
            leaf = self._bsp_leaf(zone.center())
            if leaf is not None:
                leaf.owner = heir
            # Zone adoption may create new abutments for the heir.
            for cand in list(dead.neighbors) + self._live:
                if cand is heir or not cand.alive:
                    continue
                if cand in heir.neighbors:
                    continue
                if _are_neighbors(heir, cand):
                    heir.neighbors.add(cand)
                    cand.neighbors.add(heir)

    def _smallest_live_neighbor(self, node: CANNode) -> CANNode | None:
        best, best_vol = None, float("inf")
        for nb in node.neighbors:
            if nb.alive:
                vol = nb.total_volume()
                if vol < best_vol:
                    best, best_vol = nb, vol
        return best

    def check_invariants(self) -> None:
        """Assert the tessellation and neighbor-symmetry invariants
        (test helper; O(N^2))."""
        total = sum(n.total_volume() for n in self._live)
        if self._live and abs(total - 1.0) > 1e-9:
            raise AssertionError(f"zones do not tessellate: total volume {total}")
        for node in self._live:
            if not node.zones:
                raise AssertionError(f"live node {node} owns no zone")
            if not node.zone.contains(node.point):
                raise AssertionError(f"{node} primary zone lost its point")
            for nb in node.neighbors:
                if nb.alive and node not in nb.neighbors:
                    raise AssertionError(f"asymmetric neighbor link {node} -> {nb}")
        for node in self._live:
            for zone in node.zones:
                if self.zone_owner(zone.center()) is not node:
                    raise AssertionError(
                        f"BSP index disagrees with zone ownership for {node}")
        for i, a in enumerate(self._live):
            for b in self._live[i + 1:]:
                should = _are_neighbors(a, b)
                linked = b in a.neighbors
                if should != linked:
                    raise AssertionError(
                        f"neighbor set mismatch: {a} vs {b}: "
                        f"geometric={should} linked={linked}"
                    )


def _are_neighbors(a: CANNode, b: CANNode) -> bool:
    return any(za.abuts(zb) for za in a.zones for zb in b.zones)


def _separating_split(zone: Zone, p_old: Point, p_new: Point,
                      rng: np.random.Generator) -> tuple[int, float]:
    """Choose the split (dimension, coordinate) separating the two points.

    Picks the dimension with the largest separation relative to the zone's
    extent and splits halfway between the two coordinates.  Falls back to
    halving the longest dimension in the measure-zero case of coincident
    points (cannot happen once a virtual dimension is in play, but the
    overlay must not crash on adversarial inputs).
    """
    best_dim, best_sep = -1, 0.0
    for d in range(zone.dims):
        sep = abs(p_old[d] - p_new[d]) / zone.extent(d)
        if sep > best_sep:
            best_dim, best_sep = d, sep
    if best_dim >= 0:
        at = (p_old[best_dim] + p_new[best_dim]) / 2.0
        if zone.lo[best_dim] < at < zone.hi[best_dim]:
            return best_dim, at
    # Coincident (or split degenerate after rounding): halve the longest dim.
    longest = max(range(zone.dims), key=zone.extent)
    return longest, (zone.lo[longest] + zone.hi[longest]) / 2.0
