"""Content-Addressable Network (Ratnasamy et al., SIGCOMM 2001).

The CAN matchmaker's substrate: a d-dimensional coordinate space divided
into rectangular zones, one owner per zone, with greedy geometric routing
between neighbors.  For matchmaking, resource capabilities/requirements are
the real dimensions and one extra *virtual* dimension (uniform random)
breaks up clusters of identical nodes and jobs (paper §3.2).
"""

from repro.dht.can.space import Point, Zone, zone_distance
from repro.dht.can.node import CANNode
from repro.dht.can.overlay import CANOverlay

__all__ = ["Point", "Zone", "zone_distance", "CANNode", "CANOverlay"]
