"""CAN participant state: representative point, owned zones, neighbor set."""

from __future__ import annotations

from repro.dht.base import DHTNode
from repro.dht.can.space import Point, Zone


class NeighborSet:
    """An insertion-ordered set of :class:`CANNode`, keyed by node id.

    A plain ``set`` of node objects iterates in identity-hash order, which
    varies between interpreter runs and would make simulations
    irreproducible; dict insertion order is deterministic given the same
    event sequence.
    """

    __slots__ = ("_nodes",)

    def __init__(self, items=()):
        self._nodes: dict[int, "CANNode"] = {}
        for item in items:
            self.add(item)

    def add(self, node: "CANNode") -> None:
        self._nodes[node.node_id] = node

    def discard(self, node: "CANNode") -> None:
        self._nodes.pop(node.node_id, None)

    def __contains__(self, node: "CANNode") -> bool:
        return node.node_id in self._nodes

    def __iter__(self):
        return iter(self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"NeighborSet({sorted(self._nodes)})"


class CANNode(DHTNode):
    """One CAN participant.

    Attributes
    ----------
    point:
        The node's representative coordinates.  For matchmaking this is its
        normalized resource-capability vector plus a random virtual
        coordinate (paper §3.2); the node's primary zone always contains it.
    zones:
        Owned zones.  ``zones[0]`` is the primary zone (contains ``point``);
        later entries were adopted through takeover when neighbors died.
    neighbors:
        Current neighbor set (zone abutment); maintained by the overlay on
        join/split/takeover, mirroring the CAN soft-state neighbor tables.
    """

    __slots__ = ("point", "zones", "neighbors")

    def __init__(self, node_id: int, point: Point):
        super().__init__(node_id)
        self.point = point
        self.zones: list[Zone] = []
        self.neighbors: NeighborSet = NeighborSet()

    @property
    def zone(self) -> Zone:
        """Primary zone (the one containing the node's own point)."""
        return self.zones[0]

    def owns_point(self, point: Point) -> bool:
        return any(z.contains(point) for z in self.zones)

    def total_volume(self) -> float:
        return sum(z.volume() for z in self.zones)

    def distance_to(self, point: Point) -> float:
        """Squared distance from ``point`` to the nearest owned zone."""
        from repro.dht.can.space import zone_distance

        return min(zone_distance(z, point) for z in self.zones)
