"""Geometry of the CAN coordinate space.

The space is the half-open unit hypercube ``[0, 1)^d`` *without*
wrap-around: matchmaking needs the resource dimensions totally ordered
("more capable" must be a direction), so unlike the original CAN torus our
space has boundaries.  Greedy routing still always progresses because live
zones tessellate the space.

Zones are axis-aligned half-open boxes.  All zone boundaries are produced
by splitting existing boundaries, so coordinates that should coincide are
bit-identical floats and abutment tests can use exact comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

#: A point is a plain tuple of floats — profiling showed tuples beat small
#: numpy arrays by ~5x for the d<=6 vector math routing does per hop.
Point = tuple[float, ...]


def as_point(coords: Iterable[float]) -> Point:
    p = tuple(float(c) for c in coords)
    for c in p:
        if not (0.0 <= c <= 1.0):
            raise ValueError(f"coordinate {c!r} outside [0, 1]")
    return p


@dataclass(frozen=True)
class Zone:
    """A half-open axis-aligned box ``[lo_i, hi_i)`` per dimension."""

    lo: Point
    hi: Point

    def __post_init__(self) -> None:
        if len(self.lo) != len(self.hi):
            raise ValueError("lo/hi dimensionality mismatch")
        for a, b in zip(self.lo, self.hi):
            if not a < b:
                raise ValueError(f"degenerate zone extent [{a}, {b})")

    @property
    def dims(self) -> int:
        return len(self.lo)

    def contains(self, point: Point) -> bool:
        """Half-open membership; points at ``hi == 1.0`` on the space
        boundary belong to the boundary zone (closed top face there)."""
        for c, a, b in zip(point, self.lo, self.hi):
            if c < a:
                return False
            if c >= b and not (b == 1.0 and c == 1.0):
                return False
        return True

    def center(self) -> Point:
        return tuple((a + b) / 2.0 for a, b in zip(self.lo, self.hi))

    def volume(self) -> float:
        v = 1.0
        for a, b in zip(self.lo, self.hi):
            v *= b - a
        return v

    def extent(self, dim: int) -> float:
        return self.hi[dim] - self.lo[dim]

    def split(self, dim: int, at: float) -> tuple["Zone", "Zone"]:
        """Split into (lower, upper) halves at coordinate ``at`` on ``dim``."""
        if not (self.lo[dim] < at < self.hi[dim]):
            raise ValueError(
                f"split point {at} outside zone extent "
                f"[{self.lo[dim]}, {self.hi[dim]}) on dim {dim}"
            )
        lo, hi = list(self.lo), list(self.hi)
        hi[dim] = at
        lower = Zone(self.lo, tuple(hi))
        lo[dim] = at
        upper = Zone(tuple(lo), self.hi)
        return lower, upper

    def abuts(self, other: "Zone") -> bool:
        """True iff the zones are CAN neighbors: they share a (d-1)-face —
        touching along exactly one dimension and overlapping (with positive
        measure) in every other dimension."""
        touch_dim = -1
        for d in range(self.dims):
            if self.hi[d] == other.lo[d] or other.hi[d] == self.lo[d]:
                # Touching in this dim; there must be exactly one such dim
                # *without* overlap.  (Zones can touch in one dim and overlap
                # in the rest — that's the neighbor case.)
                if touch_dim != -1:
                    return False
                touch_dim = d
            elif not (self.lo[d] < other.hi[d] and other.lo[d] < self.hi[d]):
                return False  # disjoint with a gap in this dim
        return touch_dim != -1

    def clamp(self, point: Point) -> Point:
        """Nearest point of the closed zone to ``point``."""
        out = []
        for c, a, b in zip(point, self.lo, self.hi):
            out.append(min(max(c, a), b))
        return tuple(out)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        spans = ", ".join(f"[{a:.3g},{b:.3g})" for a, b in zip(self.lo, self.hi))
        return f"Zone({spans})"


def unit_zone(dims: int) -> Zone:
    return Zone((0.0,) * dims, (1.0,) * dims)


def point_distance_sq(a: Point, b: Point) -> float:
    s = 0.0
    for x, y in zip(a, b):
        d = x - y
        s += d * d
    return s


def zone_distance(zone: Zone, point: Point) -> float:
    """Squared distance from ``point`` to the closed zone (0 if inside)."""
    s = 0.0
    for c, a, b in zip(point, zone.lo, zone.hi):
        if c < a:
            d = a - c
        elif c > b:
            d = c - b
        else:
            continue
        s += d * d
    return s
