"""Distributed hash table substrates.

The paper assumes "an underlying Distributed Hash Table infrastructure
[CAN, Pastry, Chord, Tapestry]".  We implement four from scratch:

* :mod:`repro.dht.chord` — the ring DHT the RN-Tree matchmaker is built on.
* :mod:`repro.dht.can` — the d-dimensional Content-Addressable Network the
  CAN matchmaker (and its load-pushing variant) is built on.
* :mod:`repro.dht.pastry` — prefix routing with leaf sets, covering the
  Pastry/Tapestry design family the paper also cites.
* :mod:`repro.dht.kademlia` — an XOR-metric DHT used as an additional
  substrate for the DHT-scaling benchmarks (the reproduction-hint notes
  Kademlia is the ecosystem-standard choice).

All four expose the common :class:`repro.dht.base.DHTOverlay` API (route a
key to its owner, store/fetch replicated values, join/leave/crash), so the
grid layer and the experiments can swap them freely.
"""

from repro.dht.base import DHTNode, DHTOverlay, RouteResult

__all__ = ["DHTNode", "DHTOverlay", "RouteResult"]
