"""Kademlia node state: the k-bucket routing table."""

from __future__ import annotations

from repro.dht.base import DHTNode
from repro.util.ids import GUID_BITS


class KademliaNode(DHTNode):
    """One Kademlia participant.

    ``buckets[i]`` holds contacts whose XOR distance from this node has bit
    length ``i + 1`` (i.e. differs first in bit ``i``), least-recently seen
    first, capacity ``k`` each.
    """

    __slots__ = ("bits", "k", "buckets")

    def __init__(self, node_id: int, bits: int = GUID_BITS, k: int = 8):
        super().__init__(node_id)
        self.bits = bits
        self.k = k
        self.buckets: list[list[KademliaNode]] = [[] for _ in range(bits)]

    def bucket_index(self, other_id: int) -> int:
        """Index of the bucket responsible for ``other_id``."""
        dist = self.node_id ^ other_id
        if dist == 0:
            raise ValueError("node has no bucket for itself")
        return dist.bit_length() - 1

    def observe(self, contact: "KademliaNode") -> None:
        """LRU bucket update on seeing ``contact`` (Kademlia §2.2): move an
        existing entry to the tail; insert if there's room; otherwise evict
        the least-recently-seen entry iff it is dead (we can check liveness
        directly — the structural stand-in for the eviction ping)."""
        if contact is self or contact.node_id == self.node_id:
            return
        bucket = self.buckets[self.bucket_index(contact.node_id)]
        try:
            bucket.remove(contact)
        except ValueError:
            if len(bucket) >= self.k:
                if bucket[0].alive:
                    return  # table full of live nodes: drop the newcomer
                bucket.pop(0)
        bucket.append(contact)

    def closest_known(self, key: int, count: int) -> list["KademliaNode"]:
        """The ``count`` live contacts closest to ``key`` by XOR distance."""
        contacts = [c for bucket in self.buckets for c in bucket if c.alive]
        contacts.sort(key=lambda c: c.node_id ^ key)
        return contacts[:count]
