"""Kademlia DHT (Maymounkov & Mazières, IPTPS 2002).

XOR-metric DHT with k-buckets and iterative node lookup.  Included as a
third substrate behind the common :class:`repro.dht.base.DHTOverlay` API:
the paper's architecture is DHT-agnostic ("we assume an underlying DHT
infrastructure"), and the DHT-scaling experiment compares lookup cost
across Chord, CAN, and Kademlia.
"""

from repro.dht.kademlia.node import KademliaNode
from repro.dht.kademlia.overlay import KademliaOverlay

__all__ = ["KademliaNode", "KademliaOverlay"]
