"""The Kademlia overlay: iterative lookup, join, and k-closest storage."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.dht.base import DHTOverlay, RouteResult
from repro.dht.kademlia.node import KademliaNode
from repro.util.ids import GUID_BITS


class KademliaOverlay(DHTOverlay):
    """A simulated Kademlia network.

    Parameters
    ----------
    k:
        Bucket capacity and storage replication width.
    alpha:
        Lookup concurrency.  In the structural model each *queried* node
        costs one hop; alpha only affects how aggressively the shortlist is
        expanded per round, so it changes hop counts exactly the way query
        parallelism changes message counts in a real deployment.
    """

    def __init__(self, rng: np.random.Generator, bits: int = GUID_BITS,
                 k: int = 8, alpha: int = 3):
        super().__init__()
        if k < 1 or alpha < 1:
            raise ValueError("k and alpha must be >= 1")
        self.rng = rng
        self.bits = bits
        self.k = k
        self.alpha = alpha
        self.nodes: dict[int, KademliaNode] = {}
        self._live: list[KademliaNode] = []

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def build(self, node_ids: Iterable[int]) -> list[KademliaNode]:
        """Create nodes and warm routing tables via each node joining in a
        random order (Kademlia tables are populated by traffic, so a joined
        network is the natural "built" state)."""
        created = [KademliaNode(nid, bits=self.bits, k=self.k) for nid in node_ids]
        order = list(created)
        self.rng.shuffle(order)  # type: ignore[arg-type]
        for node in order:
            self.join(node)
        return created

    def join(self, node: KademliaNode, bootstrap: KademliaNode | None = None) -> None:
        if node.node_id in self.nodes and self.nodes[node.node_id] is not node:
            raise ValueError(f"node id collision {node.node_id:#x}")
        self.nodes[node.node_id] = node
        node.alive = True
        if self._live:
            boot = bootstrap if bootstrap is not None and bootstrap.alive \
                else self._live[int(self.rng.integers(0, len(self._live)))]
            node.observe(boot)
            boot.observe(node)
            # Lookup of our own id populates buckets near us and announces
            # us to the nodes we traverse.
            self._lookup(node.node_id, node, record=False, announce=node)
        self._live.append(node)

    def crash(self, node_id: int) -> None:
        node = self.nodes[node_id]
        if not node.alive:
            return
        node.alive = False
        node.store.clear()
        self._live.remove(node)

    def live_nodes(self) -> list[KademliaNode]:
        return list(self._live)

    @property
    def size(self) -> int:
        return len(self._live)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def route(self, key: int, start: KademliaNode | None = None) -> RouteResult:
        return self._lookup(key, start, record=True)

    def owner_oracle(self, key: int) -> KademliaNode | None:
        """The globally closest live node to ``key`` (tests only)."""
        if not self._live:
            return None
        return min(self._live, key=lambda n: n.node_id ^ key)

    def replica_set(self, owner: KademliaNode, key: int, replicas: int) -> list[KademliaNode]:
        """Owner plus the next-closest live contacts it knows of."""
        out = [owner]
        for cand in owner.closest_known(key, replicas + 1):
            if cand is not owner and len(out) < replicas:
                out.append(cand)
        return out

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _lookup(self, key: int, start: KademliaNode | None, record: bool,
                announce: KademliaNode | None = None) -> RouteResult:
        key &= (1 << self.bits) - 1
        if start is None or not start.alive:
            start = self._live[int(self.rng.integers(0, len(self._live)))] \
                if self._live else None
        if start is None:
            result = RouteResult(False, None, 0)
            if record:
                self.note_route(result)
            return result
        shortlist: dict[int, KademliaNode] = {start.node_id: start}
        queried: set[int] = set()
        hops = 0
        path = [start.node_id]
        while True:
            candidates = sorted(
                (n for n in shortlist.values() if n.alive and n.node_id not in queried),
                key=lambda n: n.node_id ^ key,
            )[: self.alpha]
            if not candidates:
                break
            progressed = False
            for node in candidates:
                queried.add(node.node_id)
                hops += 1
                path.append(node.node_id)
                if announce is not None:
                    node.observe(announce)
                for contact in node.closest_known(key, self.k):
                    if contact.node_id not in shortlist:
                        shortlist[contact.node_id] = contact
                        progressed = True
                        if announce is not None:
                            announce.observe(contact)
            closest = sorted(
                (n for n in shortlist.values() if n.alive),
                key=lambda n: n.node_id ^ key,
            )[: self.k]
            if not progressed and all(n.node_id in queried for n in closest):
                break
        live_sorted = sorted(
            (n for n in shortlist.values() if n.alive),
            key=lambda n: n.node_id ^ key,
        )
        owner = live_sorted[0] if live_sorted else None
        result = RouteResult(owner is not None, owner, hops, path)
        result.k_closest = live_sorted[: self.k]  # type: ignore[attr-defined]
        if record:
            self.note_route(result)
        return result

    def put(self, key: int, value, replicas: int | None = None) -> RouteResult:
        """Store on the ``replicas`` (default k) closest nodes the lookup
        discovered — Kademlia's STORE-at-k-closest placement."""
        replicas = self.k if replicas is None else replicas
        result = self._lookup(key, None, record=True)
        if result.success:
            for node in result.k_closest[:replicas]:  # type: ignore[attr-defined]
                node.store[key] = value
        return result
