"""Common DHT interfaces.

Routing model
-------------
Overlay routing is performed as a *structural traversal*: the overlay walks
its own routing state node by node, skipping dead peers exactly where a
real iterative lookup would time out and retry, and returns the owner plus
the hop count and path taken.  Virtual-time cost is then charged by the
caller as ``hops * Network.hop_latency()``.  This is the standard
simulator compromise (the paper's own simulator does the same): hop counts
and failure sensitivity — the quantities the evaluation reports — are
exact, while per-message event scheduling for every intermediate hop is
avoided, keeping million-event experiments tractable in Python.

Direct point-to-point traffic (heartbeats, control messages) does go
through :class:`repro.sim.network.Network` as real scheduled messages.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Iterable


class DHTNode:
    """Base class for a DHT participant.

    Concrete overlays subclass this with their routing state (fingers,
    zones, k-buckets).  ``node_id`` is the GUID; ``alive`` gates all
    participation.  ``store`` is the local partition of the DHT's key-value
    service.
    """

    __slots__ = ("node_id", "alive", "store")

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.alive = True
        self.store: dict[int, Any] = {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.alive else "DOWN"
        return f"{type(self).__name__}(id={self.node_id:#x}, {state})"


@dataclass
class RouteResult:
    """Outcome of routing a key through the overlay."""

    success: bool
    owner: DHTNode | None
    hops: int
    path: list[int] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.success


@dataclass
class LookupStats:
    """Aggregate routing statistics maintained by every overlay."""

    lookups: int = 0
    failed: int = 0
    total_hops: int = 0

    def record(self, result: RouteResult) -> None:
        self.lookups += 1
        self.total_hops += result.hops
        if not result.success:
            self.failed += 1

    @property
    def mean_hops(self) -> float:
        return self.total_hops / self.lookups if self.lookups else float("nan")


class DHTOverlay(abc.ABC):
    """Abstract overlay: membership, routing, and a replicated KV service."""

    def __init__(self) -> None:
        self.lookup_stats = LookupStats()
        #: Optional :class:`repro.telemetry.core.Telemetry` sink, attached
        #: by the matchmaker that owns this overlay when its grid has
        #: telemetry enabled.  None keeps routing accounting local.
        self.telemetry = None

    @property
    def proto_name(self) -> str:
        """Short protocol tag for metric names (``chord``, ``can``, ...)."""
        return type(self).__name__.removesuffix("Overlay").lower()

    def note_route(self, result: RouteResult, op: str = "lookup") -> None:
        """Account one routing operation (called by every ``route``)."""
        self.lookup_stats.record(result)
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.note_dht_lookup(self.proto_name, op, result)

    # -- membership ------------------------------------------------------

    @abc.abstractmethod
    def join(self, node: DHTNode) -> None:
        """Admit a node into the overlay (protocol or oracle construction)."""

    @abc.abstractmethod
    def crash(self, node_id: int) -> None:
        """Fail a node abruptly: it stops participating, state is lost."""

    @abc.abstractmethod
    def live_nodes(self) -> Iterable[DHTNode]:
        """All currently-live members."""

    # -- routing ---------------------------------------------------------

    @abc.abstractmethod
    def route(self, key: int, start: DHTNode | None = None) -> RouteResult:
        """Route ``key`` to its owner, starting from ``start`` (or a random
        live node).  Records into :attr:`lookup_stats`."""

    # -- replicated storage ------------------------------------------------

    def put(self, key: int, value: Any, replicas: int = 1) -> RouteResult:
        """Store ``value`` under ``key`` on the owner and ``replicas - 1``
        additional replica holders (overlay-specific placement)."""
        result = self.route(key)
        if result.success:
            for node in self.replica_set(result.owner, key, replicas):
                node.store[key] = value
        return result

    def get(self, key: int, replicas: int = 1) -> tuple[RouteResult, Any]:
        """Fetch the value for ``key``; falls back to replicas if the owner
        lost it (e.g. the owner is a recent joiner after a crash)."""
        result = self.route(key)
        if not result.success:
            return result, None
        for node in self.replica_set(result.owner, key, replicas):
            if key in node.store:
                return result, node.store[key]
        return result, None

    @abc.abstractmethod
    def replica_set(self, owner: DHTNode, key: int, replicas: int) -> list[DHTNode]:
        """The ``replicas`` live nodes responsible for ``key`` (owner first)."""
