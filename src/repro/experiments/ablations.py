"""Ablations of the design choices DESIGN.md calls out.

* **Virtual dimension** (§3.2): without it, identical nodes cannot split a
  zone at all (construction fails for clustered populations), and
  identical jobs pile onto "the single node that owns the zone containing
  the origin".  We measure both effects.
* **Extended search k** (§3.1): the RN-Tree keeps searching "until at
  least k capable nodes are found for better load balancing"; we sweep k
  to show the cost/balance trade-off.
* **TTL random walk** (§4): "such mechanisms may fail to find a resource
  capable of running a given job, even though such a resource exists
  somewhere in the network" — we count exactly those failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.parallel import map_cells
from repro.experiments.runner import (build_population, run_workload,
                                      workload_call)
from repro.grid.system import DEFAULT_MAX_TIME, DesktopGrid, GridConfig
from repro.match import make_matchmaker
from repro.metrics.report import format_table
from repro.workloads.spec import FIGURE2_SCENARIOS, WorkloadConfig


# ----------------------------------------------------------------------
# virtual dimension
# ----------------------------------------------------------------------

@dataclass
class VirtualDimResult:
    clustered_construction_fails: bool = False
    rows: list[list] = field(default_factory=list)
    by_variant: dict[str, dict[str, float]] = field(default_factory=dict)

    def report(self) -> str:
        lines = [
            "Virtual-dimension ablation",
            "==========================",
            "CAN construction over *clustered* (identical) nodes without the "
            f"virtual dimension fails: {self.clustered_construction_fails} "
            "(identical representative points cannot split a zone).",
            "",
            format_table(
                ["variant", "wait mean (s)", "wait stdev (s)", "completed"],
                self.rows,
                title="Mixed nodes / clustered (identical) jobs",
            ),
        ]
        return "\n".join(lines)

    def shape_checks(self) -> dict[str, bool]:
        return {
            "no_vdim_cannot_split_identical_nodes":
                self.clustered_construction_fails,
            "vdim_improves_identical_jobs":
                self.by_variant["can (virtual dim)"]["wait_mean"]
                < self.by_variant["can (no virtual dim)"]["wait_mean"],
        }


def run_virtual_dimension_ablation(scale: float = 0.2, seed: int = 1,
                                   max_time: float = DEFAULT_MAX_TIME,
                                   jobs: int | None = None
                                   ) -> VirtualDimResult:
    result = VirtualDimResult()

    # Part 1: clustered nodes, no virtual dimension -> zone splits between
    # coincident points are impossible; construction must fail loudly.
    clustered = FIGURE2_SCENARIOS["clustered-light"].scaled(scale)
    nodes, _ = build_population(clustered, seed)
    try:
        DesktopGrid(GridConfig(seed=seed),
                    make_matchmaker("can", use_virtual_dimension=False), nodes)
    except ValueError:
        result.clustered_construction_fails = True

    # Part 2: the job-spreading half of the fix.  Nodes keep their virtual
    # coordinate (any realistic discrete-level population has coincident
    # capability points, so construction *needs* it — part 1), but jobs get
    # either a fixed virtual coordinate (identical jobs -> one owner zone,
    # "all of those jobs will be mapped to the single node that owns the
    # zone") or the paper's random one.
    workload = WorkloadConfig(node_mode="mixed", job_mode="clustered",
                              constraint_prob=0.4, job_classes=4).scaled(scale)
    variants = (
        ("can (no virtual dim)", {"job_virtual_spread": False}),
        ("can (virtual dim)", {"job_virtual_spread": True}),
    )
    outcomes = map_cells(
        run_workload,
        [workload_call(workload, "can", seed=seed, mm_kwargs=kwargs,
                       max_time=max_time) for _label, kwargs in variants],
        jobs=jobs)
    for (label, _kwargs), outcome in zip(variants, outcomes):
        s = outcome.summary
        result.by_variant[label] = s
        result.rows.append([label, round(s["wait_mean"], 2),
                            round(s["wait_std"], 2), int(s["completed"])])
    return result


# ----------------------------------------------------------------------
# RN-Tree extended-search k sweep
# ----------------------------------------------------------------------

@dataclass
class KSweepResult:
    rows: list[list] = field(default_factory=list)
    by_k: dict[int, dict[str, float]] = field(default_factory=dict)

    def report(self) -> str:
        return format_table(
            ["k", "wait mean (s)", "wait stdev (s)", "match cost"],
            self.rows,
            title="RN-Tree extended search: candidates k vs balance/cost",
        )

    def shape_checks(self) -> dict[str, bool]:
        ks = sorted(self.by_k)
        lo, hi = self.by_k[ks[0]], self.by_k[ks[-1]]
        return {
            # More candidates -> better balance (lower dispersion)...
            "larger_k_better_balance": hi["wait_std"] < lo["wait_std"],
            # ... at higher matchmaking cost.
            "larger_k_costlier": hi["match_cost_mean"] > lo["match_cost_mean"],
        }


def run_k_sweep_ablation(ks: tuple[int, ...] = (1, 2, 4, 8),
                         scale: float = 0.2, seed: int = 1,
                         max_time: float = DEFAULT_MAX_TIME,
                         jobs: int | None = None) -> KSweepResult:
    workload = FIGURE2_SCENARIOS["mixed-heavy"].scaled(scale)
    result = KSweepResult()
    outcomes = map_cells(
        run_workload,
        [workload_call(workload, "rn-tree", seed=seed, mm_kwargs={"k": k},
                       max_time=max_time) for k in ks],
        jobs=jobs)
    for k, outcome in zip(ks, outcomes):
        s = outcome.summary
        result.by_k[k] = s
        result.rows.append([k, round(s["wait_mean"], 2),
                            round(s["wait_std"], 2),
                            round(s["match_cost_mean"], 2)])
    return result


# ----------------------------------------------------------------------
# TTL random walk
# ----------------------------------------------------------------------

@dataclass
class TTLResult:
    rows: list[list] = field(default_factory=list)
    by_mm: dict[str, dict[str, float]] = field(default_factory=dict)

    def report(self) -> str:
        return format_table(
            ["matchmaker", "failed (feasible!) jobs", "wait mean (s)",
             "match cost"],
            self.rows,
            title="TTL random walk vs structured matchmaking "
                  "(heavily constrained, mixed)",
        )

    def shape_checks(self) -> dict[str, bool]:
        return {
            # The walk misses feasible resources; structured search doesn't.
            "ttl_misses_feasible_jobs": self.by_mm["ttl-walk"]["failed"] > 0,
            "structured_finds_all": self.by_mm["rn-tree"]["failed"] == 0,
        }


def run_ttl_ablation(scale: float = 0.2, seed: int = 1, ttl: int | None = 6,
                     max_time: float = DEFAULT_MAX_TIME,
                     jobs: int | None = None) -> TTLResult:
    # Heavily constrained mixed jobs: few satisfying nodes per job, so a
    # short blind walk frequently misses them all (every job is feasible
    # by construction — see repro.workloads.jobs).
    workload = FIGURE2_SCENARIOS["mixed-heavy"].scaled(scale)
    result = TTLResult()
    cells = (("ttl-walk", {"ttl": ttl}), ("rn-tree", {}), ("can", {}))
    outcomes = map_cells(
        run_workload,
        [workload_call(workload, mm, seed=seed, mm_kwargs=kwargs,
                       max_time=max_time) for mm, kwargs in cells],
        jobs=jobs)
    for (mm, _kwargs), outcome in zip(cells, outcomes):
        s = outcome.summary
        result.by_mm[mm] = s
        result.rows.append([mm, int(s["failed"]), round(s["wait_mean"], 2),
                            round(s["match_cost_mean"], 2)])
    return result
