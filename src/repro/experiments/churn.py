"""Robustness-under-churn experiment (the paper's titular claim).

§1: a client-server desktop grid "is vulnerable to a single point of
failure.  No new jobs can be assigned to a client whenever the server
becomes unavailable ... which results in inherent shortcomings with
respect to robustness, reliability and scalability."  §2 describes the
P2P remedy: replicated owner/run state, heartbeats, and mutual recovery,
with client resubmission only when *both* parties die.

This experiment runs the same churning worker population under

* the P2P grid (RN-Tree and pushing-CAN matchmaking, decentralized
  owners), and
* a client-server comparator (one server owns every job; its job
  database survives outages — the paper grants the server a database —
  but while it is out, nothing can be matched or recovered),

and reports completion rates, how many jobs needed client resubmission
(the P2P design goal is: almost none), recovery counts, and turnaround.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.parallel import call, map_cells
from repro.experiments.runner import build_population, drive
from repro.grid.job import JobState
from repro.grid.system import DesktopGrid, GridConfig
from repro.match import make_matchmaker
from repro.metrics.report import format_table
from repro.sim.failure import CrashRecoveryProcess
from repro.workloads.spec import WorkloadConfig


@dataclass(frozen=True)
class ChurnConfig:
    """Churn-experiment parameters (defaults keep runtime modest)."""

    n_nodes: int = 120
    n_jobs: int = 400
    mean_work: float = 60.0
    target_utilization: float = 0.45
    mean_uptime: float = 500.0     # worker exponential up-time
    mean_downtime: float = 120.0   # worker exponential down-time
    server_uptime: float = 400.0   # server outage process (client-server only)
    server_downtime: float = 120.0
    heartbeat_interval: float = 5.0
    client_timeout: float = 240.0
    max_time: float = 40000.0

    def workload(self) -> WorkloadConfig:
        # interarrival chosen so offered load = target_utilization.
        interarrival = self.mean_work / (self.target_utilization * self.n_nodes)
        return WorkloadConfig(
            n_nodes=self.n_nodes, n_jobs=self.n_jobs,
            node_mode="mixed", job_mode="mixed", constraint_prob=0.4,
            mean_work=self.mean_work, mean_interarrival=interarrival,
        )


@dataclass
class ChurnResult:
    config: ChurnConfig
    rows: list[list] = field(default_factory=list)
    by_system: dict[str, dict[str, float]] = field(default_factory=dict)

    def report(self) -> str:
        return format_table(
            ["system", "completed %", "no-resubmit %", "lost",
             "run-node recoveries", "owner recoveries", "resubmissions",
             "turnaround mean (s)"],
            self.rows,
            title="Robustness under churn: P2P recovery vs client-server "
                  "single point of failure",
        )

    def shape_checks(self) -> dict[str, bool]:
        p2p = self.by_system["p2p/rn-tree"]
        srv = self.by_system["client-server"]
        return {
            # The P2P grid absorbs churn through owner/run recovery ...
            "p2p_high_completion": p2p["completed_frac"] >= 0.97,
            # ... with (almost) no client resubmissions,
            "p2p_few_resubmissions": p2p["no_resubmit_frac"] >= 0.95,
            # while the client-server grid leans on client resubmission and
            # stalls during outages.
            "server_more_resubmissions": srv["resubmissions"]
                > 2.0 * p2p["resubmissions"] + 1.0,
            "server_slower_turnaround": srv["turnaround_mean"]
                > p2p["turnaround_mean"],
        }


def _grid_config(cc: ChurnConfig, seed: int) -> GridConfig:
    return GridConfig(
        seed=seed,
        heartbeats_enabled=True,
        heartbeat_interval=cc.heartbeat_interval,
        relay_status_to_client=True,
        client_resubmit_enabled=True,
        client_check_interval=cc.heartbeat_interval * 4,
        client_timeout=cc.client_timeout,
        client_max_attempts=8,
        match_retries=10,
        match_retry_backoff=cc.heartbeat_interval * 2,
    )


def _run_system(cc: ChurnConfig, system: str, seed: int) -> dict[str, float]:
    workload = cc.workload()
    nodes, stream = build_population(workload, seed)
    if system == "client-server":
        matchmaker = make_matchmaker("centralized", server_mode=True)
    else:
        matchmaker = make_matchmaker(system.split("/", 1)[1])
    grid = DesktopGrid(_grid_config(cc, seed), matchmaker, nodes)

    churn_rng = grid.streams["churn"]
    if system == "client-server":
        server_id = matchmaker.server.node_id
        workers = [n.node_id for n in grid.node_list if n.node_id != server_id]
        # The server suffers outages that preserve its database.
        CrashRecoveryProcess(grid.sim, grid.streams["server-outage"],
                             [server_id],
                             crash_fn=grid.partition_node,
                             recover_fn=grid.heal_node,
                             mean_uptime=cc.server_uptime,
                             mean_downtime=cc.server_downtime)
    else:
        workers = [n.node_id for n in grid.node_list]
    CrashRecoveryProcess(grid.sim, churn_rng, workers,
                         crash_fn=grid.crash_node,
                         recover_fn=grid.recover_node,
                         mean_uptime=cc.mean_uptime,
                         mean_downtime=cc.mean_downtime)

    drive(grid, workload, stream, max_time=cc.max_time)

    jobs = list(grid.jobs.values())
    completed = [j for j in jobs if j.state is JobState.COMPLETED]
    n = max(len(jobs), 1)
    s = grid.metrics.summary()
    turnarounds = grid.metrics.turnarounds()
    return {
        "completed_frac": len(completed) / n,
        "no_resubmit_frac": sum(1 for j in completed if j.attempt == 1) / n,
        "lost": float(sum(1 for j in jobs
                          if j.state not in (JobState.COMPLETED, JobState.FAILED))),
        "recoveries_run_node": s["recoveries_run_node"],
        "recoveries_owner": s["recoveries_owner"],
        "resubmissions": s["resubmissions"],
        "turnaround_mean": float(turnarounds.mean()) if turnarounds.size else float("nan"),
    }


SYSTEMS = ("p2p/rn-tree", "p2p/can-push", "client-server")


def run_churn_experiment(config: ChurnConfig | None = None,
                         seeds: tuple[int, ...] = (1,),
                         systems: tuple[str, ...] = SYSTEMS,
                         jobs: int | None = None) -> ChurnResult:
    cc = config or ChurnConfig()
    result = ChurnResult(config=cc)
    summaries = map_cells(
        _run_system,
        [call(cc, system, seed).with_cost(kind=f"churn:{system}")
         for system in systems for seed in seeds],
        jobs=jobs)
    for i, system in enumerate(systems):
        per_seed = summaries[i * len(seeds):(i + 1) * len(seeds)]
        agg = {k: float(np.mean([p[k] for p in per_seed])) for k in per_seed[0]}
        result.by_system[system] = agg
        result.rows.append([
            system,
            round(100 * agg["completed_frac"], 1),
            round(100 * agg["no_resubmit_frac"], 1),
            round(agg["lost"], 1),
            round(agg["recoveries_run_node"], 1),
            round(agg["recoveries_owner"], 1),
            round(agg["resubmissions"], 1),
            round(agg["turnaround_mean"], 1),
        ])
    return result
