"""Experiment drivers — one per paper figure/table (see DESIGN.md §3).

Each driver builds workloads, runs grids, and returns structured results
plus a formatted text report printing the same rows/series the paper
reports.  The benchmark harness under ``benchmarks/`` wraps these.
"""

from repro.experiments.runner import RunOutcome, run_workload, run_replicates
from repro.experiments.figure2 import Figure2Result, run_figure2
from repro.experiments.hops import run_hops_experiment
from repro.experiments.pushing import run_pushing_experiment
from repro.experiments.churn import run_churn_experiment
from repro.experiments.dht_scaling import run_dht_scaling
from repro.experiments.ablations import (
    run_k_sweep_ablation,
    run_ttl_ablation,
    run_virtual_dimension_ablation,
)
from repro.experiments.fairness import run_fairness_experiment
from repro.experiments.large_scale import LargeScaleResult, run_large_scale
from repro.experiments.matchpipe import run_matchpipe_ablation
from repro.experiments.protocol import run_protocol_experiment
from repro.experiments.scaling import run_scaling_experiment
from repro.experiments.scenarios import (
    ScenariosConfig,
    ScenariosResult,
    run_scenarios_experiment,
)
from repro.experiments.tuning import (
    run_heartbeat_sweep,
    run_latency_sensitivity,
    run_walk_length_sweep,
)

__all__ = [
    "RunOutcome",
    "run_workload",
    "run_replicates",
    "Figure2Result",
    "run_figure2",
    "run_hops_experiment",
    "run_pushing_experiment",
    "run_churn_experiment",
    "run_dht_scaling",
    "run_k_sweep_ablation",
    "run_ttl_ablation",
    "run_virtual_dimension_ablation",
    "run_fairness_experiment",
    "LargeScaleResult",
    "run_large_scale",
    "run_matchpipe_ablation",
    "run_protocol_experiment",
    "run_scaling_experiment",
    "ScenariosConfig",
    "ScenariosResult",
    "run_scenarios_experiment",
    "run_heartbeat_sweep",
    "run_latency_sensitivity",
    "run_walk_length_sweep",
]
