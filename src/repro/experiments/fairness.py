"""Fairness extension experiment (paper §5, future work).

"It then becomes the responsibility of the system to utilize all
available computational resources to execute all submitted jobs in a fair
manner, allocating resources to requests from both users submitting large
numbers of jobs at once (as in a parameter sweep ...) and from users with
smaller resource requirements.  We leave this fairness issue as part of
our future work."

We implement run-node fair-share queueing (``GridConfig.queue_discipline``)
and measure its effect in exactly that scenario: a heavy user dumps a
parameter sweep at t=0 while a light user trickles in small requests.
Under FIFO the light user's jobs drown behind the sweep; under fair-share
their slowdown collapses while the sweep's aggregate throughput barely
moves (it is work-conserving either way).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.grid.job import Job, JobProfile
from repro.grid.system import DesktopGrid, GridConfig
from repro.match import make_matchmaker
from repro.metrics.report import format_table
from repro.util.rng import RngStreams
from repro.workloads.nodes import generate_nodes
from repro.workloads.spec import WorkloadConfig


@dataclass
class FairnessResult:
    rows: list[list] = field(default_factory=list)
    by_discipline: dict[str, dict[str, float]] = field(default_factory=dict)

    def report(self) -> str:
        return format_table(
            ["discipline", "light-user slowdown", "heavy-user slowdown",
             "makespan (s)"],
            self.rows,
            title="Fair-share vs FIFO: parameter sweep + interactive user",
        )

    def shape_checks(self) -> dict[str, bool]:
        fifo = self.by_discipline["fifo"]
        fair = self.by_discipline["fair-share"]
        return {
            # Non-preemptive fair sharing cannot beat the residual-service
            # floor (a light job still waits out the running sweep job), so
            # "protects" means a solid cut, not elimination.
            "fair_share_protects_light_user":
                fair["light_slowdown"] < 0.7 * fifo["light_slowdown"],
            "fair_share_work_conserving":
                fair["makespan"] < 1.2 * fifo["makespan"],
        }


def run_fairness_experiment(n_nodes: int = 60, heavy_jobs: int = 300,
                            light_jobs: int = 30, mean_work: float = 30.0,
                            seed: int = 1, matchmaker: str = "rn-tree",
                            max_time: float = 1e6) -> FairnessResult:
    result = FairnessResult()
    for discipline in ("fifo", "fair-share"):
        streams = RngStreams(seed)
        nodes = generate_nodes(
            WorkloadConfig(n_nodes=n_nodes, node_mode="mixed"),
            streams["workload-nodes"])
        cfg = GridConfig(seed=seed, queue_discipline=discipline)
        grid = DesktopGrid(cfg, make_matchmaker(matchmaker), nodes)
        heavy = grid.client("heavy-user")
        light = grid.client("light-user")
        rng = streams["fairness-jobs"]
        unconstrained = (0.0,) * cfg.spec.dims

        def submit(client, name, at):
            work = max(1.0, float(rng.exponential(mean_work)))
            job = Job(profile=JobProfile(name=name, client_id=client.node_id,
                                         requirements=unconstrained, work=work))
            grid.submit_at(at, client, job)
            return job

        heavy_list = [submit(heavy, f"sweep-{discipline}-{i}",
                             at=float(rng.uniform(0, 5)))
                      for i in range(heavy_jobs)]
        light_list = [submit(light, f"interactive-{discipline}-{i}",
                             at=float(rng.uniform(0, heavy_jobs * mean_work
                                                  / n_nodes)))
                      for i in range(light_jobs)]
        grid.run_until_done(max_time=max_time)

        def slowdown(jobs: list[Job]) -> float:
            vals = [j.turnaround / j.profile.work for j in jobs
                    if j.is_done and j.turnaround == j.turnaround]
            return float(np.mean(vals)) if vals else float("nan")

        summary = {
            "light_slowdown": slowdown(light_list),
            "heavy_slowdown": slowdown(heavy_list),
            "makespan": grid.sim.now,
        }
        result.by_discipline[discipline] = summary
        result.rows.append([discipline,
                            round(summary["light_slowdown"], 2),
                            round(summary["heavy_slowdown"], 2),
                            round(summary["makespan"], 1)])
    return result
