"""Matchmaking-cost experiment (paper prose, results "not shown").

"In results not shown, we have verified that both the CAN and RN-Tree can
find an appropriate run node for a job with a small number of hops
through the P2P overlay network."

We regenerate that table: for every Figure 2 scenario and decentralized
matchmaker, the mean overlay hops spent mapping the job to its owner, the
mean search hops spent finding the run node, the candidate load probes,
and the total matchmaking cost per job.  "Small" means O(log N)-flavoured,
far below N.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.parallel import map_cells
from repro.experiments.runner import run_workload, workload_call
from repro.grid.system import DEFAULT_MAX_TIME
from repro.metrics.report import format_table
from repro.workloads.spec import FIGURE2_SCENARIOS


@dataclass
class HopsResult:
    n_nodes: int
    seeds: tuple[int, ...] = (1,)
    rows: list[list] = field(default_factory=list)

    def report(self) -> str:
        replicates = (f", mean of seeds {list(self.seeds)}"
                      if len(self.seeds) > 1 else "")
        return format_table(
            ["scenario", "matchmaker", "owner hops", "search hops",
             "probes", "total cost"],
            self.rows,
            title=f"Matchmaking cost per job, N={self.n_nodes}"
                  f"{replicates} (paper: 'a small number of hops')",
        )

    def shape_checks(self) -> dict[str, bool]:
        total_by_mm: dict[str, list[float]] = {}
        for _scenario, mm, _oh, _sh, _pr, total in self.rows:
            total_by_mm.setdefault(mm, []).append(total)
        # "Small number of hops" means O(log N)-flavoured.  The cost also
        # has constant parts (k candidate probes, the random-walk length),
        # so the bound has an additive floor that dominates at tiny N.
        import math

        bound = 4.0 * math.log2(max(self.n_nodes, 2)) + 12.0
        return {
            f"{mm}_cost_small": max(vals) < min(bound, self.n_nodes / 2)
            for mm, vals in total_by_mm.items()
        }


def run_hops_experiment(scale: float = 0.25, seed: int | None = None,
                        matchmakers: tuple[str, ...] = ("rn-tree", "can"),
                        max_time: float = DEFAULT_MAX_TIME,
                        seeds: tuple[int, ...] = (1,),
                        telemetry=None,
                        jobs: int | None = None) -> HopsResult:
    """Every seed in ``seeds`` is run and the per-seed means averaged
    (``seed=`` remains as a single-seed alias).  Earlier versions accepted
    a seed list upstream and silently ran only the first — if you pass
    several seeds, you now pay for (and get) all of them."""
    if seed is not None:
        seeds = (seed,)
    first = next(iter(FIGURE2_SCENARIOS.values())).scaled(scale)
    result = HopsResult(n_nodes=first.n_nodes, seeds=seeds)
    cols = ("owner_hops_mean", "match_hops_mean", "probes_mean",
            "match_cost_mean")
    groups = [(scenario, workload.scaled(scale), mm)
              for scenario, workload in FIGURE2_SCENARIOS.items()
              for mm in matchmakers]
    outcomes = map_cells(
        run_workload,
        [workload_call(wl, mm, seed=s, max_time=max_time)
         for _scenario, wl, mm in groups for s in seeds],
        jobs=jobs, telemetry=telemetry)
    for i, (scenario, _wl, mm) in enumerate(groups):
        summaries = [o.summary
                     for o in outcomes[i * len(seeds):(i + 1) * len(seeds)]]
        result.rows.append([
            scenario, mm,
            *(round(float(np.mean([s[c] for s in summaries])), 2)
              for c in cols),
        ])
    return result
