"""Matchmaking-cost experiment (paper prose, results "not shown").

"In results not shown, we have verified that both the CAN and RN-Tree can
find an appropriate run node for a job with a small number of hops
through the P2P overlay network."

We regenerate that table: for every Figure 2 scenario and decentralized
matchmaker, the mean overlay hops spent mapping the job to its owner, the
mean search hops spent finding the run node, the candidate load probes,
and the total matchmaking cost per job.  "Small" means O(log N)-flavoured,
far below N.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.runner import run_workload
from repro.metrics.report import format_table
from repro.workloads.spec import FIGURE2_SCENARIOS


@dataclass
class HopsResult:
    n_nodes: int
    rows: list[list] = field(default_factory=list)

    def report(self) -> str:
        return format_table(
            ["scenario", "matchmaker", "owner hops", "search hops",
             "probes", "total cost"],
            self.rows,
            title=f"Matchmaking cost per job, N={self.n_nodes} "
                  f"(paper: 'a small number of hops')",
        )

    def shape_checks(self) -> dict[str, bool]:
        total_by_mm: dict[str, list[float]] = {}
        for _scenario, mm, _oh, _sh, _pr, total in self.rows:
            total_by_mm.setdefault(mm, []).append(total)
        # "Small number of hops" means O(log N)-flavoured.  The cost also
        # has constant parts (k candidate probes, the random-walk length),
        # so the bound has an additive floor that dominates at tiny N.
        import math

        bound = 4.0 * math.log2(max(self.n_nodes, 2)) + 12.0
        return {
            f"{mm}_cost_small": max(vals) < min(bound, self.n_nodes / 2)
            for mm, vals in total_by_mm.items()
        }


def run_hops_experiment(scale: float = 0.25, seed: int = 1,
                        matchmakers: tuple[str, ...] = ("rn-tree", "can"),
                        max_time: float = 1e6) -> HopsResult:
    first = next(iter(FIGURE2_SCENARIOS.values())).scaled(scale)
    result = HopsResult(n_nodes=first.n_nodes)
    for scenario, workload in FIGURE2_SCENARIOS.items():
        wl = workload.scaled(scale)
        for mm in matchmakers:
            s = run_workload(wl, mm, seed=seed, max_time=max_time).summary
            result.rows.append([
                scenario, mm,
                round(s["owner_hops_mean"], 2),
                round(s["match_hops_mean"], 2),
                round(s["probes_mean"], 2),
                round(s["match_cost_mean"], 2),
            ])
    return result
