"""Load-aware pushing experiment (paper §3.3, "preliminary experiments").

"We have verified that the modified CAN-based matchmaking mechanism
dramatically improves the quality of load balancing compared to the basic
CAN scheme presented here, still with low matchmaking cost."

Regenerated on the pathological scenario the pushing mechanism was built
for — lightly-constrained jobs on mixed nodes — comparing basic CAN,
pushing CAN, and the centralized target.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.parallel import map_cells
from repro.experiments.runner import (aggregate_outcomes, run_workload,
                                      workload_call)
from repro.grid.system import DEFAULT_MAX_TIME
from repro.metrics.report import format_table
from repro.workloads.spec import FIGURE2_SCENARIOS


@dataclass
class PushingResult:
    rows: list[list] = field(default_factory=list)
    by_mm: dict[str, dict[str, float]] = field(default_factory=dict)

    def report(self) -> str:
        return format_table(
            ["matchmaker", "wait mean (s)", "wait stdev (s)",
             "match cost", "pushes/job"],
            self.rows,
            title="Load-aware pushing on the pathological workload "
                  "(mixed nodes, lightly-constrained jobs)",
        )

    def shape_checks(self) -> dict[str, bool]:
        can = self.by_mm["can"]
        push = self.by_mm["can-push"]
        cent = self.by_mm["centralized"]
        return {
            # "Dramatically improves": at least a 3x wait-time reduction.
            "push_dramatically_improves": push["wait_mean"]
                < can["wait_mean"] / 3.0,
            # And lands near the centralized target (same order).
            "push_near_centralized": push["wait_mean"]
                <= 10.0 * max(cent["wait_mean"], 1.0) + 30.0,
            # "Still with low matchmaking cost."
            "push_cost_low": push["match_cost_mean"] < can["match_cost_mean"] + 20.0,
        }


def run_pushing_experiment(scale: float = 0.25, seeds: tuple[int, ...] = (1,),
                           max_time: float = DEFAULT_MAX_TIME,
                           telemetry=None,
                           jobs: int | None = None) -> PushingResult:
    workload = FIGURE2_SCENARIOS["mixed-light"].scaled(scale)
    result = PushingResult()
    matchmakers = ("can", "can-push", "centralized")
    outcomes = map_cells(
        run_workload,
        [workload_call(workload, mm, seed=s, max_time=max_time)
         for mm in matchmakers for s in seeds],
        jobs=jobs, telemetry=telemetry)
    for i, mm in enumerate(matchmakers):
        s = aggregate_outcomes(outcomes[i * len(seeds):(i + 1) * len(seeds)])
        result.by_mm[mm] = s
        result.rows.append([
            mm,
            round(s["wait_mean"], 2),
            round(s["wait_std"], 2),
            round(s["match_cost_mean"], 2),
            round(s["pushes_mean"], 2),
        ])
    return result
