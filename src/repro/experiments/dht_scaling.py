"""DHT lookup-cost scaling (§2's premise).

"DHTs use computationally secure hashes to map arbitrary identifiers to
random nodes in a system.  This randomized mapping allows DHTs to present
a simple insertion and lookup API that is highly robust, scalable, and
efficient."

We substantiate the premise on all four substrates: mean lookup cost vs
population size N should grow like O(log N) for Chord, O(log_16 N) for
Pastry, O(log N) queries for Kademlia, and O(d * N^(1/d)) for CAN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.dht.can import CANNode, CANOverlay
from repro.dht.chord import ChordOverlay
from repro.dht.kademlia import KademliaOverlay
from repro.dht.pastry import PastryOverlay
from repro.experiments.parallel import call, map_cells, sharded
from repro.metrics.report import format_table
from repro.util.ids import guid_for
from repro.util.rng import RngStreams


#: Populations past the paper's scale, exercised by ``include_large`` (the
#: "large-scale" path): build + lookup cost at 2k–10k nodes per substrate.
LARGE_SIZES: tuple[int, ...] = (2048, 4096, 10000)

#: Default per-size wall-clock budget (seconds).  Pastry's O(N log N)
#: build dominates past ~4k nodes; a cell exceeding the budget is
#: *recorded* as over budget in the result, never failed — the data is
#: still valid, the flag is the "this size is getting expensive" signal.
DEFAULT_CELL_BUDGET_S = 120.0


@dataclass
class DHTScalingResult:
    sizes: tuple[int, ...]
    can_dims: int
    mean_hops: dict[str, list[float]] = field(default_factory=dict)
    #: Wall-clock per size cell (all four substrates), parallel to sizes.
    wall_s: list[float] = field(default_factory=list)
    #: Budget-guard verdict per size cell, parallel to sizes.
    over_budget: list[bool] = field(default_factory=list)
    cell_budget_s: float = DEFAULT_CELL_BUDGET_S

    def report(self) -> str:
        rows = []
        for i, n in enumerate(self.sizes):
            row = [
                n,
                round(self.mean_hops["chord"][i], 2),
                round(self.mean_hops["pastry"][i], 2),
                round(self.mean_hops["kademlia"][i], 2),
                round(self.mean_hops["can"][i], 2),
                round(float(np.log2(n)), 2),
                round(float(self.can_dims / 4 * n ** (1 / self.can_dims)), 2),
            ]
            if self.wall_s:
                row.append(round(self.wall_s[i], 1))
                row.append("OVER" if self.over_budget[i] else "ok")
            rows.append(row)
        headers = ["N", "chord hops", "pastry hops", "kademlia queries",
                   "can hops", "log2(N)", "(d/4)N^(1/d)"]
        if self.wall_s:
            headers += ["wall s", "budget"]
        return format_table(
            headers, rows,
            title=f"DHT lookup cost scaling (CAN d={self.can_dims})",
        )

    def shape_checks(self) -> dict[str, bool]:
        sizes = np.asarray(self.sizes, dtype=float)

        def growth_ratio(name: str) -> float:
            """Observed cost growth across the size range."""
            series = self.mean_hops[name]
            return series[-1] / max(series[0], 1e-9)

        n_ratio = sizes[-1] / sizes[0]
        return {
            # Logarithmic-flavoured growth: far slower than linear.
            "chord_sublinear": growth_ratio("chord") < 0.5 * n_ratio,
            "pastry_sublinear": growth_ratio("pastry") < 0.5 * n_ratio,
            "kademlia_sublinear": growth_ratio("kademlia") < 0.5 * n_ratio,
            "can_sublinear": growth_ratio("can") < 0.5 * n_ratio,
            # Chord lookups track (1/2) log2 N within a small factor.
            "chord_log_tracking": all(
                hops <= 2.0 * np.log2(n) + 2.0
                for hops, n in zip(self.mean_hops["chord"], sizes)
            ),
            # Pastry resolves b=4 bits per hop: ~ log16 N + the leaf hop.
            "pastry_log16_tracking": all(
                hops <= 2.0 * np.log2(n) / 4.0 + 3.0
                for hops, n in zip(self.mean_hops["pastry"], sizes)
            ),
        }


#: Shard axis of one size cell: each substrate draws from its own
#: (seed, name)-keyed streams, so the four runs are independent.
SUBSTRATES: tuple[str, ...] = ("chord", "pastry", "kademlia", "can")


def _run_substrate_cell(substrate: str, n: int, lookups: int,
                        can_dims: int, seed: int) -> dict[str, float]:
    """Lookup-cost mean for *one* substrate at one population size.

    One shard of a size cell.  A fresh ``RngStreams(seed)`` yields
    streams bit-identical to the historical shared instance: stream
    derivation is (seed, name) keyed and every name here embeds both the
    substrate and ``n``, so shards are independent of each other and of
    which process runs them.
    """
    t0 = perf_counter()
    streams = RngStreams(seed)
    ids = sorted({guid_for(f"dht-node-{n}-{i}") for i in range(n)})
    out: dict[str, float] = {}
    if substrate == "chord":
        chord = ChordOverlay(streams[f"chord-{n}"])
        chord.build(ids)
        out["chord"] = _mean_hops(chord, n, lookups, "c")
    elif substrate == "pastry":
        pastry = PastryOverlay(streams[f"pastry-{n}"])
        pastry.build(ids)
        out["pastry"] = _mean_hops(pastry, n, lookups, "p")
    elif substrate == "kademlia":
        kad = KademliaOverlay(streams[f"kad-{n}"])
        kad.build(ids)
        out["kademlia"] = _mean_hops(kad, n, lookups, "k")
    elif substrate == "can":
        can = CANOverlay(streams[f"can-{n}"], dims=can_dims)
        coord_rng = streams[f"can-coords-{n}"]
        for nid in ids:
            can.join(CANNode(nid, tuple(coord_rng.uniform(0, 1, can_dims))))
        hops = []
        for _ in range(lookups):
            res = can.route(tuple(coord_rng.uniform(0, 1, can_dims)))
            if res.success:
                hops.append(res.hops)
        out["can"] = float(np.mean(hops))
    else:
        raise ValueError(f"unknown substrate {substrate!r}")
    out["wall_s"] = perf_counter() - t0
    return out


def _reduce_size_cell(parts: list[dict[str, float]]) -> dict[str, float]:
    """Reassemble substrate shards into one size-cell result.

    Hop means pass through untouched; ``wall_s`` sums (the cell's cost
    is the work done for it, wherever it ran — the budget guard keeps
    its meaning under sharding)."""
    out: dict[str, float] = {}
    wall = 0.0
    for p in parts:
        for k, v in p.items():
            if k == "wall_s":
                wall += v
            else:
                out[k] = v
    out["wall_s"] = wall
    return out


def _run_size_cell(n: int, lookups: int, can_dims: int,
                   seed: int) -> dict[str, float]:
    """Lookup-cost means for every substrate at one population size.

    The unsharded form — all four substrates in one process — kept as
    the witness that sharding is a pure transport change: it runs the
    same shards sequentially through the same reducer."""
    return _reduce_size_cell(
        [_run_substrate_cell(s, n, lookups, can_dims, seed)
         for s in SUBSTRATES])


def _substrate_cost(substrate: str, n: int) -> float:
    """Relative cost hint per shard: every substrate pays ~N log N for
    the build, Pastry with a far heavier constant (its routing tables
    dominate past ~4k nodes) and CAN with its join-split overhead."""
    base = float(n) * max(float(np.log2(n)), 1.0)
    factor = {"chord": 1.0, "pastry": 3.0, "kademlia": 1.5, "can": 2.0}
    return base * factor[substrate]


def run_dht_scaling(sizes: tuple[int, ...] = (64, 128, 256, 512, 1024),
                    lookups: int = 300, can_dims: int = 4,
                    seed: int = 1,
                    include_large: bool = False,
                    cell_budget_s: float = DEFAULT_CELL_BUDGET_S,
                    jobs: int | None = None,
                    shard_cells: bool = True) -> DHTScalingResult:
    """Lookup-cost scaling across all four substrates.

    ``include_large`` appends :data:`LARGE_SIZES` (2048/4096/10000) to
    ``sizes``.  Each size cell's wall-clock is checked against
    ``cell_budget_s``: exceeding it is recorded in the result's
    ``over_budget`` flags (and the report column), not raised.

    ``shard_cells`` (default on) declares each size cell as four
    per-substrate shards, so ``--jobs`` can split even a single heavy
    size (a 10k-node Pastry build no longer serializes the whole cell);
    results are identical either way.
    """
    if include_large:
        sizes = tuple(sizes) + tuple(n for n in LARGE_SIZES
                                     if n not in sizes)
    result = DHTScalingResult(sizes=sizes, can_dims=can_dims,
                              cell_budget_s=cell_budget_s)
    if shard_cells:
        cells_spec = [
            sharded(_run_substrate_cell,
                    [call(s, n, lookups, can_dims, seed).with_cost(
                        cost=_substrate_cost(s, n), kind=f"dht:{s}:n{n}")
                     for s in SUBSTRATES],
                    _reduce_size_cell, kind=f"dht:size:n{n}")
            for n in sizes
        ]
    else:
        cells_spec = [call(n, lookups, can_dims, seed).with_cost(
                          cost=sum(_substrate_cost(s, n)
                                   for s in SUBSTRATES),
                          kind=f"dht:size:n{n}")
                      for n in sizes]
    cells = map_cells(_run_size_cell, cells_spec, jobs=jobs)
    for name in ("chord", "pastry", "kademlia", "can"):
        result.mean_hops[name] = [cell[name] for cell in cells]
    result.wall_s = [cell["wall_s"] for cell in cells]
    result.over_budget = [cell["wall_s"] > cell_budget_s for cell in cells]
    return result


def _mean_hops(overlay, n: int, lookups: int, tag: str) -> float:
    hops = []
    for i in range(lookups):
        res = overlay.route(guid_for(f"lookup-{tag}-{n}-{i}"))
        if res.success:
            hops.append(res.hops)
    return float(np.mean(hops))
