"""Large-scale validation: the scale-out kernel at 10k–100k nodes.

The paper's premise is that P2P services let a desktop grid grow far past
what a centralized server tracks comfortably; its own evaluation stops at
1000 nodes.  This experiment exercises the kernel mechanisms built for
the next two orders of magnitude — the hierarchical timer wheel, batched
same-timestamp dispatch, and the columnar node registry — at those sizes:

* **workload cells** — an N-node grid (RN-Tree matchmaking, heartbeats
  on) drains a 2N-job stream at constant offered load (arrival rate
  scales with N, per-node utilization matches the paper's setup);
* **churn step cell** — a Chord ring of ``churn_n`` nodes (100k by
  default; Chord is the only substrate that builds at that size in
  seconds) absorbs crash/rejoin cycles with oracle repair and serves
  lookups throughout.

Every cell runs under a wall-clock budget.  Exceeding it sets
``over_budget=True`` on the cell — recorded in the result and the report,
never raised — so large cells on slow hosts degrade loudly, not fatally.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field, replace
from time import perf_counter

import numpy as np

from repro.dht.chord import ChordOverlay
from repro.experiments.runner import run_workload
from repro.metrics.report import format_table
from repro.util.ids import guid_for
from repro.util.rng import RngStreams
from repro.workloads.spec import WorkloadConfig

#: Default per-cell wall-clock budget (seconds).  The 10k-node workload
#: cell is expected to finish well inside this on a developer machine.
DEFAULT_CELL_BUDGET_S = 300.0


@dataclass
class LargeScaleCell:
    """One timed cell: its size, wall-clock, budget, and metrics."""

    name: str
    n: int
    wall_s: float
    budget_s: float
    metrics: dict[str, float] = field(default_factory=dict)

    @property
    def over_budget(self) -> bool:
        return self.wall_s > self.budget_s


@dataclass
class LargeScaleResult:
    cells: list[LargeScaleCell] = field(default_factory=list)

    @property
    def any_over_budget(self) -> bool:
        return any(c.over_budget for c in self.cells)

    def report(self) -> str:
        rows = []
        for c in self.cells:
            rows.append([
                c.name,
                c.n,
                round(c.wall_s, 1),
                "OVER" if c.over_budget else "ok",
                round(c.metrics.get("events_per_s",
                                    c.metrics.get("ops_per_s", 0.0))),
                round(c.metrics.get("wait_mean",
                                    c.metrics.get("mean_hops", 0.0)), 2),
            ])
        return format_table(
            ["cell", "N", "wall s", "budget", "events|ops /s",
             "wait|hops"],
            rows,
            title="Large-scale kernel validation",
        )

    def shape_checks(self) -> dict[str, bool]:
        workload = [c for c in self.cells if c.name == "workload"]
        churn = [c for c in self.cells if c.name == "dht-churn"]
        return {
            "all_cells_within_budget": not self.any_over_budget,
            "workloads_drained": all(
                c.metrics.get("finished") == 1.0 for c in workload),
            "churn_lookups_resolved": all(
                c.metrics.get("lookups", 0) > 0
                and c.metrics.get("mean_hops", 0) > 0 for c in churn),
        }


def run_workload_cell(n: int, seed: int = 1,
                      budget_s: float = DEFAULT_CELL_BUDGET_S
                      ) -> LargeScaleCell:
    """Drain a 2N-job stream through an N-node grid, heartbeats on.

    Per-node offered load matches the paper's setup (arrival rate scales
    with N), so cells at different N are comparable; the job count is 2
    per node to bound wall-clock at 10k+.
    """
    workload = replace(
        WorkloadConfig(),
        n_nodes=n,
        n_jobs=2 * n,
        mean_interarrival=100.0 / n,
    )
    t0 = perf_counter()
    out = run_workload(workload, "rn-tree", seed=seed,
                       grid_overrides={"heartbeats_enabled": True})
    wall = perf_counter() - t0
    return LargeScaleCell(
        name="workload",
        n=n,
        wall_s=wall,
        budget_s=budget_s,
        metrics={
            "sim_events": float(out.events),
            "events_per_s": out.events / wall if wall > 0 else 0.0,
            "jobs": float(workload.n_jobs),
            "wait_mean": out.summary["wait_mean"],
            "completed": out.summary["completed"],
            "finished": float(out.finished),
        },
    )


def run_churn_cell(n: int = 100_000, steps: int = 50, lookups: int = 200,
                   seed: int = 1,
                   budget_s: float = DEFAULT_CELL_BUDGET_S
                   ) -> LargeScaleCell:
    """Build an n-node Chord ring, apply crash/rejoin churn, keep looking up.

    Each step crashes one random live node (with oracle repair of the
    affected pointers) and rejoins a previously crashed one, then issues
    ``lookups // steps`` routed lookups — the overlay must keep resolving
    correctly while membership churns at 100k scale.
    """
    streams = RngStreams(seed)
    ids = sorted({guid_for(f"ls-churn-{n}-{i}") for i in range(n)})
    chord = ChordOverlay(streams[f"ls-chord-{n}"])
    t0 = perf_counter()
    chord.build(ids)
    build_s = perf_counter() - t0

    rng = streams[f"ls-churn-victims-{n}"]
    per_step = max(1, lookups // steps)
    hops: list[int] = []
    crashed: list[int] = []
    t1 = perf_counter()
    for step in range(steps):
        victim = ids[int(rng.integers(0, len(ids)))]
        if chord.nodes[victim].alive:
            chord.crash_repair(victim)  # crash + incremental oracle splice
            crashed.append(victim)
        if len(crashed) > 1 and step % 2 == 1:
            back = crashed.pop(0)
            chord.recover(back, oracle=True)
        for i in range(per_step):
            res = chord.route(guid_for(f"ls-lookup-{n}-{step}-{i}"))
            if res.success:
                hops.append(res.hops)
    churn_s = perf_counter() - t1
    wall = build_s + churn_s
    ops = steps + len(hops)
    return LargeScaleCell(
        name="dht-churn",
        n=n,
        wall_s=wall,
        budget_s=budget_s,
        metrics={
            "build_s": build_s,
            "churn_s": churn_s,
            "churn_steps": float(steps),
            "lookups": float(len(hops)),
            "mean_hops": float(np.mean(hops)) if hops else 0.0,
            "ops_per_s": ops / churn_s if churn_s > 0 else 0.0,
        },
    )


def run_large_scale(workload_sizes: tuple[int, ...] = (2000, 10_000),
                    churn_n: int = 100_000, churn_steps: int = 50,
                    seed: int = 1,
                    budget_s: float = DEFAULT_CELL_BUDGET_S,
                    jobs: int | None = None) -> LargeScaleResult:
    """The full large-scale suite: workload cells at each size plus the
    100k-node churn step.  Cells run serially on purpose — each one's
    wall-clock is a measurement, and concurrent cells would distort it
    (``jobs`` is accepted for CLI-registry compatibility and ignored,
    with a warning so ``--jobs N`` is never a silent no-op).
    """
    if jobs is not None:
        print("warning: 'large-scale' runs its cells serially by design "
              f"(each wall-clock is a measurement); ignoring jobs={jobs}",
              file=sys.stderr)
    result = LargeScaleResult()
    for n in workload_sizes:
        result.cells.append(run_workload_cell(n, seed=seed,
                                              budget_s=budget_s))
    result.cells.append(run_churn_cell(churn_n, steps=churn_steps,
                                       seed=seed, budget_s=budget_s))
    return result
