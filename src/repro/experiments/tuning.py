"""Protocol-tuning ablations for the grid layer's soft-state machinery.

The paper fixes its protocol constants implicitly ("periodically sends
heartbeat messages", "a time period determined by the computational
complexity of the job"); these sweeps quantify the trade-offs behind
those choices:

* **Heartbeat interval** — failure-detection latency vs heartbeat
  traffic.  Recovery cannot begin before ``interval * miss_limit``
  seconds of silence, so sparse heartbeats stretch turnaround under
  churn; dense heartbeats multiply per-job messaging.
* **RN-Tree random-walk length** (§3.1 "limited random walk") — the walk
  decorrelates search start points; with uniformly hashed job GUIDs the
  *owner* mapping is already uniform, so the walk mostly trades extra
  hops for a small dispersion benefit — measured here honestly.
* **Network latency sensitivity** — matchmaking consumes overlay hops,
  so a slower WAN stretches the pre-queue pipeline; the claim that
  matchmaking cost is negligible presumes queueing dominates, which this
  sweep verifies (wait times barely move while per-job protocol latency
  scales with the RTT).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.runner import build_population, drive
from repro.grid.system import DesktopGrid, GridConfig
from repro.match import make_matchmaker
from repro.metrics.report import format_table
from repro.sim.failure import CrashRecoveryProcess
from repro.workloads.spec import FIGURE2_SCENARIOS, WorkloadConfig


# ----------------------------------------------------------------------
# heartbeat interval sweep
# ----------------------------------------------------------------------

@dataclass
class HeartbeatResult:
    rows: list[list] = field(default_factory=list)
    by_interval: dict[float, dict[str, float]] = field(default_factory=dict)

    def report(self) -> str:
        return format_table(
            ["hb interval (s)", "protocol msgs/job", "completed %",
             "turnaround mean (s)", "run-node recoveries"],
            self.rows,
            title="Heartbeat cadence: detection latency vs soft-state traffic",
        )

    def shape_checks(self) -> dict[str, bool]:
        intervals = sorted(self.by_interval)
        lo, hi = self.by_interval[intervals[0]], self.by_interval[intervals[-1]]
        return {
            "dense_heartbeats_cost_messages":
                lo["msgs_per_job"] > 2.0 * hi["msgs_per_job"],
            "sparse_heartbeats_slow_recovery":
                hi["turnaround_mean"] > lo["turnaround_mean"],
            "all_settings_complete":
                all(s["completed_frac"] > 0.95
                    for s in self.by_interval.values()),
        }


def run_heartbeat_sweep(intervals: tuple[float, ...] = (2.0, 5.0, 10.0, 20.0),
                        n_nodes: int = 100, n_jobs: int = 300,
                        seed: int = 1, max_time: float = 40000.0
                        ) -> HeartbeatResult:
    result = HeartbeatResult()
    for interval in intervals:
        workload = WorkloadConfig(
            n_nodes=n_nodes, n_jobs=n_jobs, node_mode="mixed",
            job_mode="mixed", constraint_prob=0.4, mean_work=60.0,
            mean_interarrival=60.0 / (0.4 * n_nodes),
        )
        nodes, stream = build_population(workload, seed)
        cfg = GridConfig(seed=seed, heartbeats_enabled=True,
                         heartbeat_interval=interval,
                         relay_status_to_client=True,
                         client_resubmit_enabled=True,
                         client_timeout=max(240.0, 10 * interval),
                         client_max_attempts=8,
                         match_retries=10,
                         match_retry_backoff=interval)
        grid = DesktopGrid(cfg, make_matchmaker("rn-tree"), nodes)
        CrashRecoveryProcess(grid.sim, grid.streams["churn"],
                             [n.node_id for n in grid.node_list],
                             crash_fn=grid.crash_node,
                             recover_fn=grid.recover_node,
                             mean_uptime=500.0, mean_downtime=120.0)
        drive(grid, workload, stream, max_time=max_time)
        s = grid.metrics.summary()
        protocol_msgs = sum(
            grid.network.stats.by_kind.get(kind, 0)
            for kind in ("heartbeat", "hb-ack", "status"))
        summary = {
            "msgs_per_job": protocol_msgs / max(s["completed"], 1.0),
            "completed_frac": s["completed"] / max(len(grid.jobs), 1),
            "turnaround_mean": float(grid.metrics.turnarounds().mean())
            if s["completed"] else float("nan"),
            "recoveries": s["recoveries_run_node"],
        }
        result.by_interval[interval] = summary
        result.rows.append([
            interval,
            round(summary["msgs_per_job"], 1),
            round(100 * summary["completed_frac"], 1),
            round(summary["turnaround_mean"], 1),
            round(summary["recoveries"], 0),
        ])
    return result


# ----------------------------------------------------------------------
# RN-Tree random-walk length sweep
# ----------------------------------------------------------------------

@dataclass
class WalkLengthResult:
    rows: list[list] = field(default_factory=list)
    by_len: dict[int, dict[str, float]] = field(default_factory=dict)

    def report(self) -> str:
        return format_table(
            ["walk length", "wait mean (s)", "wait stdev (s)", "match cost"],
            self.rows,
            title="RN-Tree limited random walk: length vs balance/cost",
        )

    def shape_checks(self) -> dict[str, bool]:
        lens = sorted(self.by_len)
        lo, hi = self.by_len[lens[0]], self.by_len[lens[-1]]
        return {
            "longer_walk_costs_hops":
                hi["match_cost_mean"] > lo["match_cost_mean"],
            # Uniform GUID hashing already spreads owners, so the walk must
            # not *hurt* balance materially either way.
            "walk_does_not_destroy_balance":
                hi["wait_mean"] < 2.0 * lo["wait_mean"] + 10.0
                and lo["wait_mean"] < 2.0 * hi["wait_mean"] + 10.0,
        }


def run_walk_length_sweep(lengths: tuple[int, ...] = (0, 1, 3, 6),
                          scale: float = 0.2, seed: int = 1,
                          max_time: float = 1e6) -> WalkLengthResult:
    from repro.experiments.runner import run_workload

    workload = FIGURE2_SCENARIOS["mixed-light"].scaled(scale)
    result = WalkLengthResult()
    for length in lengths:
        s = run_workload(workload, "rn-tree", seed=seed,
                         mm_kwargs={"random_walk_len": length},
                         max_time=max_time).summary
        result.by_len[length] = s
        result.rows.append([length, round(s["wait_mean"], 2),
                            round(s["wait_std"], 2),
                            round(s["match_cost_mean"], 2)])
    return result


# ----------------------------------------------------------------------
# network-latency sensitivity
# ----------------------------------------------------------------------

@dataclass
class LatencyResult:
    rows: list[list] = field(default_factory=list)
    by_latency: dict[float, dict[str, float]] = field(default_factory=dict)

    def report(self) -> str:
        return format_table(
            ["mean hop latency (ms)", "wait mean (s)", "wait stdev (s)",
             "match cost (msgs)"],
            self.rows,
            title="WAN latency sensitivity: queueing dominates matchmaking "
                  "delay",
        )

    def shape_checks(self) -> dict[str, bool]:
        lats = sorted(self.by_latency)
        lo, hi = self.by_latency[lats[0]], self.by_latency[lats[-1]]
        # 20x slower network must not move wait times by even 2x: queueing,
        # not matchmaking, dominates — the premise behind accepting DHT
        # indirection at all.
        return {
            "queueing_dominates_latency":
                hi["wait_mean"] < 2.0 * lo["wait_mean"] + 10.0,
        }


def run_latency_sensitivity(latencies_ms: tuple[float, ...] = (10.0, 50.0, 200.0),
                            scale: float = 0.2, seed: int = 1,
                            max_time: float = 1e6) -> LatencyResult:
    from repro.experiments.runner import run_workload

    workload = FIGURE2_SCENARIOS["clustered-light"].scaled(scale)
    result = LatencyResult()
    for ms in latencies_ms:
        cfg = GridConfig(seed=seed, mean_latency=ms / 1000.0)
        s = run_workload(workload, "rn-tree", seed=seed, grid_cfg=cfg,
                         max_time=max_time).summary
        result.by_latency[ms] = s
        result.rows.append([ms, round(s["wait_mean"], 2),
                            round(s["wait_std"], 2),
                            round(s["match_cost_mean"], 2)])
    return result
