"""Message-level maintenance study (§3.3: the simulator investigates
"creating and maintaining the network and performing lookups").

Sweeps Chord's stabilization interval under continuous churn, with every
join, stabilization round, finger fix, and lookup as real RPC traffic and
*no oracle repair anywhere*.  The trade-off the paper's design banks on:

* shorter intervals cost proportionally more maintenance messages;
* longer intervals let routing state go stale, so lookups start timing
  out into dead peers and (eventually) failing or misrouting.

A correctly built DHT substrate should show high lookup success at
moderate maintenance cost — the premise behind "highly robust, scalable,
and efficient" (§2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dht.chord.protocol import ChordProtocolNetwork
from repro.experiments.parallel import call, map_cells
from repro.metrics.report import format_table
from repro.sim.failure import CrashRecoveryProcess
from repro.sim.kernel import Simulator
from repro.sim.network import LatencyModel, Network
from repro.sim.process import PeriodicTask
from repro.util.ids import guid_for
from repro.util.rng import RngStreams


@dataclass(frozen=True)
class ProtocolConfig:
    n_nodes: int = 48
    intervals: tuple[float, ...] = (2.0, 5.0, 10.0, 20.0)
    mean_uptime: float = 300.0
    mean_downtime: float = 60.0
    warmup: float = 120.0          # churn-free convergence period
    measure: float = 600.0         # churning measurement period
    lookup_rate: float = 2.0       # lookups per second (whole network)
    seed: int = 1


@dataclass
class ProtocolResult:
    config: ProtocolConfig
    rows: list[list] = field(default_factory=list)
    by_interval: dict[float, dict[str, float]] = field(default_factory=dict)

    def report(self) -> str:
        return format_table(
            ["stabilize interval (s)", "maint msgs/node/min",
             "lookup success %", "mean queries/lookup", "ring ok"],
            self.rows,
            title="Message-level Chord under churn: maintenance traffic vs "
                  "lookup reliability",
        )

    def shape_checks(self) -> dict[str, bool]:
        intervals = sorted(self.by_interval)
        lo, hi = self.by_interval[intervals[0]], self.by_interval[intervals[-1]]
        return {
            # Maintenance traffic scales down with the interval ...
            "traffic_scales_with_interval":
                lo["msgs_per_node_min"] > 2.0 * hi["msgs_per_node_min"],
            # ... and the fast-repair setting keeps lookups reliable under
            # continuous churn with no oracle anywhere.
            "fast_repair_reliable": lo["success_rate"] >= 0.9,
            "fast_repair_ring_converges": lo["ring_ok"] == 1.0,
            # Staleness costs reliability: the slowest setting is no more
            # reliable than the fastest.
            "staleness_hurts": hi["success_rate"] <= lo["success_rate"] + 1e-9,
        }


def _run_one(cc: ProtocolConfig, interval: float) -> dict[str, float]:
    streams = RngStreams(cc.seed)
    sim = Simulator()
    network = Network(sim, streams["network"],
                      LatencyModel(mean=0.02, jitter=0.2))
    chord = ChordProtocolNetwork(sim, network, streams["chord-protocol"],
                                 stabilize_interval=interval)
    boot = guid_for(f"proto-boot-{interval}")
    chord.bootstrap(boot)
    node_ids = [boot]
    for i in range(cc.n_nodes - 1):
        nid = guid_for(f"proto-{interval}-{i}")
        node_ids.append(nid)
        sim.schedule(1.0 + i * 0.25, chord.join, nid, boot)
    sim.run(until=cc.warmup)

    # Continuous churn on everything except the bootstrap contact.
    def random_live_contact() -> int | None:
        live = chord.live_ids()
        if not live:
            return None
        return live[int(churn_rng.integers(0, len(live)))]

    def recover(nid: int) -> None:
        contact = random_live_contact()
        if contact is not None:
            chord.recover(nid, contact, contacts=random_live_contact)

    churn_rng = streams["churn"]
    churn = CrashRecoveryProcess(sim, churn_rng, node_ids[1:],
                                 crash_fn=chord.crash, recover_fn=recover,
                                 mean_uptime=cc.mean_uptime,
                                 mean_downtime=cc.mean_downtime)

    # Background lookup workload from random live nodes.
    lookup_rng = streams["lookups"]
    correct = [0, 0]  # [correct, finished]

    def issue_lookup() -> None:
        live = chord.live_ids()
        if not live:
            return
        start = live[int(lookup_rng.integers(0, len(live)))]
        key = int(lookup_rng.integers(0, 1 << 63)) << 1

        def done(owner, queries) -> None:
            correct[1] += 1
            if owner is not None and owner == chord.oracle_owner(key):
                correct[0] += 1

        chord.lookup(key, start, done)

    PeriodicTask(sim, 1.0 / cc.lookup_rate, issue_lookup,
                 rng=streams["lookup-timer"], jitter=0.2)

    sent_before = network.stats.sent
    start_time = sim.now
    sim.run(until=cc.warmup + cc.measure)
    minutes = (sim.now - start_time) / 60.0
    maint = (network.stats.sent - sent_before) / cc.n_nodes / minutes
    success_rate = correct[0] / max(correct[1], 1)

    # Convergence check: stop churn and let stabilization quiesce — a
    # correct protocol must always return to a consistent ring (transient
    # mid-churn inconsistency is expected and *not* a failure).
    churn.stop()
    sim.run(until=sim.now + max(60.0, 12.0 * interval))

    return {
        "msgs_per_node_min": maint,
        "success_rate": success_rate,
        "mean_queries": chord.lookup_stats.mean_queries,
        "ring_ok": 1.0 if chord.ring_consistent() else 0.0,
    }


def run_protocol_experiment(config: ProtocolConfig | None = None,
                            jobs: int | None = None) -> ProtocolResult:
    cc = config or ProtocolConfig()
    result = ProtocolResult(config=cc)
    summaries = map_cells(
        _run_one,
        # Shorter maintenance intervals mean proportionally more protocol
        # traffic to simulate — 1/interval is the size driver here.
        [call(cc, interval).with_cost(cost=1.0 / max(interval, 1e-9),
                                      kind=f"protocol:i{interval:g}")
         for interval in cc.intervals],
        jobs=jobs)
    for interval, summary in zip(cc.intervals, summaries):
        result.by_interval[interval] = summary
        result.rows.append([
            interval,
            round(summary["msgs_per_node_min"], 1),
            round(100 * summary["success_rate"], 1),
            round(summary["mean_queries"], 2),
            "yes" if summary["ring_ok"] else "NO",
        ])
    return result
