"""Matchmaking-pipeline ablation: selection policy × probe mode under churn.

The two-phase pipeline (see :mod:`repro.match.select`) makes two choices
orthogonal and therefore sweepable:

* **probe mode** — ``oracle`` (zero-time load reads, the historical
  simulator shortcut) vs ``rpc`` (real request/reply probes with
  timeouts, plus acknowledged dispatch);
* **selection policy** — ``least-loaded`` (the paper's rule), ``random``
  (no probing at all), ``power-of-d`` (probe a constant-size sample).

This experiment runs every cell over the same churning worker population
and reports matchmaking cost and wait time alongside the robustness
story: under ``rpc`` mode, a run node that dies between being probed and
receiving the job surfaces as a *dispatch ack timeout* and the owner
falls back to the next-ranked candidate within one rpc timeout — instead
of waiting for the heartbeat monitor sweep (``heartbeat_interval ×
heartbeat_miss_limit`` virtual seconds) to notice the silence.  The
"mean recovery latency" column quantifies that gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.parallel import call, map_cells
from repro.experiments.runner import build_population, drive
from repro.grid.job import JobState
from repro.grid.system import DesktopGrid, GridConfig
from repro.match import make_matchmaker
from repro.metrics.report import format_table
from repro.sim.failure import CrashRecoveryProcess
from repro.workloads.spec import WorkloadConfig

#: The sweep axes.
PROBE_MODES = ("oracle", "rpc")
SELECTION_POLICIES = ("least-loaded", "power-of-d", "random")


@dataclass(frozen=True)
class MatchPipeConfig:
    """Ablation parameters (defaults keep runtime modest)."""

    matchmaker: str = "rn-tree"
    n_nodes: int = 100
    n_jobs: int = 300
    mean_work: float = 60.0
    target_utilization: float = 0.5
    mean_uptime: float = 250.0    # aggressive churn: dispatch races happen
    mean_downtime: float = 60.0
    heartbeat_interval: float = 5.0
    heartbeat_miss_limit: int = 3
    probe_timeout: float = 1.0
    max_time: float = 60000.0

    def workload(self) -> WorkloadConfig:
        interarrival = self.mean_work / (self.target_utilization * self.n_nodes)
        return WorkloadConfig(
            n_nodes=self.n_nodes, n_jobs=self.n_jobs,
            node_mode="mixed", job_mode="mixed", constraint_prob=0.4,
            mean_work=self.mean_work, mean_interarrival=interarrival,
        )

    @property
    def sweep_timeout(self) -> float:
        """The monitor sweep's detection horizon the ack path undercuts."""
        return self.heartbeat_interval * self.heartbeat_miss_limit


@dataclass
class MatchPipeResult:
    config: MatchPipeConfig
    rows: list[list] = field(default_factory=list)
    #: ``(probe_mode, policy) -> aggregated per-cell summary``.
    by_cell: dict[tuple[str, str], dict[str, float]] = field(
        default_factory=dict)

    def report(self) -> str:
        cc = self.config
        return format_table(
            ["probe mode", "policy", "wait mean (s)", "match cost",
             "probes/job", "completed %", "run-node rec", "dispatch rec",
             "recovery latency (s)"],
            self.rows,
            title=f"Matchmaking pipeline ablation ({cc.matchmaker}, "
                  "churned workers; monitor sweep detects in "
                  f"~{cc.sweep_timeout:.0f}s)",
        )

    def shape_checks(self) -> dict[str, bool]:
        ll_oracle = self.by_cell[("oracle", "least-loaded")]
        rnd_oracle = self.by_cell[("oracle", "random")]
        ll_rpc = self.by_cell[("rpc", "least-loaded")]
        rnd_rpc = self.by_cell[("rpc", "random")]
        pod_rpc = self.by_cell[("rpc", "power-of-d")]
        # The probe step already weeds out dead candidates, so the
        # probe→assign race window is narrow; pool the rpc cells to judge
        # the ack-timeout path (any single cell can see zero races).
        rpc_cells = [cell for (mode, _), cell in self.by_cell.items()
                     if mode == "rpc"]
        raced = [cell for cell in rpc_cells
                 if cell["recoveries_dispatch"] > 0]
        return {
            # Load-aware selection is the point of matchmaking: probing
            # beats blind placement in both probe modes.
            "least_loaded_beats_random_oracle":
                ll_oracle["wait_mean"] < rnd_oracle["wait_mean"],
            "least_loaded_beats_random_rpc":
                ll_rpc["wait_mean"] < rnd_rpc["wait_mean"],
            # power-of-d probes less than least-loaded (constant vs all).
            "power_of_d_probes_fewer":
                pod_rpc["probes_mean"] < ll_rpc["probes_mean"],
            # Churn keeps every cell productive.
            "all_cells_complete": all(
                cell["completed_frac"] >= 0.9
                for cell in self.by_cell.values()),
            # The robustness claim: ack'd dispatch recovers from a run
            # node dying mid-dispatch in ~one rpc timeout — far inside
            # the monitor sweep's detection horizon.
            "dispatch_recoveries_observed": bool(raced),
            "dispatch_recovery_beats_sweep": all(
                cell["dispatch_latency_mean"]
                < 0.5 * self.config.sweep_timeout
                for cell in raced),
        }


def _grid_config(cc: MatchPipeConfig, probe_mode: str, policy: str,
                 seed: int) -> GridConfig:
    return GridConfig(
        seed=seed,
        heartbeats_enabled=True,
        heartbeat_interval=cc.heartbeat_interval,
        heartbeat_miss_limit=cc.heartbeat_miss_limit,
        relay_status_to_client=True,
        client_resubmit_enabled=True,
        client_check_interval=cc.heartbeat_interval * 4,
        client_timeout=240.0,
        client_max_attempts=8,
        match_retries=10,
        match_retry_backoff=cc.heartbeat_interval * 2,
        probe_mode=probe_mode,
        selection_policy=policy,
        probe_timeout=cc.probe_timeout,
        # Ack'd dispatch is the rpc pipeline's failure-detection payoff;
        # oracle mode keeps the historical fire-and-forget assign.
        dispatch_ack=(probe_mode == "rpc"),
    )


def _run_cell(cc: MatchPipeConfig, probe_mode: str, policy: str,
              seed: int) -> dict[str, float]:
    workload = cc.workload()
    nodes, stream = build_population(workload, seed)
    grid = DesktopGrid(_grid_config(cc, probe_mode, policy, seed),
                       make_matchmaker(cc.matchmaker), nodes)
    CrashRecoveryProcess(grid.sim, grid.streams["churn"],
                         [n.node_id for n in grid.node_list],
                         crash_fn=grid.crash_node,
                         recover_fn=grid.recover_node,
                         mean_uptime=cc.mean_uptime,
                         mean_downtime=cc.mean_downtime)
    drive(grid, workload, stream, max_time=cc.max_time)

    jobs = list(grid.jobs.values())
    completed = [j for j in jobs if j.state is JobState.COMPLETED]
    s = grid.metrics.summary()
    dispatch_lat = grid.metrics.recovery_latencies.get("dispatch", [])
    return {
        "wait_mean": s["wait_mean"],
        "match_cost_mean": s["match_cost_mean"],
        "probes_mean": s["probes_mean"],
        "completed_frac": len(completed) / max(len(jobs), 1),
        "recoveries_run_node": s["recoveries_run_node"],
        "recoveries_dispatch": s["recoveries_dispatch"],
        "dispatch_latency_mean": (float(np.mean(dispatch_lat))
                                  if dispatch_lat else 0.0),
    }


def run_matchpipe_ablation(config: MatchPipeConfig | None = None,
                           seeds: tuple[int, ...] = (1,),
                           jobs: int | None = None) -> MatchPipeResult:
    cc = config or MatchPipeConfig()
    result = MatchPipeResult(config=cc)
    groups = [(probe_mode, policy) for probe_mode in PROBE_MODES
              for policy in SELECTION_POLICIES]
    summaries = map_cells(
        _run_cell,
        [call(cc, probe_mode, policy, seed).with_cost(
            kind=f"matchpipe:{probe_mode}:{policy}")
         for probe_mode, policy in groups for seed in seeds],
        jobs=jobs)
    for i, (probe_mode, policy) in enumerate(groups):
        per_seed = summaries[i * len(seeds):(i + 1) * len(seeds)]
        agg = {k: float(np.mean([p[k] for p in per_seed]))
               for k in per_seed[0]}
        result.by_cell[(probe_mode, policy)] = agg
        result.rows.append([
            probe_mode,
            policy,
            round(agg["wait_mean"], 1),
            round(agg["match_cost_mean"], 2),
            round(agg["probes_mean"], 2),
            round(100 * agg["completed_frac"], 1),
            round(agg["recoveries_run_node"], 1),
            round(agg["recoveries_dispatch"], 1),
            round(agg["dispatch_latency_mean"], 2),
        ])
    return result
