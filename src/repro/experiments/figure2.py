"""Figure 2: job wait time for clustered and mixed workloads.

Four panels — (a) average / (b) stdev over clustered workloads, (c)
average / (d) stdev over mixed workloads — each with lightly- and
heavily-constrained job groups and one bar per matchmaker (RN-Tree, CAN,
Centralized).

Expected shape (§3.3): "for most scenarios, the CAN-based matchmaking
framework shows very competitive performance in terms of balancing loads,
even compared to the centralized scheme ... However, under some
conditions the CAN-based algorithm works very poorly due to serious load
imbalance, namely when jobs with few resource requirements are run on
nodes with heterogeneous (mixed) resource capabilities (i.e., the
lightly-constrained workloads in Figures 2(c) and 2(d))."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.parallel import map_cells
from repro.experiments.runner import (aggregate_outcomes, run_workload,
                                      workload_call)
from repro.grid.system import DEFAULT_MAX_TIME
from repro.metrics.report import format_barchart, format_table
from repro.workloads.spec import FIGURE2_SCENARIOS, WorkloadConfig

#: Matchmakers shown in the paper's Figure 2.
FIGURE2_MATCHMAKERS = ("rn-tree", "can", "centralized")

#: Scenario grouping per panel: panels (a)/(b) use clustered workloads,
#: (c)/(d) mixed; each panel has lightly- and heavily-constrained groups.
PANEL_SCENARIOS = {
    "clustered": ("clustered-light", "clustered-heavy"),
    "mixed": ("mixed-light", "mixed-heavy"),
}


@dataclass
class Figure2Result:
    """All four panels: ``values[scenario][matchmaker] = summary dict``."""

    scale: float
    seeds: tuple[int, ...]
    values: dict[str, dict[str, dict[str, float]]] = field(default_factory=dict)

    def panel(self, family: str, statistic: str) -> list[list]:
        """Rows for one panel: (constraint level, one column per matchmaker)."""
        rows = []
        for scenario in PANEL_SCENARIOS[family]:
            level = "lightly" if scenario.endswith("light") else "heavily"
            row = [level]
            for mm in FIGURE2_MATCHMAKERS:
                row.append(self.values[scenario][mm][statistic])
            rows.append(row)
        return rows

    PANEL_SPECS = (
        ("Figure 2(a): Average job wait time (s), clustered workloads",
         "clustered", "wait_mean"),
        ("Figure 2(b): STDEV of job wait time (s), clustered workloads",
         "clustered", "wait_std"),
        ("Figure 2(c): Average job wait time (s), mixed workloads",
         "mixed", "wait_mean"),
        ("Figure 2(d): STDEV of job wait time (s), mixed workloads",
         "mixed", "wait_std"),
    )

    def report(self, bars: bool = True) -> str:
        headers = ["constraints", *FIGURE2_MATCHMAKERS]
        parts = []
        truncated = [f"{scenario}/{mm}"
                     for scenario, by_mm in self.values.items()
                     for mm, summary in by_mm.items()
                     if summary.get("all_finished", 1.0) < 1.0]
        if truncated:
            parts.append(
                "*** WARNING: cells hit max_time before the workload "
                "drained (all_finished=0.0) — their wait times are "
                "truncated: " + ", ".join(truncated) + " ***")
        for label, family, stat in self.PANEL_SPECS:
            rows = self.panel(family, stat)
            parts.append(format_table(headers, rows, title=label))
            if bars:
                groups = [
                    (f"{level} constrained",
                     list(zip(FIGURE2_MATCHMAKERS, values)))
                    for level, *values in rows
                ]
                parts.append(format_barchart(f"[panel {label[7:11]} bars]",
                                             groups, unit=" s"))
        tails = self.tail_table()
        if tails:
            parts.append(tails)
        return "\n\n".join(parts)

    def tail_table(self) -> str:
        """Wait-time percentiles per cell — not in the paper's figure, but
        the tail is where the CAN pathology lives; the mean understates it."""
        headers = ["scenario", "matchmaker", "p50 (s)", "p95 (s)", "p99 (s)"]
        rows = []
        for scenario, by_mm in self.values.items():
            for mm, summary in by_mm.items():
                if "wait_p50" not in summary:
                    return ""
                rows.append([scenario, mm,
                             round(summary["wait_p50"], 1),
                             round(summary["wait_p95"], 1),
                             round(summary["wait_p99"], 1)])
        return format_table(headers, rows,
                            title="Wait-time tail percentiles (supplement)")

    def shape_checks(self) -> dict[str, bool]:
        """The qualitative claims the reproduction must reproduce.

        Checks are *relative* (who beats whom, by what factor) rather than
        absolute, because absolute wait times at the paper's near-critical
        offered load are extremely sensitive to the simulated substrate.
        Run with several seeds (``run_figure2(seeds=(1, 2, 3))``) — the
        paper's own figure is a single aggregate too, and per-seed
        dispersion at critical load is large.
        """
        v = self.values

        def wait(scenario: str, mm: str) -> float:
            return v[scenario][mm]["wait_mean"]

        # Degradation of CAN relative to RN-Tree per scenario.
        rel = {sc: wait(sc, "can") / max(wait(sc, "rn-tree"), 1e-9)
               for sc in FIGURE2_SCENARIOS}
        checks = {
            # Centralized is the target: best (or tied) everywhere.
            "centralized_best_everywhere": all(
                wait(sc, "centralized")
                <= min(wait(sc, "can"), wait(sc, "rn-tree")) + 1.0
                for sc in FIGURE2_SCENARIOS
            ),
            # The documented CAN pathology: lightly-constrained jobs on
            # mixed nodes — CAN is much worse than both alternatives.
            "can_pathology_mixed_light":
                wait("mixed-light", "can")
                > 2.0 * max(wait("mixed-light", "rn-tree"), 1.0)
                and wait("mixed-light", "can")
                > 3.0 * max(wait("mixed-light", "centralized"), 1.0),
            # ... and it is specific to that scenario: CAN's degradation
            # versus RN-Tree on mixed-light dwarfs every other scenario's.
            "can_pathology_is_scenario_specific": all(
                rel["mixed-light"] > 1.5 * rel[sc]
                for sc in FIGURE2_SCENARIOS if sc != "mixed-light"
            ),
            # Outside the pathology the two decentralized schemes are
            # competitive with each other (the paper's "very competitive
            # performance ... for most scenarios").
            "can_tracks_rntree_elsewhere": all(
                rel[sc] < 2.5
                for sc in FIGURE2_SCENARIOS if sc != "mixed-light"
            ),
        }
        return checks


def scaled_scenarios(scale: float) -> dict[str, WorkloadConfig]:
    return {name: cfg.scaled(scale) for name, cfg in FIGURE2_SCENARIOS.items()}


def run_figure2(scale: float = 0.25, seeds: tuple[int, ...] = (1,),
                matchmakers: tuple[str, ...] = FIGURE2_MATCHMAKERS,
                max_time: float = DEFAULT_MAX_TIME, telemetry=None,
                jobs: int | None = None,
                grid_overrides: dict | None = None) -> Figure2Result:
    """Run the full Figure 2 grid.  ``scale=1.0`` is paper scale (1000
    nodes / 5000 jobs); smaller scales keep per-node utilization constant
    (see :meth:`WorkloadConfig.scaled`).  ``telemetry`` attaches one
    observability stack across every cell of the grid; ``jobs`` fans the
    (scenario x matchmaker x seed) cells out over worker processes with
    per-cell results identical to the serial sweep.  ``grid_overrides``
    are GridConfig field overrides applied to every cell (e.g. run the
    whole figure under ``probe_mode="rpc"``)."""
    result = Figure2Result(scale=scale, seeds=seeds)
    scenarios = scaled_scenarios(scale)
    groups = [(scenario, mm) for scenario in scenarios for mm in matchmakers]
    outcomes = map_cells(
        run_workload,
        [workload_call(scenarios[scenario], mm, seed=s, max_time=max_time,
                       grid_overrides=grid_overrides)
         for scenario, mm in groups for s in seeds],
        jobs=jobs, telemetry=telemetry)
    for i, (scenario, mm) in enumerate(groups):
        cell = outcomes[i * len(seeds):(i + 1) * len(seeds)]
        result.values.setdefault(scenario, {})[mm] = aggregate_outcomes(cell)
    return result
