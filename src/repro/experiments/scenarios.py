"""Adversarial scenario sweep: scenario x mitigation cells.

The paper's sweeps exercise one benign regime (Poisson arrivals,
exponential runtimes, independent churn at worst).  This experiment
drives the full :mod:`repro.scenarios` catalog — flash crowds, diurnal
cycles, heavy-tailed runtimes, correlated rack failures, partition
storms, owner+run-node double failures — against the grid, once bare
and once with the three mitigation knobs on (speculative re-execution,
hot-owner replication, admission control), so each knob's effect is
attributable per regime.

Every (scenario, mitigation, seed) cell is an independent module-level
function over its own RNG streams, so the sweep fans out through
:func:`repro.experiments.parallel.map_cells` with bit-identical
serial/parallel results; each cell also returns a sha256 fingerprint of
every job's fate so the equality is checkable, not assumed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.experiments.parallel import call, map_cells
from repro.experiments.runner import build_population, drive
from repro.grid.job import JobState
from repro.grid.system import DesktopGrid, GridConfig
from repro.match import make_matchmaker
from repro.metrics.report import format_table
from repro.scenarios import get_scenario, scenario_names
from repro.workloads.spec import WorkloadConfig


@dataclass(frozen=True)
class ScenariosConfig:
    """Sweep parameters (defaults keep a full 8x2 sweep under a minute)."""

    n_nodes: int = 80
    n_jobs: int = 240
    mean_work: float = 60.0
    target_utilization: float = 0.5
    matchmaker: str = "rn-tree"
    max_time: float = 60_000.0

    def workload(self) -> WorkloadConfig:
        interarrival = self.mean_work / (self.target_utilization
                                         * self.n_nodes)
        return WorkloadConfig(
            n_nodes=self.n_nodes, n_jobs=self.n_jobs,
            node_mode="mixed", job_mode="mixed", constraint_prob=0.4,
            mean_work=self.mean_work, mean_interarrival=interarrival,
        )


#: Mitigation settings swept against every scenario.  "none" is the
#: control (all knobs at their bit-identical defaults); "mitigated"
#: turns all three on with thresholds tight enough to fire at this
#: experiment's scale.
MITIGATIONS: Mapping[str, Mapping[str, Any]] = {
    "none": {},
    "mitigated": {
        "speculative": True, "speculative_threshold": 4.0,
        "replicate": True, "replicate_threshold": 4,
        "admission": True, "admission_quota": 48,
    },
}


def _fates_fingerprint(grid: DesktopGrid) -> str:
    """sha256 over every job's terminal fate plus the metrics summary —
    the serial==parallel witness for one cell."""
    h = hashlib.sha256()
    for guid in sorted(grid.jobs):
        job = grid.jobs[guid]
        h.update(f"{guid}:{job.state.name}:{job.attempt}".encode())
    h.update(repr(sorted(grid.metrics.summary().items())).encode())
    h.update(repr(grid.sim.now).encode())
    return h.hexdigest()


def run_scenario_cell(cfg: ScenariosConfig, scenario_name: str,
                      mitigation_name: str, seed: int) -> dict[str, Any]:
    """One (scenario, mitigation, seed) cell — module-level, picklable."""
    scenario = get_scenario(scenario_name)
    workload = cfg.workload()
    nodes, stream = build_population(workload, seed)
    stream = scenario.shaped_stream(stream, seed)
    overrides: dict[str, Any] = dict(scenario.grid_overrides)
    overrides.update(MITIGATIONS[mitigation_name])
    grid_cfg = GridConfig(seed=seed, spec=workload.spec, **overrides)
    grid = DesktopGrid(grid_cfg, make_matchmaker(cfg.matchmaker), nodes)
    scenario.install_faults(grid)
    finished = drive(grid, workload, stream, max_time=cfg.max_time)

    jobs = list(grid.jobs.values())
    n = max(len(jobs), 1)
    s = grid.metrics.summary()
    rejected = sum(c.rejected for c in grid.clients.values())
    return {
        "scenario": scenario_name,
        "mitigation": mitigation_name,
        "seed": seed,
        "finished": float(finished),
        "completed_frac": sum(1 for j in jobs
                              if j.state is JobState.COMPLETED) / n,
        "failed": s["failed"],
        "lost": s["lost"],
        "rejected": float(rejected),
        "resubmissions": s["resubmissions"],
        "recoveries": (s["recoveries_run_node"] + s["recoveries_owner"]
                       + s["recoveries_dispatch"]),
        "speculated": float(grid.metrics.recoveries.get("speculative", 0)),
        "replicated": float(grid.metrics.recoveries.get("replica", 0)),
        "wait_mean": s["wait_mean"],
        "wait_p99": s["wait_p99"],
        "fingerprint": _fates_fingerprint(grid),
    }


@dataclass
class ScenariosResult:
    config: ScenariosConfig
    scenarios: tuple[str, ...]
    mitigations: tuple[str, ...]
    rows: list[list] = field(default_factory=list)
    #: (scenario, mitigation) -> seed-averaged cell summary.
    by_cell: dict[tuple[str, str], dict[str, float]] = field(
        default_factory=dict)
    #: (scenario, mitigation, seed) -> fate fingerprint (serial==parallel
    #: witness; compare across two sweeps of the same config).
    fingerprints: dict[tuple[str, str, int], str] = field(
        default_factory=dict)

    def report(self) -> str:
        return format_table(
            ["scenario", "mitigation", "completed %", "failed", "lost",
             "rejected", "resubmits", "recoveries", "spec", "repl",
             "wait mean (s)", "wait p99 (s)"],
            self.rows,
            title="Adversarial scenarios x mitigation knobs "
                  f"({self.config.matchmaker}, "
                  f"{self.config.n_nodes} nodes / {self.config.n_jobs} jobs)",
        )

    def shape_checks(self) -> dict[str, bool]:
        cells = self.by_cell

        def cell(s: str, m: str) -> dict[str, float]:
            return cells[(s, m)]

        fault_scenarios = [s for s in self.scenarios
                           if s in ("correlated_failure", "partition_storm",
                                    "double_failure")]
        checks = {
            # Every cell must have drained (or been truncated loudly).
            "all_cells_finished": all(c["finished"] == 1.0
                                      for c in cells.values()),
            # The benign control completes essentially everything bare.
            "baseline_completes": cell("baseline", "none")["completed_frac"]
            >= 0.98,
        }
        if fault_scenarios:
            # Fault scenarios must actually hurt: recovery machinery fires.
            checks["faults_exercise_recovery"] = all(
                cell(s, "none")["recoveries"]
                + cell(s, "none")["resubmissions"] > 0
                for s in fault_scenarios)
        if "mitigated" in self.mitigations:
            # The knobs must demonstrably engage somewhere in the sweep.
            checks["speculation_fires"] = any(
                c["speculated"] > 0 for (s, m), c in cells.items()
                if m == "mitigated")
            checks["replication_fires"] = any(
                c["replicated"] > 0 for (s, m), c in cells.items()
                if m == "mitigated")
        return checks


def run_scenarios_experiment(config: ScenariosConfig | None = None,
                             seeds: tuple[int, ...] = (1,),
                             scenarios: tuple[str, ...] | None = None,
                             mitigations: tuple[str, ...] = ("none",
                                                             "mitigated"),
                             jobs: int | None = None) -> ScenariosResult:
    """Sweep scenario x mitigation x seed cells through the parallel engine."""
    cfg = config or ScenariosConfig()
    names = tuple(scenarios) if scenarios is not None \
        else tuple(scenario_names())
    for m in mitigations:
        if m not in MITIGATIONS:
            raise KeyError(f"unknown mitigation {m!r}; "
                           f"choose from {sorted(MITIGATIONS)}")
    result = ScenariosResult(config=cfg, scenarios=names,
                             mitigations=tuple(mitigations))
    cells = [(s, m, seed) for s in names for m in mitigations
             for seed in seeds]
    summaries = map_cells(
        run_scenario_cell,
        # Kind keys the timing cache per (scenario, mitigation): shaped
        # arrival streams make some scenarios (flash crowds, heavy-tail
        # work) far slower than others at equal node counts.
        [call(cfg, s, m, seed).with_cost(kind=f"scenario:{s}:{m}")
         for s, m, seed in cells],
        jobs=jobs)
    grouped: dict[tuple[str, str], list[dict]] = {}
    for (s, m, seed), summary in zip(cells, summaries):
        result.fingerprints[(s, m, seed)] = summary["fingerprint"]
        grouped.setdefault((s, m), []).append(summary)
    numeric = ("finished", "completed_frac", "failed", "lost", "rejected",
               "resubmissions", "recoveries", "speculated", "replicated",
               "wait_mean", "wait_p99")
    for (s, m), per_seed in grouped.items():
        agg = {k: float(np.mean([p[k] for p in per_seed])) for k in numeric}
        result.by_cell[(s, m)] = agg
        result.rows.append([
            s, m,
            round(100 * agg["completed_frac"], 1),
            round(agg["failed"], 1),
            round(agg["lost"], 1),
            round(agg["rejected"], 1),
            round(agg["resubmissions"], 1),
            round(agg["recoveries"], 1),
            round(agg["speculated"], 1),
            round(agg["replicated"], 1),
            round(agg["wait_mean"], 1),
            round(agg["wait_p99"], 1),
        ])
    return result
