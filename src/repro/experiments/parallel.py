"""Process-parallel sweep fan-out shared by every experiment driver.

Every experiment is a grid of independent (workload, matchmaker, seed)
cells, and each cell owns its RNG (:class:`repro.util.rng.RngStreams` is
seed+name keyed), so cells can run in worker processes and produce
outcomes *bit-identical* to the serial loop.  :func:`map_cells` is the one
fan-out primitive: it preserves submission order, propagates exceptions,
and folds worker telemetry metrics back into the parent registry.

Determinism contract:

* With ``jobs=1`` the cells run in-process through the exact historical
  code path (including a shared parent telemetry, when given).
* With ``jobs>1`` each cell's result is produced by the same function
  with the same arguments in a fresh process, and worker metric *and
  trace-bus* states are merged in submission order — counters,
  histograms, final gauge values, and the span stream all match the
  serial run (histogram running *totals* can differ in the last ulp:
  float addition is not associative across the per-worker partial
  sums).  Worker span ids are renumbered on merge so the combined
  stream carries exactly the ids one shared serial bus would have
  allocated (see :meth:`repro.telemetry.bus.TelemetryBus.merge`).
  Kernel profiles remain per-process and stay in the worker.

``REPRO_JOBS`` supplies a default worker count when the caller does not
pass one; ``0`` means "all cores".
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable

#: Environment variable consulted when no explicit ``jobs`` is given.
ENV_JOBS = "REPRO_JOBS"

#: One prepared cell invocation: (positional args, keyword args).
Call = tuple[tuple, dict]


def call(*args: Any, **kwargs: Any) -> Call:
    """Package one cell invocation for :func:`map_cells`."""
    return args, kwargs


def resolve_jobs(jobs: int | None = None) -> int:
    """Effective worker count: explicit argument, else ``$REPRO_JOBS``,
    else 1.  Zero or negative means "one worker per core"."""
    if jobs is None:
        try:
            jobs = int(os.environ.get(ENV_JOBS, "1"))
        except ValueError:
            jobs = 1
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


@dataclass(frozen=True)
class _TelemetrySpec:
    """The picklable subset of a Telemetry config a worker reconstructs.

    The worker's stack must filter and bound its bus exactly like the
    parent's, or the merged stream would diverge from the serial run —
    so the bus-shaping settings (categories, maxlen, flight ring) ride
    along with the metrics-shaping ones.
    """

    profile_kernel: bool
    sample_interval: float | None
    categories: frozenset[str] | None = None
    maxlen: int | None = None
    flight_ring: int = 64

    @classmethod
    def of(cls, telemetry) -> "_TelemetrySpec | None":
        if telemetry is None or not telemetry.enabled:
            return None
        cats = telemetry.bus.categories
        flight = telemetry.flight
        return cls(profile_kernel=telemetry.profile is not None,
                   sample_interval=telemetry.sample_interval,
                   categories=frozenset(cats) if cats is not None else None,
                   maxlen=telemetry.bus.maxlen,
                   flight_ring=flight.maxlen if flight is not None else 0)


def _run_cell(fn: Callable, args: tuple, kwargs: dict,
              spec: _TelemetrySpec | None):
    """Worker-side cell execution (module-level so it pickles)."""
    if spec is None:
        return fn(*args, **kwargs), None, None
    from repro.telemetry.core import Telemetry

    tel = Telemetry(categories=spec.categories, maxlen=spec.maxlen,
                    profile_kernel=spec.profile_kernel,
                    sample_interval=spec.sample_interval,
                    flight_ring=spec.flight_ring)
    result = fn(*args, telemetry=tel, **kwargs)
    return result, tel.metrics.state(), tel.bus.state()


def map_cells(fn: Callable, calls: Iterable[Call], *,
              jobs: int | None = None, telemetry=None) -> list:
    """Run ``fn(*args, **kwargs)`` for every prepared call, in order.

    Parameters
    ----------
    fn:
        A module-level cell function (it must pickle for ``jobs>1``).
    calls:
        Prepared invocations (see :func:`call`).  Results come back in
        the same order regardless of completion order.
    jobs:
        Worker processes; ``None`` consults ``$REPRO_JOBS`` (default 1).
    telemetry:
        Optional parent :class:`~repro.telemetry.Telemetry`.  Serial runs
        pass it straight into ``fn`` (shared accumulation, historical
        behavior); parallel runs give each worker a fresh stack and merge
        the metric and trace-bus states back in submission order.
    """
    calls = list(calls)
    if telemetry is not None and not telemetry.enabled:
        telemetry = None
    n_jobs = min(resolve_jobs(jobs), max(len(calls), 1))
    if n_jobs <= 1:
        if telemetry is None:
            return [fn(*args, **kwargs) for args, kwargs in calls]
        return [fn(*args, telemetry=telemetry, **kwargs)
                for args, kwargs in calls]
    spec = _TelemetrySpec.of(telemetry)
    with ProcessPoolExecutor(max_workers=n_jobs) as pool:
        futures = [pool.submit(_run_cell, fn, args, kwargs, spec)
                   for args, kwargs in calls]
        triples = [f.result() for f in futures]
    results = []
    for result, metric_state, bus_state in triples:
        if metric_state is not None:
            telemetry.metrics.merge(metric_state)
        if bus_state is not None:
            telemetry.bus.merge(bus_state)
        results.append(result)
    return results
