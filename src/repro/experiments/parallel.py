"""Process-parallel sweep engine shared by every experiment driver (v2).

Every experiment is a grid of independent (workload, matchmaker, seed)
cells, and each cell owns its RNG (:class:`repro.util.rng.RngStreams` is
seed+name keyed), so cells can run in worker processes and produce
outcomes *bit-identical* to the serial loop.  :func:`map_cells` is the one
fan-out primitive; v2 layers three mechanisms on the v1 pool:

**Cost-aware scheduling.**  Each prepared :class:`Call` carries an
optional cost hint and a cell *kind*; a persisted per-kind timing cache
(``benchmarks/reports/cell_timings.json``, refreshed after every parallel
sweep) refines the hints with measured wall times.  Work is submitted
longest-processing-time first and collected with ``as_completed``, so a
heavy churn or large-scale cell starts immediately instead of straggling
the sweep from the tail of a FIFO queue.  Scheduling affects *when* a
cell runs, never *what* it computes — results are re-ordered to
submission order and telemetry is folded in submission order, so the
output is independent of completion order (enforced by a forced-order
test hook).

**Streaming result merge.**  Workers spool their telemetry to chunked
columnar files (:mod:`repro.telemetry.spool`) that the parent folds
incrementally as each future completes, replacing the v1 one-shot
pickled ``state()`` round trip — about half the parent-side merge wall
time and one chunk (not one full worker stream) of peak memory.
``REPRO_PARALLEL_MERGE=pickled`` selects the legacy path (kept as the
in-repo A/B baseline for the ``parallel.overhead`` bench cell).  The
engine records self-telemetry — per-unit serialized bytes, merge
seconds, worker utilization — retrievable via :func:`engine_stats` and
surfaced by ``repro run --jobs N --engine-stats``.

**Intra-cell sharding and tiny-cell batching.**  A driver whose cell is
internally a sweep (e.g. one ``dht_scaling`` size runs four substrates)
can declare it as a :class:`ShardedCall`: the shards fan out as
independent units and a module-level reducer reassembles the cell result
after the deterministic merge.  At the other extreme, many sub-second
cells are batched into one future to amortize per-future IPC; both
transforms preserve unit order, so the fold is unchanged.

Determinism contract (unchanged from v1):

* With ``jobs=1`` the cells run in-process through the exact historical
  code path (including a shared parent telemetry, when given); sharded
  cells run their shards sequentially in declaration order.
* With ``jobs>1`` each unit's result is produced by the same function
  with the same arguments in a fresh process, and worker metric *and
  trace-bus* states are folded in submission order — counters,
  histograms, final gauge values, and the span stream all match the
  serial run (histogram running *totals* can differ in the last ulp:
  float addition is not associative across the per-worker partial
  sums).  Worker span ids are renumbered on fold so the combined stream
  carries exactly the ids one shared serial bus would have allocated.
  Kernel profiles remain per-process and stay in the worker.

``REPRO_JOBS`` supplies a default worker count when the caller does not
pass one; ``0`` means "all cores".
"""

from __future__ import annotations

import dataclasses
import json
import os
import pickle
import shutil
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

#: Environment variable consulted when no explicit ``jobs`` is given.
ENV_JOBS = "REPRO_JOBS"

#: Merge-path A/B flag: "spool" (default, streaming columnar fold) or
#: "pickled" (v1 one-shot state round trip, kept for the overhead bench).
ENV_MERGE = "REPRO_PARALLEL_MERGE"

#: Timing-cache override: unset = repo default path, a path = use it,
#: "off"/"none"/"0" = disable persistence for this run.
ENV_TIMING_CACHE = "REPRO_TIMING_CACHE"

#: A batch targets roughly 1/(jobs × oversubscription) of the sweep's
#: total estimated cost, so each worker sees ~4 futures — enough slack
#: for LPT to balance heterogeneous tails, few enough to amortize IPC.
BATCH_OVERSUB = 4


@dataclass(frozen=True)
class Call:
    """One prepared cell invocation, with optional scheduling hints.

    ``cost`` is a relative size hint (any consistent unit — drivers use
    node-count × job-count); ``kind`` names the cell's kind for the
    persisted timing cache (cells of one kind are assumed to take
    similar wall time).  Both are hints: they steer placement, never
    results.
    """

    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    cost: float | None = None
    kind: str | None = None

    def with_cost(self, cost: float | None = None,
                  kind: str | None = None) -> "Call":
        """Attach scheduling hints (returns a new Call)."""
        return dataclasses.replace(self, cost=cost if cost is not None
                                   else self.cost,
                                   kind=kind if kind is not None
                                   else self.kind)


@dataclass(frozen=True)
class ShardedCall:
    """A cell that fans out as independent sub-cells (shards).

    ``fn`` runs one shard (module-level, like any cell function);
    ``reduce`` (also module-level) reassembles the shard results — in
    declaration order — into the cell result the driver's unsharded
    function would have returned.  Shard contract: the shards must
    partition the cell's work *and* its telemetry — running the shards
    sequentially against one shared telemetry must equal running the
    monolithic cell (each shard draws its own (seed, name)-keyed
    streams, so splitting on the stream-name axis is always safe).
    """

    fn: Callable
    shards: tuple[Call, ...]
    reduce: Callable[[list], Any]
    kind: str | None = None


def call(*args: Any, **kwargs: Any) -> Call:
    """Package one cell invocation for :func:`map_cells`."""
    return Call(args, kwargs)


def sharded(fn: Callable, shards: Iterable[Call],
            reduce: Callable[[list], Any],
            kind: str | None = None) -> ShardedCall:
    """Package a shardable cell (see :class:`ShardedCall`)."""
    return ShardedCall(fn, tuple(shards), reduce, kind)


def resolve_jobs(jobs: int | None = None) -> int:
    """Effective worker count: explicit argument, else ``$REPRO_JOBS``,
    else 1.  Zero or negative means "one worker per core"."""
    if jobs is None:
        try:
            jobs = int(os.environ.get(ENV_JOBS, "1"))
        except ValueError:
            jobs = 1
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def resolve_merge_mode(merge_mode: str | None = None) -> str:
    """Effective merge path: explicit argument, else
    ``$REPRO_PARALLEL_MERGE``, else ``"spool"``."""
    if merge_mode is None:
        merge_mode = os.environ.get(ENV_MERGE, "spool")
    if merge_mode not in ("spool", "pickled"):
        raise ValueError(f"unknown merge mode {merge_mode!r} "
                         "(expected 'spool' or 'pickled')")
    return merge_mode


# -- timing cache ---------------------------------------------------------


class TimingCache:
    """Persisted mean wall-seconds per cell kind.

    Lives under ``benchmarks/reports/`` (git-ignored) so successive runs
    — bench, CLI, tests — share what they learned about how long each
    cell kind takes; the estimate feeds LPT placement and batch sizing.
    Purely advisory: a cold, stale, or corrupt cache degrades placement,
    never results.  The mean is an incremental average with the sample
    count capped (recent runs keep ~1/64 weight), so estimates track
    hardware and code changes instead of fossilizing.
    """

    CAP = 64

    def __init__(self, path: str | Path | None):
        self.path = Path(path) if path is not None else None
        self._data: dict[str, dict[str, float]] = {}
        self._dirty = False
        if self.path is not None and self.path.exists():
            try:
                raw = json.loads(self.path.read_text())
                if isinstance(raw, dict):
                    self._data = {
                        k: {"n": int(v["n"]), "mean_s": float(v["mean_s"])}
                        for k, v in raw.items()
                        if isinstance(v, dict) and "mean_s" in v
                    }
            except (OSError, ValueError, KeyError, TypeError):
                self._data = {}

    @classmethod
    def default(cls) -> "TimingCache":
        """The repo-default cache, honouring ``$REPRO_TIMING_CACHE``."""
        env = os.environ.get(ENV_TIMING_CACHE)
        if env is not None:
            if env.strip().lower() in ("", "off", "none", "0"):
                return cls(None)
            return cls(env)
        reports = Path(__file__).resolve().parents[3] / "benchmarks" / "reports"
        if reports.is_dir():
            return cls(reports / "cell_timings.json")
        return cls(None)  # installed outside the repo: stay in-memory

    def estimate(self, kind: str) -> float | None:
        entry = self._data.get(kind)
        return entry["mean_s"] if entry else None

    def observe(self, kind: str, seconds: float) -> None:
        entry = self._data.get(kind)
        if entry is None:
            self._data[kind] = {"n": 1, "mean_s": float(seconds)}
        else:
            n = min(int(entry["n"]), self.CAP - 1) + 1
            entry["mean_s"] += (seconds - entry["mean_s"]) / n
            entry["n"] = n
        self._dirty = True

    def save(self) -> None:
        """Atomically persist (merging concurrent writers last-wins per
        kind is acceptable: the cache is advisory)."""
        if self.path is None or not self._dirty:
            return
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_suffix(".tmp%d" % os.getpid())
            tmp.write_text(json.dumps(self._data, indent=1, sort_keys=True))
            os.replace(tmp, self.path)
            self._dirty = False
        except OSError:  # read-only checkout, races: placement hint only
            pass


# -- engine self-telemetry ------------------------------------------------


@dataclass
class EngineStats:
    """Self-telemetry for one parallel :func:`map_cells` sweep."""

    jobs: int
    merge_mode: str
    n_cells: int
    n_units: int
    n_batches: int
    wall_s: float = 0.0
    merge_s: float = 0.0          # parent-side telemetry fold wall
    payload_bytes: int = 0        # serialized telemetry volume, all units
    busy_s: float = 0.0           # sum of per-unit worker wall times
    #: (kind, worker wall seconds, serialized bytes) per unit, unit order.
    units: list[tuple[str, float, int]] = field(default_factory=list)

    @property
    def utilization(self) -> float:
        """Worker busy time over worker capacity (1.0 = no idle slots)."""
        cap = self.jobs * self.wall_s
        return self.busy_s / cap if cap > 0 else 0.0

    def render(self) -> str:
        lines = [
            f"parallel engine: {self.n_cells} cells -> {self.n_units} units"
            f" -> {self.n_batches} batches, jobs={self.jobs},"
            f" merge={self.merge_mode}",
            f"  wall {self.wall_s:.2f}s  worker-busy {self.busy_s:.2f}s"
            f"  utilization {self.utilization:.0%}",
            f"  telemetry fold {self.merge_s * 1e3:.1f} ms,"
            f" {self.payload_bytes:,} bytes serialized",
        ]
        slowest = sorted(self.units, key=lambda u: -u[1])[:5]
        if slowest and slowest[0][1] > 0:
            lines.append("  slowest units: " + " | ".join(
                f"{kind} {wall:.2f}s" for kind, wall, _ in slowest))
        return "\n".join(lines)


#: Stats for every parallel sweep since the last reset, in run order
#: (module-level so the CLI can report after a driver returns).
_STATS: list[EngineStats] = []


def engine_stats() -> list[EngineStats]:
    """Stats of parallel sweeps since :func:`reset_engine_stats`."""
    return list(_STATS)


def reset_engine_stats() -> None:
    _STATS.clear()


def render_engine_stats() -> str:
    """Human-readable report of all recorded sweeps (CLI helper)."""
    if not _STATS:
        return ("parallel engine: no parallel sweeps recorded "
                "(serial path, or --jobs 1)")
    return "\n".join(s.render() for s in _STATS)


# -- worker side ----------------------------------------------------------


@dataclass(frozen=True)
class _TelemetrySpec:
    """The picklable subset of a Telemetry config a worker reconstructs.

    The worker's stack must filter and bound its bus exactly like the
    parent's, or the merged stream would diverge from the serial run —
    so the bus-shaping settings (categories, maxlen, flight ring) ride
    along with the metrics-shaping ones.
    """

    profile_kernel: bool
    sample_interval: float | None
    categories: frozenset[str] | None = None
    maxlen: int | None = None
    flight_ring: int = 64

    @classmethod
    def of(cls, telemetry) -> "_TelemetrySpec | None":
        if telemetry is None or not telemetry.enabled:
            return None
        cats = telemetry.bus.categories
        flight = telemetry.flight
        return cls(profile_kernel=telemetry.profile is not None,
                   sample_interval=telemetry.sample_interval,
                   categories=frozenset(cats) if cats is not None else None,
                   maxlen=telemetry.bus.maxlen,
                   flight_ring=flight.maxlen if flight is not None else 0)


def _run_units(units: list[tuple[int, Callable, tuple, dict]],
               spec: _TelemetrySpec | None, merge_mode: str,
               spool_dir: str | None):
    """Worker-side execution of one batch (module-level so it pickles).

    Each unit runs against a *fresh* telemetry stack — batching changes
    how units share a future, never how they share state — and ships its
    telemetry either as a spool file path or a pickled-state blob,
    tagged with serialized size and worker wall seconds.
    """
    out = []
    for index, fn, args, kwargs in units:
        t0 = time.perf_counter()
        if spec is None:
            result = fn(*args, **kwargs)
            payload, nbytes = None, 0
        else:
            from repro.telemetry.core import Telemetry
            from repro.telemetry.spool import write_spool

            tel = Telemetry(categories=spec.categories, maxlen=spec.maxlen,
                            profile_kernel=spec.profile_kernel,
                            sample_interval=spec.sample_interval,
                            flight_ring=spec.flight_ring)
            result = fn(*args, telemetry=tel, **kwargs)
            if merge_mode == "spool":
                payload = os.path.join(spool_dir, f"u{index:06d}.spool")
                nbytes = write_spool(payload, tel)
            else:
                payload = pickle.dumps(
                    (tel.metrics.state(), tel.bus.state()),
                    protocol=pickle.HIGHEST_PROTOCOL)
                nbytes = len(payload)
        out.append((index, result, payload, nbytes,
                    time.perf_counter() - t0))
    return out


# -- parent side ----------------------------------------------------------


@dataclass
class _Unit:
    """One schedulable work item (a plain cell, or one shard of one)."""

    index: int            # global submission/fold order
    cell: int             # index into the cell list
    fn: Callable
    args: tuple
    kwargs: dict
    cost: float = 1.0
    kind: str = "?"


def _as_call(obj) -> Call | ShardedCall:
    if isinstance(obj, (Call, ShardedCall)):
        return obj
    # v1 compatibility: a bare (args, kwargs) tuple.
    if (isinstance(obj, tuple) and len(obj) == 2
            and isinstance(obj[0], tuple) and isinstance(obj[1], dict)):
        return Call(obj[0], obj[1])
    raise TypeError(f"not a prepared call: {obj!r}")


def _metadata_cost(args: tuple, kwargs: dict) -> float | None:
    """Size heuristic from cell metadata: any argument exposing
    ``n_nodes`` (workload/scenario configs) contributes nodes × jobs."""
    best = None
    for v in (*args, *kwargs.values()):
        n_nodes = getattr(v, "n_nodes", None)
        if n_nodes is None:
            continue
        est = float(n_nodes) * float(getattr(v, "n_jobs", 1) or 1)
        if best is None or est > best:
            best = est
    return best


def _estimate(c: Call, fn: Callable, cache: TimingCache) -> tuple[float, str]:
    """(cost, kind) for one unit.  Precedence: measured cache mean for
    the kind (seconds, comparable across kinds) > the driver's explicit
    hint > metadata heuristic > 1.0."""
    kind = c.kind or f"{getattr(fn, '__module__', '?')}" \
                     f".{getattr(fn, '__qualname__', repr(fn))}"
    measured = cache.estimate(kind)
    if measured is not None:
        return measured, kind
    if c.cost is not None:
        return float(c.cost), kind
    meta = _metadata_cost(c.args, c.kwargs)
    return (meta if meta is not None else 1.0), kind


def _plan_units(fn: Callable, calls: Sequence[Call | ShardedCall],
                cache: TimingCache) -> list[_Unit]:
    """Flatten cells (expanding shards) into submission-ordered units."""
    units: list[_Unit] = []
    for ci, c in enumerate(calls):
        if isinstance(c, ShardedCall):
            for s in c.shards:
                shard = s if s.kind is not None else s.with_cost(kind=c.kind)
                cost, kind = _estimate(shard, c.fn, cache)
                units.append(_Unit(len(units), ci, c.fn, s.args, s.kwargs,
                                   cost, kind))
        else:
            cost, kind = _estimate(c, fn, cache)
            units.append(_Unit(len(units), ci, fn, c.args, c.kwargs,
                               cost, kind))
    return units


def _plan_batches(units: list[_Unit], n_jobs: int,
                  batch: bool) -> list[list[_Unit]]:
    """Group submission-ordered units into batches (contiguous runs, so
    the in-order fold is untouched).  Greedy fill toward a target of
    total/(jobs × oversubscription): sweeps of many tiny cells collapse
    into a few futures, while any unit at or above the target stays a
    singleton — a heavy cell is never welded to a straggler."""
    if not batch or len(units) <= n_jobs:
        return [[u] for u in units]
    total = sum(u.cost for u in units)
    target = total / (n_jobs * BATCH_OVERSUB)
    batches: list[list[_Unit]] = []
    cur: list[_Unit] = []
    cur_cost = 0.0
    for u in units:
        cur.append(u)
        cur_cost += u.cost
        if cur_cost >= target:
            batches.append(cur)
            cur, cur_cost = [], 0.0
    if cur:
        batches.append(cur)
    return batches


def _fold_payload(telemetry, merge_mode: str, payload) -> None:
    """Fold one unit's telemetry into the parent (submission order)."""
    if payload is None or telemetry is None:
        return
    if merge_mode == "spool":
        from repro.telemetry.spool import fold_spool

        fold_spool(payload, telemetry)
        try:
            os.unlink(payload)
        except OSError:
            pass
    else:
        metric_state, bus_state = pickle.loads(payload)
        telemetry.metrics.merge(metric_state)
        telemetry.bus.merge(bus_state)


def _run_serial(fn: Callable, calls: Sequence[Call | ShardedCall],
                telemetry) -> list:
    """The exact historical in-process path (shared telemetry)."""
    results = []
    for c in calls:
        if isinstance(c, ShardedCall):
            if telemetry is None:
                parts = [c.fn(*s.args, **s.kwargs) for s in c.shards]
            else:
                parts = [c.fn(*s.args, telemetry=telemetry, **s.kwargs)
                         for s in c.shards]
            results.append(c.reduce(parts))
        elif telemetry is None:
            results.append(fn(*c.args, **c.kwargs))
        else:
            results.append(fn(*c.args, telemetry=telemetry, **c.kwargs))
    return results


def map_cells(fn: Callable, calls: Iterable[Call | ShardedCall], *,
              jobs: int | None = None, telemetry=None,
              merge_mode: str | None = None, batch: bool = True,
              _completion_order: Callable | None = None) -> list:
    """Run every prepared call and return results in submission order.

    Parameters
    ----------
    fn:
        The cell function for plain :class:`Call` entries (module-level:
        it must pickle for ``jobs>1``).  :class:`ShardedCall` entries
        carry their own shard function and ignore ``fn``.
    calls:
        Prepared invocations (:func:`call` / :func:`sharded`).  Results
        come back in this order regardless of completion order.
    jobs:
        Worker processes; ``None`` consults ``$REPRO_JOBS`` (default 1).
    telemetry:
        Optional parent :class:`~repro.telemetry.Telemetry`.  Serial runs
        pass it straight into ``fn`` (shared accumulation, historical
        behavior); parallel runs give each unit a fresh stack and fold
        the streams back in submission order.
    merge_mode:
        ``"spool"`` | ``"pickled"`` | None (consult
        ``$REPRO_PARALLEL_MERGE``, default spool).  Both paths produce
        identical merged telemetry; pickled is the v1 baseline kept for
        the overhead bench.
    batch:
        Allow tiny-cell batching (see :func:`_plan_batches`).
    _completion_order:
        Test hook: maps the submitted future list to a collection
        iterable, replacing ``as_completed`` — determinism tests force
        adversarial completion orders through it.  Not for callers.

    On a cell failure the engine cancels all not-yet-running futures and
    shuts the pool down eagerly (running cells finish and are
    discarded), then re-raises the cell's exception.
    """
    calls = [_as_call(c) for c in calls]
    if telemetry is not None and not telemetry.enabled:
        telemetry = None
    n_units = sum(len(c.shards) if isinstance(c, ShardedCall) else 1
                  for c in calls)
    n_jobs = min(resolve_jobs(jobs), max(n_units, 1))
    if n_jobs <= 1:
        return _run_serial(fn, calls, telemetry)

    merge_mode = resolve_merge_mode(merge_mode)
    cache = TimingCache.default()
    units = _plan_units(fn, calls, cache)
    batches = _plan_batches(units, n_jobs, batch)
    # LPT: heaviest batch first; ties broken by submission order so the
    # schedule itself is deterministic.
    order = sorted(range(len(batches)),
                   key=lambda i: (-sum(u.cost for u in batches[i]), i))
    spec = _TelemetrySpec.of(telemetry)
    spool_dir = (tempfile.mkdtemp(prefix="repro-spool-")
                 if spec is not None and merge_mode == "spool" else None)
    stats = EngineStats(jobs=n_jobs, merge_mode=merge_mode,
                        n_cells=len(calls), n_units=len(units),
                        n_batches=len(batches))
    unit_result: dict[int, Any] = {}
    unit_meta: dict[int, tuple[str, float, int]] = {}
    t0 = time.perf_counter()
    pool = ProcessPoolExecutor(max_workers=n_jobs)
    try:
        futures = [
            pool.submit(_run_units,
                        [(u.index, u.fn, u.args, u.kwargs)
                         for u in batches[bi]],
                        spec, merge_mode, spool_dir)
            for bi in order
        ]
        completed = (as_completed(futures) if _completion_order is None
                     else _completion_order(list(futures)))
        pending: dict[int, Any] = {}
        next_fold = 0
        for fut in completed:
            try:
                batch_out = fut.result()
            except BaseException:
                for f in futures:
                    f.cancel()
                pool.shutdown(wait=False, cancel_futures=True)
                raise
            for index, result, payload, nbytes, wall in batch_out:
                unit_result[index] = result
                unit_meta[index] = (units[index].kind, wall, nbytes)
                pending[index] = payload
                stats.payload_bytes += nbytes
                stats.busy_s += wall
            # Fold strictly in submission order: everything contiguous
            # from the fold pointer is ready, the rest waits in pending.
            while next_fold in pending:
                payload = pending.pop(next_fold)
                tm = time.perf_counter()
                _fold_payload(telemetry, merge_mode, payload)
                stats.merge_s += time.perf_counter() - tm
                next_fold += 1
        pool.shutdown(wait=True)
    finally:
        if spool_dir is not None:
            shutil.rmtree(spool_dir, ignore_errors=True)
    stats.wall_s = time.perf_counter() - t0
    stats.units = [unit_meta[i] for i in range(len(units))]
    for kind, wall, _ in stats.units:
        cache.observe(kind, wall)
    cache.save()
    _STATS.append(stats)

    results = []
    for ci, c in enumerate(calls):
        mine = [unit_result[u.index] for u in units if u.cell == ci]
        if isinstance(c, ShardedCall):
            results.append(c.reduce(mine))
        else:
            results.append(mine[0])
    return results
