"""Process-parallel sweep fan-out shared by every experiment driver.

Every experiment is a grid of independent (workload, matchmaker, seed)
cells, and each cell owns its RNG (:class:`repro.util.rng.RngStreams` is
seed+name keyed), so cells can run in worker processes and produce
outcomes *bit-identical* to the serial loop.  :func:`map_cells` is the one
fan-out primitive: it preserves submission order, propagates exceptions,
and folds worker telemetry metrics back into the parent registry.

Determinism contract:

* With ``jobs=1`` the cells run in-process through the exact historical
  code path (including a shared parent telemetry, when given).
* With ``jobs>1`` each cell's result is produced by the same function
  with the same arguments in a fresh process, and worker metric states
  are merged in submission order — so counters, histograms, and final
  gauge values match the serial run (histogram running *totals* can
  differ in the last ulp: float addition is not associative across the
  per-worker partial sums).  Bus traces and kernel profiles are
  per-process and stay in the worker; use ``jobs=1`` (e.g. ``repro
  trace``) when the span stream itself is the artifact.

``REPRO_JOBS`` supplies a default worker count when the caller does not
pass one; ``0`` means "all cores".
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable

#: Environment variable consulted when no explicit ``jobs`` is given.
ENV_JOBS = "REPRO_JOBS"

#: One prepared cell invocation: (positional args, keyword args).
Call = tuple[tuple, dict]


def call(*args: Any, **kwargs: Any) -> Call:
    """Package one cell invocation for :func:`map_cells`."""
    return args, kwargs


def resolve_jobs(jobs: int | None = None) -> int:
    """Effective worker count: explicit argument, else ``$REPRO_JOBS``,
    else 1.  Zero or negative means "one worker per core"."""
    if jobs is None:
        try:
            jobs = int(os.environ.get(ENV_JOBS, "1"))
        except ValueError:
            jobs = 1
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


@dataclass(frozen=True)
class _TelemetrySpec:
    """The picklable subset of a Telemetry config a worker reconstructs.

    Only settings that influence *metrics* matter for the fold-back
    (the load sampler writes gauges/histograms); bus categories and
    buffer bounds shape records that never leave the worker.
    """

    profile_kernel: bool
    sample_interval: float | None

    @classmethod
    def of(cls, telemetry) -> "_TelemetrySpec | None":
        if telemetry is None or not telemetry.enabled:
            return None
        return cls(profile_kernel=telemetry.profile is not None,
                   sample_interval=telemetry.sample_interval)


def _run_cell(fn: Callable, args: tuple, kwargs: dict,
              spec: _TelemetrySpec | None):
    """Worker-side cell execution (module-level so it pickles)."""
    if spec is None:
        return fn(*args, **kwargs), None
    from repro.telemetry.core import Telemetry

    tel = Telemetry(profile_kernel=spec.profile_kernel,
                    sample_interval=spec.sample_interval)
    result = fn(*args, telemetry=tel, **kwargs)
    return result, tel.metrics.state()


def map_cells(fn: Callable, calls: Iterable[Call], *,
              jobs: int | None = None, telemetry=None) -> list:
    """Run ``fn(*args, **kwargs)`` for every prepared call, in order.

    Parameters
    ----------
    fn:
        A module-level cell function (it must pickle for ``jobs>1``).
    calls:
        Prepared invocations (see :func:`call`).  Results come back in
        the same order regardless of completion order.
    jobs:
        Worker processes; ``None`` consults ``$REPRO_JOBS`` (default 1).
    telemetry:
        Optional parent :class:`~repro.telemetry.Telemetry`.  Serial runs
        pass it straight into ``fn`` (shared accumulation, historical
        behavior); parallel runs give each worker a fresh stack and merge
        the metric states back in submission order.
    """
    calls = list(calls)
    if telemetry is not None and not telemetry.enabled:
        telemetry = None
    n_jobs = min(resolve_jobs(jobs), max(len(calls), 1))
    if n_jobs <= 1:
        if telemetry is None:
            return [fn(*args, **kwargs) for args, kwargs in calls]
        return [fn(*args, telemetry=telemetry, **kwargs)
                for args, kwargs in calls]
    spec = _TelemetrySpec.of(telemetry)
    with ProcessPoolExecutor(max_workers=n_jobs) as pool:
        futures = [pool.submit(_run_cell, fn, args, kwargs, spec)
                   for args, kwargs in calls]
        pairs = [f.result() for f in futures]
    results = []
    for result, metric_state in pairs:
        if metric_state is not None:
            telemetry.metrics.merge(metric_state)
        results.append(result)
    return results
