"""Grid-scale sweep: the paper's headline "scalable" claim (§1).

"Our goal is to design and build a scalable infrastructure ... Such
infrastructure must be decentralized, robust, highly available, and
scalable."  Concretely: growing the population at *constant per-node
offered load* must keep job wait times flat (no coordination bottleneck)
while matchmaking cost grows only logarithmically — against the implicit
alternative of centralized designs whose server works linearly harder.

We sweep N with the same offered load (`WorkloadConfig.scaled` keeps
``work / (interarrival * N)`` constant) and report wait time and
matchmaking messages per job for the decentralized matchmakers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.parallel import map_cells
from repro.experiments.runner import run_workload, workload_call
from repro.grid.system import DEFAULT_MAX_TIME
from repro.metrics.report import format_table
from repro.workloads.spec import FIGURE2_SCENARIOS


@dataclass
class ScalingResult:
    sizes: tuple[int, ...]
    matchmakers: tuple[str, ...]
    #: (matchmaker, n) -> summary dict
    cells: dict[tuple[str, int], dict[str, float]] = field(default_factory=dict)

    def report(self) -> str:
        rows = []
        for mm in self.matchmakers:
            for n in self.sizes:
                s = self.cells[(mm, n)]
                rows.append([mm, n, round(s["wait_mean"], 1),
                             round(s["wait_std"], 1),
                             round(s["match_cost_mean"], 2),
                             round(float(np.log2(n)), 1)])
        return format_table(
            ["matchmaker", "N", "wait mean (s)", "wait stdev (s)",
             "cost msgs/job", "log2 N"],
            rows,
            title="Grid scalability: constant offered load, growing "
                  "population",
        )

    def shape_checks(self) -> dict[str, bool]:
        checks = {}
        n_lo, n_hi = self.sizes[0], self.sizes[-1]
        for mm in self.matchmakers:
            lo = self.cells[(mm, n_lo)]
            hi = self.cells[(mm, n_hi)]
            # Matchmaking cost grows logarithmically: allow a generous
            # per-doubling hop budget (+ slack), which linear growth blows
            # through immediately.
            doublings = np.log2(n_hi / n_lo)
            allowed = 5.0 * doublings + 3.0
            checks[f"{mm}_cost_logarithmic"] = (
                hi["match_cost_mean"] - lo["match_cost_mean"] < allowed)
            # ... and wait times do not blow up with scale (no bottleneck;
            # they typically *improve* through statistical multiplexing).
            checks[f"{mm}_wait_flat"] = hi["wait_mean"] < 2.0 * lo["wait_mean"] + 30.0
        return checks


def run_scaling_experiment(sizes: tuple[int, ...] = (64, 128, 256, 512),
                           matchmakers: tuple[str, ...] = ("rn-tree", "can-push"),
                           seed: int = 1, scenario: str = "mixed-heavy",
                           max_time: float = DEFAULT_MAX_TIME,
                           jobs: int | None = None) -> ScalingResult:
    base = FIGURE2_SCENARIOS[scenario]
    result = ScalingResult(sizes=sizes, matchmakers=matchmakers)
    groups = [(n, mm) for n in sizes for mm in matchmakers]
    outcomes = map_cells(
        run_workload,
        [workload_call(base.scaled(n / base.n_nodes), mm, seed=seed,
                       max_time=max_time) for n, mm in groups],
        jobs=jobs)
    for (n, mm), outcome in zip(groups, outcomes):
        result.cells[(mm, n)] = outcome.summary
    return result
