"""Shared experiment machinery: build a grid, drive a workload, summarize.

The A/B discipline matters here: for a given (workload config, seed), the
node population and job stream are generated *once* from dedicated RNG
streams and replayed identically against every matchmaker, so wait-time
differences are attributable to matchmaking alone — the same methodology
as the paper's simulator comparisons.

Sweeps fan out over worker processes through
:func:`repro.experiments.parallel.map_cells`; each (workload, matchmaker,
seed) cell owns its RNG, so per-cell outcomes are bit-identical whether
the sweep runs serially or with ``jobs > 1``.
"""

from __future__ import annotations

import dataclasses
import logging
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.experiments.parallel import Call, call, map_cells
from repro.grid.job import Job
from repro.grid.system import DEFAULT_MAX_TIME, DesktopGrid, GridConfig
from repro.match import make_matchmaker
from repro.util.rng import RngStreams
from repro.workloads.jobs import ScheduledJob, generate_job_stream
from repro.workloads.nodes import generate_nodes
from repro.workloads.spec import WorkloadConfig

log = logging.getLogger("repro.experiments")


@dataclass
class RunOutcome:
    """Results of one grid run."""

    matchmaker: str
    workload: WorkloadConfig
    seed: int
    summary: dict[str, float]
    wait_times: np.ndarray = field(repr=False)
    match_costs: np.ndarray = field(repr=False)
    node_exec_counts: list[int] = field(repr=False, default_factory=list)
    sim_time: float = 0.0
    finished: bool = True
    events: int = 0

    @property
    def wait_mean(self) -> float:
        return self.summary["wait_mean"]

    @property
    def wait_std(self) -> float:
        return self.summary["wait_std"]


def build_population(workload: WorkloadConfig, seed: int
                     ) -> tuple[list[tuple[str, tuple[float, ...]]], list[ScheduledJob]]:
    """Generate the (nodes, job stream) pair for a workload+seed."""
    streams = RngStreams(seed)
    nodes = generate_nodes(workload, streams["workload-nodes"])
    jobs = generate_job_stream(workload, streams["workload-jobs"],
                               [cap for _, cap in nodes])
    return nodes, jobs


def drive(grid: DesktopGrid, workload: WorkloadConfig,
          stream: list[ScheduledJob],
          max_time: float = DEFAULT_MAX_TIME) -> bool:
    """Create clients, schedule the whole stream, and run to completion."""
    clients = [grid.client(f"client-{i}") for i in range(workload.n_clients)]
    for sj in stream:
        client = clients[sj.client_index]
        job = Job(profile=sj.profile(client.node_id))
        grid.submit_at(sj.submit_time, client, job)
    return grid.run_until_done(max_time=max_time)


def workload_call(workload: WorkloadConfig, matchmaker: str,
                  **kwargs: Any) -> Call:
    """Prepare one :func:`run_workload` cell with scheduling hints.

    The cost hint is the workload's node-count × job-count (the dominant
    wall-time drivers); the kind keys the engine's persisted timing
    cache, grouping cells that should take similar time — same
    matchmaker, same population size.  Hints steer LPT placement and
    tiny-cell batching only; they never affect results.
    """
    return call(workload, matchmaker, **kwargs).with_cost(
        cost=float(workload.n_nodes) * max(workload.n_jobs, 1),
        kind=f"workload:{matchmaker}:n{workload.n_nodes}"
             f"x{workload.n_jobs}")


def run_workload(workload: WorkloadConfig, matchmaker: str, seed: int = 1,
                 grid_cfg: GridConfig | None = None,
                 mm_kwargs: dict[str, Any] | None = None,
                 max_time: float = DEFAULT_MAX_TIME,
                 telemetry=None,
                 grid_overrides: dict[str, Any] | None = None) -> RunOutcome:
    """Run one (workload, matchmaker, seed) cell and summarize it.

    ``telemetry`` (a :class:`repro.telemetry.Telemetry`) attaches the
    observability stack to the grid for this run; metrics accumulate into
    it across calls, so one instance can aggregate a whole sweep.
    ``grid_overrides`` are :class:`GridConfig` field overrides applied on
    top of the default (or given) config — e.g. ``{"probe_mode": "rpc"}``
    to trace an experiment under the message-level pipeline.
    """
    nodes, stream = build_population(workload, seed)
    if grid_cfg is not None:
        cfg = dataclasses.replace(grid_cfg, **grid_overrides) \
            if grid_overrides else grid_cfg
    else:
        cfg = GridConfig(seed=seed, spec=workload.spec,
                         **(grid_overrides or {}))
    grid = DesktopGrid(cfg, make_matchmaker(matchmaker, **(mm_kwargs or {})),
                       nodes, telemetry=telemetry)
    finished = drive(grid, workload, stream, max_time=max_time)
    counts = grid.node_execution_counts()
    return RunOutcome(
        matchmaker=matchmaker,
        workload=workload,
        seed=seed,
        summary=grid.metrics.summary(node_loads=counts),
        wait_times=grid.metrics.wait_times(),
        match_costs=grid.metrics.total_matchmaking_cost(),
        node_exec_counts=counts,
        sim_time=grid.sim.now,
        finished=finished,
        events=grid.sim.events_processed,
    )


def aggregate_outcomes(outcomes: list[RunOutcome]) -> dict[str, float]:
    """Mean-of-replicates summary of one cell group.

    ``wait_std`` is averaged across replicates (each replicate's stdev is
    the within-run dispersion the paper plots), not pooled.  Truncated
    replicates (``max_time`` hit before the workload drained) are loudly
    flagged — the summary still averages them, but ``all_finished`` drops
    to 0.0 and a warning is logged, because truncated waits understate
    the truth.
    """
    keys = outcomes[0].summary.keys()
    agg = {k: float(np.mean([o.summary[k] for o in outcomes])) for k in keys}
    agg["replicates"] = float(len(outcomes))
    truncated = [o for o in outcomes if not o.finished]
    agg["all_finished"] = float(not truncated)
    if truncated:
        log.warning(
            "%d of %d replicate(s) for matchmaker %r hit max_time before "
            "draining (seeds %s); the averaged summary includes truncated "
            "runs and understates wait times",
            len(truncated), len(outcomes), outcomes[0].matchmaker,
            [o.seed for o in truncated])
    return agg


def run_replicates(workload: WorkloadConfig, matchmaker: str,
                   seeds: tuple[int, ...] = (1, 2, 3),
                   mm_kwargs: dict[str, Any] | None = None,
                   max_time: float = DEFAULT_MAX_TIME, telemetry=None,
                   jobs: int | None = None) -> dict[str, float]:
    """Mean-of-replicates summary over multiple seeds.

    A shared ``telemetry`` instance accumulates metrics over every
    replicate.  ``jobs`` fans the replicates out over worker processes
    (see :mod:`repro.experiments.parallel`); outcomes are identical to
    the serial run because each seed owns its RNG streams.
    """
    outcomes = map_cells(
        run_workload,
        [workload_call(workload, matchmaker, seed=s, mm_kwargs=mm_kwargs,
                       max_time=max_time) for s in seeds],
        jobs=jobs, telemetry=telemetry)
    return aggregate_outcomes(outcomes)
