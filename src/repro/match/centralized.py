"""Omniscient centralized matchmaker — the paper's load-balance target.

"To see how well the workload could be balanced, we also show results for
a centralized scheme that uses knowledge of the status of all nodes and
jobs.  Such a scheme would be very expensive to implement in a
decentralized P2P system, but serves as a target for achieving the best
possible load balance from an online matchmaking algorithm." (§3.3)

It assigns each job to the least-loaded live node satisfying the job's
constraints, with uniform random tie-breaking, at zero overlay cost.  The
whole decision is one vectorised numpy pass over the capability matrix.
"""

from __future__ import annotations

import numpy as np

from repro.grid.resources import CapabilityMatrix
from repro.match.base import Matchmaker
from repro.match.select import CandidateSet


class CentralizedMatchmaker(Matchmaker):
    """Omniscient matchmaking.

    Two modes:

    * ``server_mode=False`` (default, the Figure 2 target): an idealized
      oracle with no single point of failure — the injection node stands
      in as owner-of-record at zero cost.  Use for load-balance studies.
    * ``server_mode=True`` (the churn-experiment comparator): one
      designated node is *the* server — it owns every job (its database
      survives outages via :meth:`DesktopGrid.partition_node`), it never
      runs jobs, and while it is unreachable no job can be matched or
      recovered, the client-server weakness §1 describes.
    """

    name = "centralized"

    def __init__(self, server_mode: bool = False) -> None:
        super().__init__()
        self.server_mode = server_mode
        self._caps: CapabilityMatrix | None = None
        self._eligible: np.ndarray | None = None
        self.server = None

    def bind(self, grid) -> None:
        self.grid = grid
        nodes = grid.node_list
        self._caps = CapabilityMatrix.from_capabilities(
            grid.cfg.spec, [n.capability for n in nodes])
        self._rng = grid.streams["match"]
        # Liveness and load come straight from the grid's columnar
        # NodeRegistry (same dense order as node_list) — the matchmaker
        # no longer shadows them, so the crash/recover/queue-change hooks
        # below are gone.  Only the static eligibility mask is local.
        self._eligible = np.ones(len(nodes), dtype=bool)
        if self.server_mode:
            self.server = nodes[0]
            self._eligible[0] = False  # the server never runs jobs

    # -- owner mapping -------------------------------------------------------

    def find_owner(self, job, start=None):
        """Server mode: the server owns every job (or nothing can proceed
        while it is down).  Oracle mode: the injection node stands in as
        the owner-of-record at zero routing cost."""
        grid = self._require_grid()
        if self.server_mode:
            if self.server is not None and self.server.alive:
                return self.server, 1  # one round trip to the server
            return None, 0             # server unavailable: nothing proceeds
        if start is not None and start.alive:
            return start, 0
        return grid._random_live_node(), 0

    # -- run-node selection ----------------------------------------------------

    def search(self, owner, job) -> CandidateSet:
        """Every live satisfying node, in index order, at zero overlay
        cost.  ``charge_probes=False``: the central index already knows
        every load, so oracle-mode accounting reports zero probes (the
        paper's point is precisely that this knowledge is free only for a
        centralized scheme — under ``probe_mode="rpc"`` the probes become
        real messages and the cost becomes visible)."""
        grid = self._require_grid()
        if self.server_mode and (self.server is None or not self.server.alive):
            return CandidateSet(charge_probes=False)
        mask = self._caps.satisfying_mask(job.profile.requirements) \
            & grid.registry.alive & self._eligible
        tel = grid.telemetry
        if tel.enabled:
            # The oracle "examines" every live satisfying node; recording it
            # makes the decentralized schemes' probe counts comparable.
            tel.metrics.histogram("match.centralized.candidates").observe(
                int(mask.sum()))
        idx = np.flatnonzero(mask)
        if grid.cfg.vectorized and grid.cfg.probe_mode == "oracle":
            # Columnar fast path: hand phase 2 the dense registry indices
            # of the alive∧capable mask and skip materializing the GUID
            # list — oracle selection reads the load column in bulk and
            # resolves only the ids it dispatches to.  (The rpc probe
            # path needs per-candidate GUIDs, so it keeps the list.)
            return CandidateSet(reg_idx=idx, charge_probes=False)
        node_list = grid.node_list
        return CandidateSet(
            candidates=[node_list[int(i)].node_id for i in idx],
            charge_probes=False)

