"""Phase 2 of matchmaking: probe candidates, select, rank fallbacks.

Every matchmaker's :meth:`~repro.match.base.Matchmaker.search` is *phase
1*: a structural overlay search (RN-tree DFS, CAN neighbor gather, TTL
walk, centralized index scan) that returns a :class:`CandidateSet` — the
nodes worth considering plus the overlay hops spent finding them.  This
module is *phase 2*, shared by all matchmakers: decide which candidates
to probe for load, pick a winner, and keep a preference-ordered fallback
list for dispatch failures.

Two probe modes (selected by ``GridConfig.probe_mode``):

* ``"oracle"`` — the historical simulator shortcut: candidate queue
  lengths are read directly in zero virtual time and their latency is
  charged afterwards (:meth:`DesktopGrid.match_delay`).  Cheap and
  deterministic; a dead candidate is invisible until the owner's monitor
  sweep.  This is the default and reproduces pre-pipeline results
  bit-for-bit.
* ``"rpc"`` — load probes are real request/reply messages over
  :class:`repro.sim.rpc.RpcLayer`: each probe costs a round trip of
  virtual time, and a candidate that died after the structural search
  surfaces as a *timeout*, not oracle knowledge.  See
  :meth:`repro.grid.node.GridNode._probe_candidates` for the owner-side
  driver.

Selection policies are pluggable (``GridConfig.selection_policy``):
``least-loaded`` is the paper's rule (probe everyone, pick the minimum,
ties broken uniformly at random), ``random`` skips probing entirely, and
``power-of-d`` probes only ``d`` sampled candidates — the classic
two-choices trade-off between probe traffic and balance.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.system import DesktopGrid


@dataclass
class CandidateSet:
    """Phase-1 output: run-node candidates plus search-cost accounting.

    ``candidates`` holds node GUIDs in *search order* (the order the
    structural search discovered them); policies treat that order as the
    deterministic tie-break baseline.  ``hops``/``pushes`` are the overlay
    messages the search consumed.

    ``charge_probes`` is False for matchmakers whose search already paid
    for load knowledge (the centralized oracle, the TTL walk that reads
    loads as it visits) — oracle-mode accounting then reports zero probes,
    matching the historical per-matchmaker behavior.  ``tie_break`` is
    ``"random"`` (draw from the match RNG stream even for a single
    winner, as the tree/CAN matchmakers always did) or ``"first"``
    (deterministic first-in-search-order, the TTL walk's rule).

    ``reg_idx`` optionally carries the candidates' dense
    :class:`NodeRegistry` indices (same search order) so oracle-mode
    selection can read load columns in bulk instead of probing a dict
    per candidate; a matchmaker attaching it asserts the candidates are
    *unique* (duplicates would change least-loaded tie semantics).  A
    matchmaker may supply ``reg_idx`` with an *empty* ``candidates``
    list only under ``probe_mode="oracle"`` (the rpc probe path needs
    the GUID list).
    """

    candidates: list[int] = field(default_factory=list)
    hops: int = 0
    pushes: int = 0
    charge_probes: bool = True
    tie_break: str = "random"
    reg_idx: "np.ndarray | None" = None

    def __bool__(self) -> bool:
        return bool(self.candidates) \
            or (self.reg_idx is not None and self.reg_idx.size > 0)


class SelectionPolicy(abc.ABC):
    """Decides which candidates to probe and how to rank them."""

    #: Registry name, overridden by subclasses.
    name = "abstract"

    def probe_targets(self, candidates: list[int],
                      rng: "np.random.Generator") -> list[int]:
        """The subset of ``candidates`` whose load should be probed."""
        return list(candidates)

    @abc.abstractmethod
    def rank(self, candidates: list[int], loads: dict[int, int],
             failed: Iterable[int], rng: "np.random.Generator",
             tie_break: str = "random") -> list[int]:
        """Preference-order ``candidates`` given probe results.

        ``loads`` maps probed node id -> reported queue length; ``failed``
        holds probed ids that never answered (rpc timeouts — presumed
        dead, excluded from the ranking).  Unprobed candidates keep their
        search order at the back of the ranking as last-resort fallbacks.
        The first element is the dispatch target; the rest are the
        fallback order for ack-timeout re-dispatch.
        """


class LeastLoadedPolicy(SelectionPolicy):
    """The paper's rule: probe every candidate, run the least loaded.

    Tie-break reproduces the historical per-matchmaker code exactly:
    collect the minimum-load candidates in search order and draw one
    uniformly (one RNG draw *whenever there is a winner*, even a sole
    one — the tree/CAN/centralized matchmakers all drew unconditionally).
    """

    name = "least-loaded"

    def rank(self, candidates, loads, failed, rng, tie_break="random"):
        failed = set(failed)
        probed = [c for c in candidates if c in loads and c not in failed]
        unprobed = [c for c in candidates if c not in loads and c not in failed]
        if not probed:
            return unprobed
        best = min(loads[c] for c in probed)
        winners = [c for c in probed if loads[c] == best]
        if tie_break == "random":
            first = winners[int(rng.integers(0, len(winners)))]
        else:
            first = winners[0]
        order = {c: i for i, c in enumerate(candidates)}
        rest = sorted((c for c in probed if c != first),
                      key=lambda c: (loads[c], order[c]))
        return [first, *rest, *unprobed]


class RandomPolicy(SelectionPolicy):
    """No probing at all: dispatch to a uniformly random candidate.

    The zero-information baseline — one RNG draw, zero probe messages,
    and load balance only as good as random placement gets.
    """

    name = "random"

    def probe_targets(self, candidates, rng):
        return []

    def rank(self, candidates, loads, failed, rng, tie_break="random"):
        failed = set(failed)
        pool = [c for c in candidates if c not in failed]
        if not pool:
            return []
        i = int(rng.integers(0, len(pool)))
        return [pool[i], *pool[:i], *pool[i + 1:]]


class PowerOfDPolicy(SelectionPolicy):
    """Probe only ``d`` sampled candidates; run the least loaded of them.

    The "power of d choices" compromise: most of least-loaded's balance
    at a constant probe cost, independent of how many candidates the
    structural search returned (which for the centralized index is the
    whole satisfying population).
    """

    name = "power-of-d"

    def __init__(self, d: int = 2):
        if d < 1:
            raise ValueError("d must be >= 1")
        self.d = d

    def probe_targets(self, candidates, rng):
        if len(candidates) <= self.d:
            return list(candidates)
        idx = rng.choice(len(candidates), size=self.d, replace=False)
        return [candidates[i] for i in sorted(int(i) for i in idx)]

    def rank(self, candidates, loads, failed, rng, tie_break="random"):
        failed = set(failed)
        ranked = LeastLoadedPolicy().rank(
            [c for c in candidates if c in loads or c in failed],
            loads, failed, rng, tie_break=tie_break)
        fallback = [c for c in candidates
                    if c not in loads and c not in failed]
        return [*ranked, *fallback]


class ProbeRound:
    """Accumulator for one rpc probe fan-out (phase 2, ``probe_mode="rpc"``).

    One instance per matchmaking attempt; each probe's reply or timeout
    feeds it, and :meth:`reply`/:meth:`timeout` return True exactly once —
    when the last outstanding probe settles — signalling that selection
    can run.

    ``span`` optionally holds the open telemetry probe span for this
    fan-out (None when telemetry is off); the owner closes it when the
    round settles, so the trace shows the full probe window including
    the slowest straggler or timeout.
    """

    __slots__ = ("loads", "failed", "outstanding", "span")

    def __init__(self, targets: Iterable[int]):
        self.loads: dict[int, int] = {}
        self.failed: set[int] = set()
        self.outstanding = len(list(targets))
        self.span = None

    def reply(self, node_id: int, load: int) -> bool:
        self.loads[node_id] = load
        self.outstanding -= 1
        return self.outstanding == 0

    def timeout(self, node_id: int) -> bool:
        self.failed.add(node_id)
        self.outstanding -= 1
        return self.outstanding == 0


#: Policy registry: ``GridConfig.selection_policy`` values.
POLICIES = {
    "least-loaded": LeastLoadedPolicy,
    "random": RandomPolicy,
    "power-of-d": PowerOfDPolicy,
}


def make_policy(name: str, probe_fanout: int = 2) -> SelectionPolicy:
    """Instantiate a selection policy by registry name."""
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown selection policy {name!r}; choose from {sorted(POLICIES)}"
        ) from None
    if cls is PowerOfDPolicy:
        return cls(d=probe_fanout)
    return cls()


def oracle_probe(grid: "DesktopGrid", node_ids: Iterable[int]) -> dict[int, int]:
    """Oracle-mode "probing": read queue lengths from the grid's columnar
    registry (same values as the per-node ``queue_len``), in zero time."""
    return grid.registry.loads(node_ids)


def oracle_select(grid: "DesktopGrid", cset: CandidateSet,
                  policy: SelectionPolicy,
                  rng: "np.random.Generator") -> tuple[list[int], int]:
    """Run phase 2 in oracle mode: probe, rank, count chargeable probes.

    Returns ``(ranking, probes)`` where ``ranking`` is preference-ordered
    node ids (empty when there are no candidates) and ``probes`` is the
    probe count to charge the job (0 when the search pre-paid for load
    knowledge, see :attr:`CandidateSet.charge_probes`).

    When the search attached :attr:`CandidateSet.reg_idx` and the policy
    is plain least-loaded, selection runs vectorized over the registry's
    ``queue_len`` column — bit-identical to the scalar rank (same single
    tie-break draw, same preference order), without the per-candidate
    loads dict and Python sort.
    """
    if not cset:
        return [], 0
    if cset.reg_idx is not None and type(policy) is LeastLoadedPolicy:
        return _least_loaded_select_vec(grid, cset, rng)
    targets = policy.probe_targets(cset.candidates, rng)
    loads = oracle_probe(grid, targets)
    ranking = policy.rank(cset.candidates, loads, (), rng,
                          tie_break=cset.tie_break)
    probes = len(targets) if cset.charge_probes else 0
    return ranking, probes


def _least_loaded_select_vec(grid: "DesktopGrid", cset: CandidateSet,
                             rng: "np.random.Generator"
                             ) -> tuple[list[int], int]:
    """Vectorized least-loaded ranking over registry columns.

    Equivalence with :meth:`LeastLoadedPolicy.rank` under oracle probing
    (every candidate probed, none failed, candidates unique):

    * the winner pool is every minimum-load candidate in search order,
      and ``tie_break="random"`` draws once over its size — the same
      ``rng.integers(0, len(winners))`` call;
    * the fallback order is the stable sort by load (ties keep search
      order), exactly the scalar ``sorted(key=(load, order))``;
    * probes charged = number of candidates (all are probed), or 0 when
      the search pre-paid (``charge_probes=False``).

    Without acked dispatch only ``ranking[0]`` (the dispatch target) and
    ``ranking[1]`` (the replicate runner-up / ``len > 1`` check) are
    ever read, so the full fallback chain is skipped and the runner-up
    found with one more O(n) argmin pass instead of a sort — behavior
    is identical because no consumer exists for the tail.
    """
    idx = cset.reg_idx
    loads = grid.registry.queue_len[idx]
    n = int(idx.size)
    if cset.tie_break == "random":
        winners = np.flatnonzero(loads == loads.min())
        w = int(winners[int(rng.integers(0, winners.size))])
    else:
        w = int(loads.argmin())  # first occurrence == first-in-order winner
    candidates = cset.candidates
    if candidates:
        def id_at(p: int) -> int:
            return candidates[p]
    else:
        node_list = grid.node_list

        def id_at(p: int) -> int:
            return node_list[int(idx[p])].node_id

    probes = n if cset.charge_probes else 0
    if n == 1:
        return [id_at(w)], probes
    if not grid.cfg.dispatch_ack:
        masked = loads.copy()
        masked[w] = np.iinfo(masked.dtype).max
        runner_up = int(masked.argmin())
        return [id_at(w), id_at(runner_up)], probes
    order = np.argsort(loads, kind="stable")
    ranking = [id_at(w)]
    ranking.extend(id_at(int(p)) for p in order if int(p) != w)
    return ranking, probes
