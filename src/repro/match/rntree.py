"""The Rendezvous Node Tree matchmaker (paper §3.1).

An aggregation tree embedded in a Chord ring:

* **Parent rule** — a node's parent is the Chord successor of its GUID
  with the lowest set bit cleared (re-clearing while the lookup returns
  the node itself).  Each node computes its parent from purely local
  information plus one DHT lookup, the construction is fully
  decentralized, and with uniformly distributed GUIDs the expected height
  is O(log N); the root is ``successor(0)``.  (Parent ids strictly
  decrease toward 0, so the structure is always a tree.)
* **Hierarchical aggregation** — every node reports its subtree's
  per-resource *maximum available capability* to its parent, so any node
  knows, per child subtree, the best capability reachable below it.
* **Matchmaking** — the job is first mapped to a random owner (uniform
  GUID hash), which performs a *limited random walk* to decorrelate hot
  spots; the search then proceeds through the walk endpoint's subtree,
  climbing to ancestors only when the subtree has no satisfactory
  candidate, pruned by the aggregated maxima, and continues until at
  least ``k`` capable nodes are found (*extended search*).  The
  least-loaded of the ``k`` candidates (by direct probe) runs the job.
"""

from __future__ import annotations

import bisect
import heapq
from typing import TYPE_CHECKING

import numpy as np

from repro.dht.chord import ChordOverlay
from repro.grid.resources import satisfies
from repro.match.base import Matchmaker
from repro.match.select import CandidateSet
from repro.match.storage import ChordResultStorage

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.node import GridNode


class _TreeNode:
    """Per-node RN-Tree state (parent, children, aggregated maxima)."""

    __slots__ = ("node_id", "parent_id", "children", "subtree_max")

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.parent_id: int | None = None
        self.children: list[int] = []
        self.subtree_max: tuple[float, ...] = ()


class RendezvousTreeMatchmaker(ChordResultStorage, Matchmaker):
    name = "rn-tree"

    def __init__(self, k: int = 4, random_walk_len: int = 3):
        super().__init__()
        if k < 1:
            raise ValueError("k must be >= 1")
        if random_walk_len < 0:
            raise ValueError("random_walk_len must be >= 0")
        self.k = k
        self.random_walk_len = random_walk_len
        self.chord: ChordOverlay | None = None
        self.tree: dict[int, _TreeNode] = {}
        #: Parent-probe index for incremental maintenance: every ring
        #: point a node evaluated while computing its parent, as a sorted
        #: ``(point, node_id)`` list plus a per-node reverse map.  A churn
        #: event at id W only changes ``successor(t)`` for ``t`` in the
        #: arc ``(pred(W), W]``, so only nodes probing that arc can
        #: re-parent — everyone else's tree edge is provably unchanged.
        self._probe_list: list[tuple[int, int]] = []
        self._probe_points: dict[int, tuple[int, ...]] = {}
        #: node_id -> sorted live finger ids, for the random-walk step.
        #: Fingers only change on churn (crash_repair / recover / join),
        #: so the per-search set-build + sort is paid once per node per
        #: churn epoch instead of per walk step.  Values are identical to
        #: the uncached computation, so rng draws are bit-identical.
        self._walk_choices: dict[int, tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def bind(self, grid) -> None:
        self.grid = grid
        self._rng = grid.streams["match"]
        self.chord = ChordOverlay(grid.streams["chord"])
        self._bind_overlay_telemetry(self.chord)
        self.chord.build([n.node_id for n in grid.node_list])
        self._rebuild_tree()

    def _rebuild_tree(self) -> None:
        self.tree = {}
        self._probe_list = []
        self._probe_points = {}
        self._walk_choices.clear()
        for node in self.chord.live_nodes():
            self.tree[node.node_id] = _TreeNode(node.node_id)
        for tnode in self.tree.values():
            parent_id, probes = self._parent_probes(tnode.node_id)
            tnode.parent_id = parent_id
            self._probe_points[tnode.node_id] = tuple(probes)
            for pt in probes:
                self._probe_list.append((pt, tnode.node_id))
        self._probe_list.sort()
        for tnode in self.tree.values():
            if tnode.parent_id is not None:
                self.tree[tnode.parent_id].children.append(tnode.node_id)
        self._recompute_aggregates()

    def _parent_of(self, node_id: int) -> int | None:
        return self._parent_probes(node_id)[0]

    def _parent_probes(self, node_id: int) -> tuple[int | None, list[int]]:
        """Clear the lowest set bit until the successor differs from us.

        Also returns every ring point probed along the way — the probe
        index needs them to find nodes whose parent a churn event at a
        given arc can change.
        """
        x = node_id
        probes: list[int] = []
        while x:
            x &= x - 1  # clear lowest set bit
            probes.append(x)
            succ = self.chord.successor_of(x)
            if succ is not None and succ.node_id != node_id:
                return succ.node_id, probes
            if x == 0:
                break
        return None, probes  # we are successor(0): the root

    def _recompute_aggregates(self) -> None:
        """Bottom-up max aggregation.  Parent ids are strictly smaller than
        child ids, so descending-id order is a valid topological order."""
        grid = self._require_grid()
        for nid in sorted(self.tree, reverse=True):
            tnode = self.tree[nid]
            best = list(grid.nodes[nid].capability)
            for child_id in tnode.children:
                for d, v in enumerate(self.tree[child_id].subtree_max):
                    if v > best[d]:
                        best[d] = v
            tnode.subtree_max = tuple(best)
            if tnode.parent_id is not None and tnode.parent_id not in self.tree:
                raise AssertionError("dangling parent pointer")

    # ------------------------------------------------------------------
    # incremental maintenance (dirty-path aggregation, probe index)
    # ------------------------------------------------------------------

    def _forget_probes(self, node_id: int) -> None:
        for pt in self._probe_points.pop(node_id, ()):
            idx = bisect.bisect_left(self._probe_list, (pt, node_id))
            if idx < len(self._probe_list) \
                    and self._probe_list[idx] == (pt, node_id):
                self._probe_list.pop(idx)

    def _record_probes(self, node_id: int, probes: list[int]) -> None:
        self._probe_points[node_id] = tuple(probes)
        for pt in probes:
            bisect.insort(self._probe_list, (pt, node_id))

    def _probers_in_arc(self, a: int, b: int) -> list[int]:
        """Node ids holding a parent probe in the ring interval ``(a, b]``."""
        pl = self._probe_list

        def points_in(lo_pt: int, hi_pt: int) -> list[int]:
            lo = bisect.bisect_right(pl, lo_pt, key=lambda t: t[0])
            hi = bisect.bisect_right(pl, hi_pt, key=lambda t: t[0])
            return [nid for _, nid in pl[lo:hi]]

        if a < b:
            out = points_in(a, b)
        else:  # wrapped arc
            top = (1 << self.chord.bits) - 1
            out = points_in(a, top) + points_in(-1, b)
        return sorted(set(out))

    def _reassign_parent(self, node_id: int, dirty: set[int]) -> None:
        """Recompute one node's parent edge, updating the probe index and
        children lists; both old and new parents join the dirty set."""
        tnode = self.tree.get(node_id)
        if tnode is None:
            return
        new_parent, probes = self._parent_probes(node_id)
        self._forget_probes(node_id)
        self._record_probes(node_id, probes)
        if new_parent == tnode.parent_id:
            return
        old_parent = tnode.parent_id
        if old_parent is not None and old_parent in self.tree:
            self.tree[old_parent].children.remove(node_id)
            dirty.add(old_parent)
        tnode.parent_id = new_parent
        if new_parent is not None:
            bisect.insort(self.tree[new_parent].children, node_id)
            dirty.add(new_parent)

    def _propagate(self, dirty: set[int]) -> None:
        """Recompute subtree maxima upward from the dirty nodes, stopping
        wherever the aggregate comes out unchanged.  Parent ids are
        strictly smaller than child ids, so popping a max-heap visits
        children before their parents (a valid topological order)."""
        grid = self._require_grid()
        heap = [-nid for nid in dirty if nid in self.tree]
        heapq.heapify(heap)
        seen = set(heap)
        while heap:
            nid = -heapq.heappop(heap)
            tnode = self.tree[nid]
            best = list(grid.nodes[nid].capability)
            for child_id in tnode.children:
                for d, v in enumerate(self.tree[child_id].subtree_max):
                    if v > best[d]:
                        best[d] = v
            new = tuple(best)
            if new == tnode.subtree_max:
                continue
            tnode.subtree_max = new
            pid = tnode.parent_id
            if pid is not None and -pid not in seen:
                seen.add(-pid)
                heapq.heappush(heap, -pid)

    def _tree_remove(self, dead_id: int) -> None:
        """Splice a crashed node out (chord membership already updated)."""
        dead = self.tree.pop(dead_id, None)
        if dead is None:
            return
        self._forget_probes(dead_id)
        dirty: set[int] = set()
        if dead.parent_id is not None and dead.parent_id in self.tree:
            self.tree[dead.parent_id].children.remove(dead_id)
            dirty.add(dead.parent_id)
        pred = self.chord.predecessor_id(dead_id)
        for nid in self._probers_in_arc(pred, dead_id):
            self._reassign_parent(nid, dirty)
        self._propagate(dirty)

    def _tree_insert(self, new_id: int) -> None:
        """Splice a joined node in (chord membership already updated)."""
        if new_id in self.tree:
            return
        tnode = _TreeNode(new_id)
        self.tree[new_id] = tnode
        parent_id, probes = self._parent_probes(new_id)
        tnode.parent_id = parent_id
        self._record_probes(new_id, probes)
        dirty: set[int] = {new_id}
        if parent_id is not None:
            bisect.insort(self.tree[parent_id].children, new_id)
            dirty.add(parent_id)
        pred = self.chord.predecessor_id(new_id)
        for nid in self._probers_in_arc(pred, new_id):
            if nid != new_id:
                self._reassign_parent(nid, dirty)
        self._propagate(dirty)

    # ------------------------------------------------------------------
    # owner mapping (uniform GUID hash over the Chord ring)
    # ------------------------------------------------------------------

    def find_owner(self, job, start=None):
        grid = self._require_grid()
        chord_start = None
        if start is not None:
            chord_start = self.chord.nodes.get(start.node_id)
        result = self.chord.route(job.guid, start=chord_start)
        if not result.success:
            return None, result.hops
        return grid.nodes[result.owner.node_id], result.hops

    # ------------------------------------------------------------------
    # run-node search
    # ------------------------------------------------------------------

    def search(self, owner: "GridNode", job) -> CandidateSet:
        req = job.profile.requirements
        hops = 0

        # Limited random walk from the owner for dynamic load spreading.
        cur_id = owner.node_id
        for _ in range(self.random_walk_len):
            nxt = self._random_neighbor(cur_id)
            if nxt is None:
                break
            cur_id = nxt
            hops += 1

        candidates, search_hops = self._extended_search(cur_id, req, self.k)
        hops += search_hops
        grid = self._require_grid()
        if grid.cfg.vectorized and candidates:
            # Attach the candidates' dense registry indices (search order;
            # the tree search visits each node at most once, so they are
            # unique) — oracle selection then ranks over the registry's
            # load column in bulk instead of building a per-candidate
            # loads dict.
            index = grid.registry.index
            reg_idx = np.fromiter((index[c] for c in candidates),
                                  dtype=np.int64, count=len(candidates))
            return CandidateSet(candidates=candidates, hops=hops,
                                reg_idx=reg_idx)
        return CandidateSet(candidates=candidates, hops=hops)

    def _random_neighbor(self, node_id: int) -> int | None:
        """A uniformly random live finger of ``node_id`` (walk step)."""
        choices = self._walk_choices.get(node_id)
        if choices is None:
            node = self.chord.nodes.get(node_id)
            if node is None or not node.alive:
                return None
            choices = self._walk_choices[node_id] = tuple(sorted(
                {f.node_id for f in node.fingers
                 if f is not None and f.alive and f.node_id != node_id}))
        if not choices:
            return None
        return choices[int(self._rng.integers(0, len(choices)))]

    def _extended_search(self, start_id: int, req, k: int) -> tuple[list[int], int]:
        """Search the start's subtree, then ancestors' other subtrees, for
        up to ``k`` nodes satisfying ``req``.  Each tree-edge traversal
        costs one hop; pruning uses the aggregated subtree maxima."""
        grid = self._require_grid()
        if start_id not in self.tree:
            return [], 0
        candidates: list[int] = []
        hops = 0

        tree = self.tree
        nodes = grid.nodes

        def dfs(root_id: int, charge_entry: bool) -> None:
            nonlocal hops
            stack = [(root_id, charge_entry)]
            pop = stack.pop
            push = stack.append
            found = candidates.append
            # ``satisfies`` is inlined below (for/else = all dims meet the
            # requirement): this loop dominates extended-search time and
            # the call overhead per visited node/child was measurable.
            while stack and len(candidates) < k:
                nid, charge = pop()
                if charge:
                    hops += 1
                tnode = tree[nid]
                gnode = nodes[nid]
                if gnode.alive:
                    for c, r in zip(gnode.capability, req):
                        if c < r:
                            break
                    else:
                        found(nid)
                for child_id in tnode.children:
                    if len(candidates) >= k and candidates:
                        break
                    for c, r in zip(tree[child_id].subtree_max, req):
                        if c < r:
                            break
                    else:
                        push((child_id, True))

        # Phase 1: the subtree rooted at the search start (we are already
        # there, so visiting the root itself is free).
        dfs(start_id, charge_entry=False)

        # Phase 2: climb to ancestors, searching their *other* subtrees.
        came_from = start_id
        cur = self.tree[start_id].parent_id
        while cur is not None and len(candidates) < k:
            hops += 1  # move up one tree edge
            tnode = self.tree[cur]
            gnode = grid.nodes[cur]
            if gnode.alive and satisfies(gnode.capability, req) \
                    and cur not in candidates:
                candidates.append(cur)
            for child_id in tnode.children:
                if len(candidates) >= k:
                    break
                if child_id == came_from:
                    continue
                if satisfies(self.tree[child_id].subtree_max, req):
                    dfs(child_id, charge_entry=True)
            came_from = cur
            cur = tnode.parent_id
        return candidates, hops

    # ------------------------------------------------------------------
    # churn
    # ------------------------------------------------------------------

    def on_crash(self, node) -> None:
        self._walk_choices.clear()
        self.chord.crash_repair(node.node_id)
        if self.chord.size <= 2:
            self._rebuild_tree()
            return
        self._tree_remove(node.node_id)

    def on_join(self, node) -> None:
        self._walk_choices.clear()
        if node.node_id in self.chord.nodes:
            self.chord.recover(node.node_id)
        else:  # pragma: no cover - populations are fixed in current drivers
            from repro.dht.chord.node import ChordNode
            self.chord.oracle_join(ChordNode(node.node_id))
        if self.chord.size <= 3:
            self._rebuild_tree()
            return
        self._tree_insert(node.node_id)
