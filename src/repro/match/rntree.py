"""The Rendezvous Node Tree matchmaker (paper §3.1).

An aggregation tree embedded in a Chord ring:

* **Parent rule** — a node's parent is the Chord successor of its GUID
  with the lowest set bit cleared (re-clearing while the lookup returns
  the node itself).  Each node computes its parent from purely local
  information plus one DHT lookup, the construction is fully
  decentralized, and with uniformly distributed GUIDs the expected height
  is O(log N); the root is ``successor(0)``.  (Parent ids strictly
  decrease toward 0, so the structure is always a tree.)
* **Hierarchical aggregation** — every node reports its subtree's
  per-resource *maximum available capability* to its parent, so any node
  knows, per child subtree, the best capability reachable below it.
* **Matchmaking** — the job is first mapped to a random owner (uniform
  GUID hash), which performs a *limited random walk* to decorrelate hot
  spots; the search then proceeds through the walk endpoint's subtree,
  climbing to ancestors only when the subtree has no satisfactory
  candidate, pruned by the aggregated maxima, and continues until at
  least ``k`` capable nodes are found (*extended search*).  The
  least-loaded of the ``k`` candidates (by direct probe) runs the job.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.dht.chord import ChordOverlay
from repro.grid.resources import satisfies
from repro.match.base import Matchmaker
from repro.match.select import CandidateSet
from repro.match.storage import ChordResultStorage

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.node import GridNode


class _TreeNode:
    """Per-node RN-Tree state (parent, children, aggregated maxima)."""

    __slots__ = ("node_id", "parent_id", "children", "subtree_max")

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.parent_id: int | None = None
        self.children: list[int] = []
        self.subtree_max: tuple[float, ...] = ()


class RendezvousTreeMatchmaker(ChordResultStorage, Matchmaker):
    name = "rn-tree"

    def __init__(self, k: int = 4, random_walk_len: int = 3):
        super().__init__()
        if k < 1:
            raise ValueError("k must be >= 1")
        if random_walk_len < 0:
            raise ValueError("random_walk_len must be >= 0")
        self.k = k
        self.random_walk_len = random_walk_len
        self.chord: ChordOverlay | None = None
        self.tree: dict[int, _TreeNode] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def bind(self, grid) -> None:
        self.grid = grid
        self._rng = grid.streams["match"]
        self.chord = ChordOverlay(grid.streams["chord"])
        self._bind_overlay_telemetry(self.chord)
        self.chord.build([n.node_id for n in grid.node_list])
        self._rebuild_tree()

    def _rebuild_tree(self) -> None:
        self.tree = {}
        for node in self.chord.live_nodes():
            self.tree[node.node_id] = _TreeNode(node.node_id)
        for tnode in self.tree.values():
            tnode.parent_id = self._parent_of(tnode.node_id)
        for tnode in self.tree.values():
            if tnode.parent_id is not None:
                self.tree[tnode.parent_id].children.append(tnode.node_id)
        self._recompute_aggregates()

    def _parent_of(self, node_id: int) -> int | None:
        """Clear the lowest set bit until the successor differs from us."""
        x = node_id
        while x:
            x &= x - 1  # clear lowest set bit
            succ = self.chord.successor_of(x)
            if succ is not None and succ.node_id != node_id:
                return succ.node_id
            if x == 0:
                break
        return None  # we are successor(0): the root

    def _recompute_aggregates(self) -> None:
        """Bottom-up max aggregation.  Parent ids are strictly smaller than
        child ids, so descending-id order is a valid topological order."""
        grid = self._require_grid()
        for nid in sorted(self.tree, reverse=True):
            tnode = self.tree[nid]
            best = list(grid.nodes[nid].capability)
            for child_id in tnode.children:
                for d, v in enumerate(self.tree[child_id].subtree_max):
                    if v > best[d]:
                        best[d] = v
            tnode.subtree_max = tuple(best)
            if tnode.parent_id is not None and tnode.parent_id not in self.tree:
                raise AssertionError("dangling parent pointer")

    # ------------------------------------------------------------------
    # owner mapping (uniform GUID hash over the Chord ring)
    # ------------------------------------------------------------------

    def find_owner(self, job, start=None):
        grid = self._require_grid()
        chord_start = None
        if start is not None:
            chord_start = self.chord.nodes.get(start.node_id)
        result = self.chord.route(job.guid, start=chord_start)
        if not result.success:
            return None, result.hops
        return grid.nodes[result.owner.node_id], result.hops

    # ------------------------------------------------------------------
    # run-node search
    # ------------------------------------------------------------------

    def search(self, owner: "GridNode", job) -> CandidateSet:
        req = job.profile.requirements
        hops = 0

        # Limited random walk from the owner for dynamic load spreading.
        cur_id = owner.node_id
        for _ in range(self.random_walk_len):
            nxt = self._random_neighbor(cur_id)
            if nxt is None:
                break
            cur_id = nxt
            hops += 1

        candidates, search_hops = self._extended_search(cur_id, req, self.k)
        hops += search_hops
        return CandidateSet(candidates=candidates, hops=hops)

    def _random_neighbor(self, node_id: int) -> int | None:
        """A uniformly random live finger of ``node_id`` (walk step)."""
        node = self.chord.nodes.get(node_id)
        if node is None or not node.alive:
            return None
        choices = sorted({f.node_id for f in node.fingers
                          if f is not None and f.alive and f.node_id != node_id})
        if not choices:
            return None
        return choices[int(self._rng.integers(0, len(choices)))]

    def _extended_search(self, start_id: int, req, k: int) -> tuple[list[int], int]:
        """Search the start's subtree, then ancestors' other subtrees, for
        up to ``k`` nodes satisfying ``req``.  Each tree-edge traversal
        costs one hop; pruning uses the aggregated subtree maxima."""
        grid = self._require_grid()
        if start_id not in self.tree:
            return [], 0
        candidates: list[int] = []
        hops = 0

        def dfs(root_id: int, charge_entry: bool) -> None:
            nonlocal hops
            stack = [(root_id, charge_entry)]
            while stack and len(candidates) < k:
                nid, charge = stack.pop()
                if charge:
                    hops += 1
                tnode = self.tree[nid]
                gnode = grid.nodes[nid]
                if gnode.alive and satisfies(gnode.capability, req):
                    candidates.append(nid)
                for child_id in tnode.children:
                    if len(candidates) >= k and candidates:
                        break
                    if satisfies(self.tree[child_id].subtree_max, req):
                        stack.append((child_id, True))

        # Phase 1: the subtree rooted at the search start (we are already
        # there, so visiting the root itself is free).
        dfs(start_id, charge_entry=False)

        # Phase 2: climb to ancestors, searching their *other* subtrees.
        came_from = start_id
        cur = self.tree[start_id].parent_id
        while cur is not None and len(candidates) < k:
            hops += 1  # move up one tree edge
            tnode = self.tree[cur]
            gnode = grid.nodes[cur]
            if gnode.alive and satisfies(gnode.capability, req) \
                    and cur not in candidates:
                candidates.append(cur)
            for child_id in tnode.children:
                if len(candidates) >= k:
                    break
                if child_id == came_from:
                    continue
                if satisfies(self.tree[child_id].subtree_max, req):
                    dfs(child_id, charge_entry=True)
            came_from = cur
            cur = tnode.parent_id
        return candidates, hops

    # ------------------------------------------------------------------
    # churn
    # ------------------------------------------------------------------

    def on_crash(self, node) -> None:
        self.chord.crash(node.node_id)
        self.chord.repair()
        self._rebuild_tree()

    def on_join(self, node) -> None:
        if node.node_id in self.chord.nodes:
            self.chord.recover(node.node_id)
        else:  # pragma: no cover - populations are fixed in current drivers
            from repro.dht.chord.node import ChordNode
            self.chord.oracle_join(ChordNode(node.node_id))
        self._rebuild_tree()
