"""TTL-scoped random-walk resource discovery — related-work baseline (§4).

"TTL-based mechanisms are relatively simple but effective ways to find a
resource ... without incurring too much overhead in the search.  However,
such mechanisms may fail to find a resource capable of running a given
job, even though such a resource exists somewhere in the network."

The walk runs over the Chord overlay's finger graph (any connected overlay
graph works; using the same substrate keeps the comparison fair).  The
first visited node that satisfies the constraints with a queue no longer
than ``accept_queue`` is taken; when the TTL expires, the best satisfying
node seen (least loaded) is used; if *no* visited node satisfies the
constraints the match fails — the failure mode the paper criticizes.
"""

from __future__ import annotations

from repro.dht.chord import ChordOverlay
from repro.grid.resources import satisfies
from repro.match.base import Matchmaker
from repro.match.select import CandidateSet
from repro.match.storage import ChordResultStorage


class TTLWalkMatchmaker(ChordResultStorage, Matchmaker):
    name = "ttl-walk"

    def __init__(self, ttl: int | None = None, accept_queue: int = 1):
        """``ttl=None`` auto-sizes to ``2 * log2(N)`` at bind time."""
        super().__init__()
        self._requested_ttl = ttl
        self.accept_queue = accept_queue
        self.ttl = ttl or 0
        self.chord: ChordOverlay | None = None

    def bind(self, grid) -> None:
        self.grid = grid
        self._rng = grid.streams["match"]
        self.chord = ChordOverlay(grid.streams["chord"])
        self._bind_overlay_telemetry(self.chord)
        self.chord.build([n.node_id for n in grid.node_list])
        if self._requested_ttl is None:
            self.ttl = max(4, 2 * max(1, (len(grid.node_list) - 1).bit_length()))
        else:
            self.ttl = self._requested_ttl

    def find_owner(self, job, start=None):
        grid = self._require_grid()
        chord_start = self.chord.nodes.get(start.node_id) if start is not None else None
        result = self.chord.route(job.guid, start=chord_start)
        if not result.success:
            return None, result.hops
        return grid.nodes[result.owner.node_id], result.hops

    def search(self, owner, job) -> CandidateSet:
        """Walk until a lightly-loaded satisfying node is found or the TTL
        expires.  The early-accept check reads loads *during* the walk —
        that is the walk's own termination rule (each visited node knows
        its own queue), so it stays in phase 1; the visit-ordered
        satisfying nodes become the candidate set and the shared phase-2
        pipeline picks the least loaded with deterministic first-visited
        tie-breaking (``tie_break="first"``), preserving the historical
        walk semantics.  ``charge_probes=False``: visiting a node already
        paid the message that learned its load."""
        grid = self._require_grid()
        req = job.profile.requirements
        cur = self.chord.nodes.get(owner.node_id)
        if cur is None or not cur.alive:
            return CandidateSet(charge_probes=False, tie_break="first")
        visited: set[int] = set()
        candidates: list[int] = []
        hops = 0
        for step in range(self.ttl + 1):
            if cur.node_id not in visited:
                visited.add(cur.node_id)
                gnode = grid.nodes[cur.node_id]
                if gnode.alive and satisfies(gnode.capability, req):
                    candidates.append(cur.node_id)
                    if gnode.queue_len <= self.accept_queue:
                        # Acceptably idle: stop the walk here.  Every
                        # earlier candidate has a strictly longer queue
                        # (it failed this check), so this node is the
                        # strict least-loaded of the set and phase 2
                        # selects it; the earlier ones stay as fallbacks.
                        return CandidateSet(candidates=candidates,
                                            hops=hops, charge_probes=False,
                                            tie_break="first")
            if step == self.ttl:
                break
            nxt = self._walk_step(cur, visited)
            if nxt is None:
                break
            cur = nxt
            hops += 1
        # May be empty despite feasible nodes — the failure mode §4 notes.
        return CandidateSet(candidates=candidates, hops=hops,
                            charge_probes=False, tie_break="first")

    def _walk_step(self, cur, visited):
        """Uniform random live finger, preferring unvisited ones."""
        fingers = {f.node_id: f for f in cur.fingers
                   if f is not None and f.alive and f.node_id != cur.node_id}
        for s in cur.successors:
            if s.alive and s.node_id != cur.node_id:
                fingers.setdefault(s.node_id, s)
        if not fingers:
            return None
        unvisited = sorted(nid for nid in fingers if nid not in visited)
        pool = unvisited if unvisited else sorted(fingers)
        return fingers[pool[int(self._rng.integers(0, len(pool)))]]

    def on_crash(self, node) -> None:
        self.chord.crash(node.node_id)
        self.chord.repair()

    def on_join(self, node) -> None:
        if node.node_id in self.chord.nodes:
            self.chord.recover(node.node_id)
        self.chord.repair()
