"""The matchmaker interface shared by all five algorithms."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.match.select import CandidateSet, oracle_select

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.job import Job
    from repro.grid.node import GridNode
    from repro.grid.system import DesktopGrid


@dataclass
class MatchResult:
    """Outcome of a run-node search.

    ``hops`` counts overlay/tree messages spent searching, ``probes``
    counts direct load queries to candidates, ``pushes`` counts load-aware
    job forwarding steps (pushing CAN only).  Together they are the paper's
    "matchmaking cost".
    """

    node: "GridNode | None"
    hops: int = 0
    probes: int = 0
    pushes: int = 0

    def __bool__(self) -> bool:
        return self.node is not None


class Matchmaker(abc.ABC):
    """A pluggable matchmaking mechanism.

    Lifecycle: construct with algorithm parameters, then :meth:`bind` to a
    grid (which builds any overlay from the grid's node population), then
    serve :meth:`find_owner` / :meth:`find_run_node` queries and track
    membership churn via :meth:`on_crash` / :meth:`on_join`.
    """

    #: Registry name, overridden by subclasses.
    name = "abstract"

    def __init__(self) -> None:
        self.grid: "DesktopGrid | None" = None

    @abc.abstractmethod
    def bind(self, grid: "DesktopGrid") -> None:
        """Attach to ``grid`` and build internal structures over its nodes."""

    @abc.abstractmethod
    def find_owner(self, job: "Job", start: "GridNode | None" = None
                   ) -> tuple["GridNode | None", int]:
        """Map ``job`` to its owner node; returns (owner, overlay hops).

        ``start`` is the node initiating the routing (the injection node on
        first submission, the run node during owner-failure recovery).
        """

    @abc.abstractmethod
    def search(self, owner: "GridNode", job: "Job") -> CandidateSet:
        """Phase 1: structural search for run-node candidates from ``owner``.

        Returns the satisfying candidates (in discovery order) plus the
        overlay hops/pushes the search consumed.  Load probing and final
        selection are phase 2, shared across matchmakers — see
        :mod:`repro.match.select`.
        """

    def find_run_node(self, owner: "GridNode", job: "Job") -> MatchResult:
        """Find a run node satisfying ``job``'s requirements from ``owner``.

        Convenience one-shot API: phase-1 :meth:`search` followed by
        phase-2 oracle selection under the grid's configured policy.  The
        grid's dispatch path drives the two phases separately (rpc-mode
        probing is asynchronous); this method is the synchronous
        equivalent and is what oracle-mode matchmaking uses.
        """
        grid = self._require_grid()
        cset = self.search(owner, job)
        ranking, probes = oracle_select(grid, cset, grid.selection_policy,
                                        grid.streams["match"])
        node = grid.nodes[ranking[0]] if ranking else None
        return MatchResult(node, hops=cset.hops, probes=probes,
                           pushes=cset.pushes)

    # -- membership churn (default: no structure to maintain) ---------------

    def on_crash(self, node: "GridNode") -> None:
        """Called after a grid node crashes."""

    def on_join(self, node: "GridNode") -> None:
        """Called after a grid node (re)joins."""

    def note_queue_change(self, node: "GridNode") -> None:
        """Called whenever a node's queue length changes (load tracking)."""

    # -- DHT result storage (§2: results may be returned "as a pointer to
    # -- the result (another GUID)"; matchmakers with an overlay implement
    # -- these over its replicated key-value service) ------------------------

    def store_result(self, job: "Job", payload) -> tuple[bool, int]:
        """Store a job's result in the overlay; returns (stored, hops).

        Default: no overlay storage — the grid falls back to returning the
        result inline.
        """
        return False, 0

    def fetch_result(self, job: "Job") -> tuple[object | None, int]:
        """Fetch a result previously stored; returns (value | None, hops)."""
        return None, 0

    def _require_grid(self) -> "DesktopGrid":
        if self.grid is None:
            raise RuntimeError(f"{type(self).__name__} is not bound to a grid")
        return self.grid

    # -- telemetry ----------------------------------------------------------

    def _bind_overlay_telemetry(self, *overlays) -> None:
        """Point owned overlays at the grid's telemetry sink (bind-time
        helper).  No-op for grids without telemetry: overlays keep their
        local LookupStats only."""
        tel = getattr(self._require_grid(), "telemetry", None)
        if tel is not None and tel.enabled:
            for overlay in overlays:
                overlay.telemetry = tel
