"""Load-aware pushing CAN matchmaker (paper §3.3, "ongoing work").

"The basic concept is that when a new job is inserted into the system and
routed to the owner node, the job is pushed into an underloaded region in
the CAN space.  To determine whether to initiate pushing of a job, a fixed
amount of current system load information is propagated along each
dimension in the space.  If the overall system is lightly loaded, the job
can be pushed into the upper regions of the space (farther from the
origin) and utilize the more capable nodes in the system."

Reconstruction (the paper gives the concept, not the algorithm):

* Every refresh interval, each node recomputes a per-dimension
  **up-region load estimate**: the smoothed minimum, over neighbors that
  abut it from above along that dimension, of the neighbor's queue length
  blended with the neighbor's own estimate.  Estimates therefore diffuse
  one hop per refresh, exactly like the soft-state load exchange basic
  CAN matchmaking already assumes, and carry a *fixed amount* of
  information per dimension.
* At matchmaking time, if the best local candidate's queue exceeds the
  lightest upward region estimate by more than ``push_margin``, the job
  is pushed one zone up along that lightest dimension; this repeats (up
  to ``max_pushes``) until the local candidates are competitive.
  Pushing farther from the origin can only *gain* capability, so a
  satisfiable job never becomes unsatisfiable by pushing.
"""

from __future__ import annotations

import math

from repro.dht.can import CANNode
from repro.match.can_match import CANMatchmaker
from repro.match.select import CandidateSet
from repro.sim.process import PeriodicTask


class PushingCANMatchmaker(CANMatchmaker):
    name = "can-push"

    def __init__(self, use_virtual_dimension: bool = True,
                 climb_limit: int = 64,
                 push_margin: float = 0.0,
                 max_pushes: int = 32,
                 load_refresh_interval: float = 5.0,
                 blend: float = 0.5):
        super().__init__(use_virtual_dimension=use_virtual_dimension,
                         climb_limit=climb_limit)
        if not 0.0 <= blend <= 1.0:
            raise ValueError("blend must be in [0, 1]")
        self.push_margin = push_margin
        self.max_pushes = max_pushes
        self.load_refresh_interval = load_refresh_interval
        self.blend = blend
        #: node_id -> per-resource-dimension up-region load estimate.
        self._up_load: dict[int, list[float]] = {}
        self._refresh_task: PeriodicTask | None = None

    # ------------------------------------------------------------------
    # construction / load diffusion
    # ------------------------------------------------------------------

    def bind(self, grid) -> None:
        super().bind(grid)
        self.refresh_load_info()
        self._refresh_task = PeriodicTask(
            grid.sim, self.load_refresh_interval, self.refresh_load_info,
            rng=grid.rng_protocol, jitter=0.1,
        )

    def refresh_load_info(self) -> None:
        """One soft-state diffusion round: every node recomputes its
        up-region estimates from its above-neighbors' last-round state."""
        tel = self.grid.telemetry if self.grid is not None else None
        if tel is not None and tel.enabled:
            tel.metrics.counter("match.can-push.load_refresh_rounds").inc()
        grid = self._require_grid()
        rdims = grid.cfg.spec.dims
        prev = self._up_load
        new: dict[int, list[float]] = {}
        for node in self.can.live_nodes():
            ests = []
            for d in range(rdims):
                best = math.inf
                for nb in self._above_neighbors(node, d):
                    nb_queue = float(grid.nodes[nb.node_id].queue_len)
                    nb_prev = prev.get(nb.node_id, [math.inf] * rdims)[d]
                    if math.isinf(nb_prev):
                        est = nb_queue
                    else:
                        est = (1 - self.blend) * nb_queue + self.blend * nb_prev
                    if est < best:
                        best = est
                ests.append(best)
            new[node.node_id] = ests
        self._up_load = new

    @staticmethod
    def _above_neighbors(node: CANNode, dim: int) -> list[CANNode]:
        """Live neighbors abutting ``node`` from above along ``dim``."""
        out = []
        hi = node.zone.hi[dim]
        for nb in node.neighbors:
            if nb.alive and any(z.lo[dim] == hi for z in nb.zones):
                out.append(nb)
        return out

    # ------------------------------------------------------------------
    # run-node selection with pushing
    # ------------------------------------------------------------------

    def search(self, owner, job) -> CandidateSet:
        grid = self._require_grid()
        req = job.profile.requirements
        can_owner = self.can.nodes.get(owner.node_id)
        if can_owner is None or not can_owner.alive:
            return CandidateSet()
        anchor, hops = self._climb_to_satisfying(can_owner, req)
        if anchor is None:
            return CandidateSet(hops=hops)

        # The push decision consumes the *diffused* soft-state load
        # estimates (refreshed every load_refresh_interval), so it stays a
        # phase-1 search heuristic even under rpc probing: the candidate
        # loads read here stand in for the gossiped state basic CAN
        # matchmaking already assumes, not for a fresh probe.
        pushes = 0
        while pushes < self.max_pushes:
            candidates = self._candidates(anchor, req)
            local_best = min(
                (grid.nodes[c.node_id].queue_len for c in candidates),
                default=math.inf,
            )
            dim, up_est = self._lightest_up_region(anchor)
            if dim is None or up_est + self.push_margin >= local_best:
                break
            nxt = self._push_step(anchor, dim)
            if nxt is None:
                break
            anchor = nxt
            pushes += 1
        return self._candidate_set(anchor, req, extra_hops=hops,
                                   pushes=pushes)

    def _lightest_up_region(self, node: CANNode) -> tuple[int | None, float]:
        ests = self._up_load.get(node.node_id)
        if not ests:
            return None, math.inf
        dim = min(range(len(ests)), key=lambda d: ests[d])
        return (dim, ests[dim]) if not math.isinf(ests[dim]) else (None, math.inf)

    def _push_step(self, node: CANNode, dim: int) -> CANNode | None:
        """Move one zone up along ``dim``, toward the lightest onward load."""
        grid = self._require_grid()
        above = self._above_neighbors(node, dim)
        if not above:
            return None

        def onward(nb: CANNode) -> float:
            """Neighbor's own queue blended with its best onward estimate."""
            queue = float(grid.nodes[nb.node_id].queue_len)
            ests = self._up_load.get(nb.node_id)
            best_est = min(ests) if ests else math.inf
            if math.isinf(best_est):
                return queue
            return queue + self.blend * best_est

        return min(above, key=lambda nb: (onward(nb), nb.node_id))
