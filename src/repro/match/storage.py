"""Result storage mixins: DHT-backed result pointers (§2).

"After successful completion of the job, the result can be returned to
the client as either a pointer to the result (another GUID) or as the
result itself."  Matchmakers that own an overlay store results under a
result GUID with replication; the client later resolves the pointer with
one overlay lookup.
"""

from __future__ import annotations

from repro.util.ids import guid_for


def result_key(job) -> int:
    """The result's GUID — distinct from the job's own GUID."""
    return guid_for(f"{job.name}/result")


class ChordResultStorage:
    """Mixin for matchmakers holding a ``self.chord`` overlay."""

    result_replicas = 3

    def store_result(self, job, payload) -> tuple[bool, int]:
        result = self.chord.put(result_key(job), payload,
                                replicas=self.result_replicas)
        return result.success, result.hops

    def fetch_result(self, job) -> tuple[object | None, int]:
        result, value = self.chord.get(result_key(job),
                                       replicas=self.result_replicas)
        return value, result.hops


class CANResultStorage:
    """Mixin for matchmakers holding a ``self.can`` overlay.

    CAN keys are points; the result lives in the zone of the job's own
    point (its owner region), replicated to the zone's neighbors.
    """

    result_replicas = 3

    def store_result(self, job, payload) -> tuple[bool, int]:
        point = self._job_point(job)
        result = self.can.put(point, payload, replicas=self.result_replicas)
        return result.success, result.hops

    def fetch_result(self, job) -> tuple[object | None, int]:
        point = self._job_point(job)
        result, value = self.can.get(point, replicas=self.result_replicas)
        return value, result.hops
