"""CAN-based matchmaking (paper §3.2).

Each resource type is a CAN dimension plus one **virtual dimension** with
uniformly random coordinates.  A node's representative point is its
normalized capability vector (plus virtual coordinate); a job's point is
its normalized requirement vector (plus a fresh virtual coordinate), so
unconstrained axes map to 0 and identical nodes/jobs land in *distinct*
zones — the virtual dimension is what makes zone splitting well-defined
for clustered populations.

Matchmaking = routing: the job routes to the zone containing its point;
the zone owner (after climbing to a satisfying node if the owner itself
falls short of a requirement) gathers candidates from the owners of
neighboring zones that are at least as capable in every dimension and
more capable in at least one, and picks the (approximately) least-loaded
candidate.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

from repro.dht.can import CANNode, CANOverlay
from repro.grid.resources import dominates, satisfies
from repro.match.base import Matchmaker
from repro.match.select import CandidateSet
from repro.match.storage import CANResultStorage

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.node import GridNode


class CANMatchmaker(CANResultStorage, Matchmaker):
    name = "can"

    def __init__(self, use_virtual_dimension: bool = True,
                 climb_limit: int = 64, candidate_rule: str = "satisfying",
                 job_virtual_spread: bool = True):
        """``candidate_rule`` selects which neighbors join the candidate set:

        * ``"dominating"`` — the paper's wording: neighbors at least as
          capable in all dimensions and more capable in at least one.
        * ``"satisfying"`` — any neighbor that satisfies the job.  With the
          virtual dimension in play, a node's neighbors along the virtual
          axis have *equal* capability and are the natural load-sharing
          peers inside a cluster of identical machines; this rule admits
          them.  (Strict dominance predates the virtual-dimension fix in
          §3.2 — identical nodes were then never neighbors.)
        """
        super().__init__()
        if candidate_rule not in ("dominating", "satisfying"):
            raise ValueError(f"bad candidate_rule {candidate_rule!r}")
        self.use_virtual_dimension = use_virtual_dimension
        self.climb_limit = climb_limit
        self.candidate_rule = candidate_rule
        #: When False, jobs get a *fixed* virtual coordinate instead of a
        #: random one — identical jobs then share one owner zone.  Ablation
        #: knob isolating the job-spreading half of the §3.2 fix.
        self.job_virtual_spread = job_virtual_spread
        self.can: CANOverlay | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def bind(self, grid) -> None:
        self.grid = grid
        self._rng = grid.streams["match"]
        spec = grid.cfg.spec
        dims = spec.dims + (1 if self.use_virtual_dimension else 0)
        self.can = CANOverlay(grid.streams["can"], dims)
        self._bind_overlay_telemetry(self.can)
        coord_rng = grid.streams["can-coords"]
        order = list(grid.node_list)
        coord_rng.shuffle(order)  # join order shouldn't track creation order
        for node in order:
            self.can.join(CANNode(node.node_id, self._node_point(node, coord_rng)))

    def _node_point(self, node: "GridNode", rng) -> tuple[float, ...]:
        coords = self._require_grid().cfg.spec.normalize(node.capability)
        if self.use_virtual_dimension:
            coords = coords + (float(rng.uniform()),)
        return coords

    def _job_point(self, job) -> tuple[float, ...]:
        """The job's CAN coordinates.  Cached on the job so owner-failure
        recovery re-routes to the same region; the virtual coordinate is
        drawn once per job."""
        point = job.extra.get("can_point")
        if point is None:
            coords = self._require_grid().cfg.spec.normalize(job.profile.requirements)
            if self.use_virtual_dimension:
                virtual = float(self._rng.uniform()) if self.job_virtual_spread else 0.5
                coords = coords + (virtual,)
            job.extra["can_point"] = point = coords
        return point

    # ------------------------------------------------------------------
    # owner mapping (zone ownership of the job's point)
    # ------------------------------------------------------------------

    def find_owner(self, job, start=None):
        grid = self._require_grid()
        can_start = None
        if start is not None:
            can_start = self.can.nodes.get(start.node_id)
        result = self.can.route(self._job_point(job), start=can_start)
        if not result.success:
            return None, result.hops
        return grid.nodes[result.owner.node_id], result.hops

    # ------------------------------------------------------------------
    # run-node selection
    # ------------------------------------------------------------------

    def search(self, owner: "GridNode", job) -> CandidateSet:
        req = job.profile.requirements
        can_owner = self.can.nodes.get(owner.node_id)
        if can_owner is None or not can_owner.alive:
            return CandidateSet()
        anchor, climb_hops = self._climb_to_satisfying(can_owner, req)
        if anchor is None:
            return CandidateSet(hops=climb_hops)
        return self._candidate_set(anchor, req, extra_hops=climb_hops)

    def _candidate_set(self, anchor: CANNode, req,
                       extra_hops: int = 0, pushes: int = 0) -> CandidateSet:
        return CandidateSet(
            candidates=[c.node_id for c in self._candidates(anchor, req)],
            hops=extra_hops, pushes=pushes)

    def _candidates(self, anchor: CANNode, req) -> list[CANNode]:
        """The anchor (if satisfying) plus its satisfying neighbors that
        dominate it in capability space (§3.2)."""
        grid = self._require_grid()
        anchor_cap = grid.nodes[anchor.node_id].capability
        out = []
        if satisfies(anchor_cap, req):
            out.append(anchor)
        for nb in anchor.neighbors:
            if not nb.alive:
                continue
            cap = grid.nodes[nb.node_id].capability
            if not satisfies(cap, req):
                continue
            if self.candidate_rule == "satisfying" or \
                    dominates(cap, anchor_cap, strict=True):
                out.append(nb)
        return out

    def _climb_to_satisfying(self, start: CANNode, req
                             ) -> tuple[CANNode | None, int]:
        """Capability climb: zone ownership only guarantees the owner's
        capabilities are *near* the job's requirements, not above them, so
        the owner may have to hand the job to a more capable neighbor.

        Best-first search on remaining deficiency (the distributed analogue
        is the owner forwarding the job toward 'higher' zones): pure greedy
        can stall on local minima of the capability landscape, while
        expanding the least-deficient *frontier* node escapes them.  Each
        expansion is one overlay message."""
        grid = self._require_grid()

        def deficiency_of(n: CANNode) -> float:
            return self._deficiency(grid.nodes[n.node_id].capability, req)

        d0 = deficiency_of(start)
        if d0 == 0.0:
            return start, 0
        frontier = [(d0, start.node_id, start)]
        seen = {start.node_id}
        hops = 0
        while frontier and hops < self.climb_limit:
            d, _, cur = heapq.heappop(frontier)
            if d == 0.0:
                return cur, hops
            hops += 1
            for nb in cur.neighbors:
                if nb.alive and nb.node_id not in seen:
                    seen.add(nb.node_id)
                    heapq.heappush(frontier, (deficiency_of(nb), nb.node_id, nb))
        while frontier:
            d, _, cur = heapq.heappop(frontier)
            if d == 0.0:
                return cur, hops
        return None, hops  # hop budget exhausted; caller retries with backoff

    @staticmethod
    def _deficiency(capability, req) -> float:
        return sum(max(0.0, r - c) for c, r in zip(capability, req))

    # ------------------------------------------------------------------
    # churn
    # ------------------------------------------------------------------

    def on_crash(self, node) -> None:
        self.can.crash(node.node_id)

    def on_join(self, node) -> None:
        grid = self._require_grid()
        old = self.can.nodes.pop(node.node_id, None)
        if old is not None and old.alive:  # pragma: no cover - defensive
            raise RuntimeError("joining a node that is already live")
        self.can.join(CANNode(node.node_id,
                              self._node_point(node, grid.streams["can-coords"])))
