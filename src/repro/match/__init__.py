"""Matchmaking algorithms (paper §3).

Matchmaking maps a freshly submitted job to (1) an *owner node* that will
monitor it and (2) a *run node* that satisfies the job's minimum resource
requirements, balancing load — all with no centralized information.

* :mod:`repro.match.centralized` — omniscient baseline (the paper's load
  balance target; "very expensive to implement in a decentralized P2P
  system").
* :mod:`repro.match.rntree` — Rendezvous Node Tree over Chord (§3.1).
* :mod:`repro.match.can_match` — CAN resource-space matching with a
  virtual dimension (§3.2).
* :mod:`repro.match.can_push` — the load-aware pushing refinement the
  paper reports as "dramatically improving" the pathological case (§3.3).
* :mod:`repro.match.ttl_walk` — TTL-scoped random-walk discovery, the
  related-work baseline the paper contrasts against (§4).
"""

from repro.match.base import Matchmaker, MatchResult
from repro.match.centralized import CentralizedMatchmaker
from repro.match.rntree import RendezvousTreeMatchmaker
from repro.match.can_match import CANMatchmaker
from repro.match.can_push import PushingCANMatchmaker
from repro.match.ttl_walk import TTLWalkMatchmaker

MATCHMAKERS = {
    "centralized": CentralizedMatchmaker,
    "rn-tree": RendezvousTreeMatchmaker,
    "can": CANMatchmaker,
    "can-push": PushingCANMatchmaker,
    "ttl-walk": TTLWalkMatchmaker,
}


def make_matchmaker(name: str, **kwargs) -> Matchmaker:
    """Instantiate a matchmaker by its registry name."""
    try:
        cls = MATCHMAKERS[name]
    except KeyError:
        raise ValueError(
            f"unknown matchmaker {name!r}; choose from {sorted(MATCHMAKERS)}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "Matchmaker",
    "MatchResult",
    "CentralizedMatchmaker",
    "RendezvousTreeMatchmaker",
    "CANMatchmaker",
    "PushingCANMatchmaker",
    "TTLWalkMatchmaker",
    "MATCHMAKERS",
    "make_matchmaker",
]
