"""The span/event trace bus.

A :class:`TelemetryBus` collects simulator-time-stamped trace records from
every layer of the system.  Two record shapes share one buffer:

* **events** — point-in-time facts (``record(time, category, **detail)``);
* **spans** — intervals with a duration and an optional parent, forming a
  hierarchy (``begin_span`` / ``end_span``, or one-shot :meth:`span`).
  A span is appended to the buffer when it *ends*, stamped with its start
  time and duration, so the JSONL stream stays append-only.

Recording defaults to off for components constructed without a bus
(:data:`NULL_BUS`): the first statement of every recording method is a
single ``enabled`` check, so the zero-telemetry path costs one attribute
load and one branch.  Category filtering and an optional ``maxlen`` ring
buffer bound memory at production scale; overflow drops the *oldest*
records and is accounted in :attr:`TelemetryBus.dropped`.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator


@dataclass(slots=True)
class TraceEvent:
    """One trace record (an event, or a completed span).

    ``trace_id`` is the *causal* correlation key: every span belonging to
    one end-to-end job story carries the job's GUID, no matter which node
    of the grid emitted it, so the timeline layer can stitch probe/
    dispatch/monitor records produced on remote nodes back into the
    submitting job's tree (see :mod:`repro.telemetry.timeline`).

    Slots, not frozen: records are constructed on every traced operation
    and in bulk by the parallel-sweep spool fold, so construction cost and
    per-instance memory are hot-path concerns (a frozen dataclass pays
    ``object.__setattr__`` per field; a dict-backed one pays ~200 bytes
    per record).  Treat instances as immutable everywhere outside
    :mod:`repro.telemetry.spool`, which renumbers span ids during fold.
    """

    time: float
    category: str
    detail: dict[str, Any]
    span_id: int | None = None
    parent_id: int | None = None
    duration: float | None = None
    trace_id: int | None = None

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"t": self.time, "cat": self.category}
        if self.span_id is not None:
            out["span"] = self.span_id
        if self.parent_id is not None:
            out["parent"] = self.parent_id
        if self.duration is not None:
            out["dur"] = self.duration
        if self.trace_id is not None:
            out["trace"] = self.trace_id
        out.update(self.detail)
        return out


#: Legacy alias (the pre-telemetry trace layer called these TraceRecords).
TraceRecord = TraceEvent


class Span:
    """An open span handle returned by :meth:`TelemetryBus.begin_span`."""

    __slots__ = ("span_id", "parent_id", "category", "start", "detail",
                 "trace_id")

    def __init__(self, span_id: int, parent_id: int | None, category: str,
                 start: float, detail: dict[str, Any],
                 trace_id: int | None = None):
        self.span_id = span_id
        self.parent_id = parent_id
        self.category = category
        self.start = start
        self.detail = detail
        self.trace_id = trace_id

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span(#{self.span_id}, {self.category!r}, t0={self.start:.6g})"


def _json_default(obj: Any) -> Any:
    """Serialize numpy scalars and anything else JSON chokes on."""
    try:
        return float(obj)
    except (TypeError, ValueError):
        return str(obj)


class TelemetryBus:
    """Collects trace records, optionally filtered and ring-bounded.

    Parameters
    ----------
    categories:
        Record only these categories (None = everything).
    enabled:
        Master switch; a disabled bus is a true no-op.
    maxlen:
        Ring-buffer bound; the oldest records are dropped on overflow
        (None = unbounded, the pre-telemetry behaviour).
    """

    def __init__(self, categories: Iterable[str] | None = None,
                 enabled: bool = True, maxlen: int | None = None):
        self.enabled = enabled
        self.categories = set(categories) if categories is not None else None
        self.maxlen = maxlen
        self.records: deque[TraceEvent] = deque(maxlen=maxlen)
        self.accepted = 0          # records ever appended (overflow accounting)
        self._next_span = 0

    # -- recording -------------------------------------------------------

    def wants(self, category: str) -> bool:
        """Cheap pre-check so hot paths can skip building detail kwargs."""
        return self.enabled and (self.categories is None
                                 or category in self.categories)

    def record(self, time: float, category: str, **detail: Any) -> None:
        """Append a point event (the legacy ``TraceRecorder`` API)."""
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        self._append(TraceEvent(time, category, detail))

    #: Alias: ``event`` reads better next to ``span`` at new call sites.
    event = record

    def begin_span(self, time: float, category: str,
                   parent: "Span | int | None" = None,
                   trace: int | None = None, **detail: Any) -> Span | None:
        """Open a span; returns None (and the matching ``end_span`` no-ops)
        when the bus is disabled or the category is filtered out.

        ``parent`` is an open :class:`Span` handle, or a bare span id when
        the parent was opened on another node and only its id travelled
        (trace propagation through :class:`repro.sim.network.Message`).
        ``trace`` sets the causal trace id; children inherit the parent
        handle's trace id when not given explicitly.
        """
        if not self.enabled:
            return None
        if self.categories is not None and category not in self.categories:
            return None
        if isinstance(parent, Span):
            if trace is None:
                trace = parent.trace_id
            parent = parent.span_id
        self._next_span += 1
        return Span(self._next_span, parent, category, time, detail, trace)

    def end_span(self, span: Span | None, time: float, **extra: Any) -> None:
        """Close ``span`` at ``time`` and append it to the buffer."""
        if span is None or not self.enabled:
            return
        detail = {**span.detail, **extra} if extra else span.detail
        self._append(TraceEvent(span.start, span.category, detail,
                                span.span_id, span.parent_id,
                                time - span.start, span.trace_id))

    def span(self, time: float, category: str, duration: float = 0.0,
             parent: "Span | int | None" = None, trace: int | None = None,
             **detail: Any) -> None:
        """One-shot span: begin and end in a single call (for operations
        that are instantaneous in virtual time, e.g. structural DHT
        lookups whose latency is charged separately by the caller)."""
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        if isinstance(parent, Span):
            if trace is None:
                trace = parent.trace_id
            parent = parent.span_id
        self._next_span += 1
        self._append(TraceEvent(time, category, detail, self._next_span,
                                parent, duration, trace))

    def _append(self, rec: TraceEvent) -> None:
        self.records.append(rec)
        self.accepted += 1

    # -- views -----------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Records evicted by the ring buffer since the last clear()."""
        return self.accepted - len(self.records)

    def by_category(self, category: str) -> list[TraceEvent]:
        return [r for r in self.records if r.category == category]

    def category_counts(self) -> Counter[str]:
        return Counter(r.category for r in self.records)

    def clear(self) -> None:
        self.records.clear()
        self.accepted = 0

    def __len__(self) -> int:
        return len(self.records)

    # -- cross-process transfer -------------------------------------------

    def state(self) -> dict[str, Any]:
        """Full-fidelity, picklable dump (mirrors
        :meth:`repro.telemetry.registry.MetricsRegistry.state`).

        Besides the records themselves it carries the span-id high-water
        mark and the overflow accounting, so a :meth:`merge` on the
        receiving side can renumber spans without collisions and keep the
        ``dropped`` arithmetic truthful.
        """
        return {
            "records": list(self.records),
            "accepted": self.accepted,
            "spans": self._next_span,
        }

    def merge(self, state: dict[str, Any]) -> None:
        """Fold a :meth:`state` dump into this bus, in call order.

        Span and parent ids are offset by this bus's current span counter,
        so merging per-worker buses in cell-submission order reproduces
        exactly the ids a single shared bus would have allocated running
        the same cells serially (each worker's counter starts at zero and
        allocates the same ids the shared counter would have, shifted by
        the running total) — the determinism contract behind
        ``repro run --jobs N`` traces.
        """
        offset = self._next_span
        append = self.records.append
        for rec in state["records"]:
            if offset and (rec.span_id is not None
                           or rec.parent_id is not None):
                rec = TraceEvent(
                    rec.time, rec.category, rec.detail,
                    rec.span_id + offset if rec.span_id is not None else None,
                    rec.parent_id + offset if rec.parent_id is not None
                    else None,
                    rec.duration, rec.trace_id)
            append(rec)
        self._next_span += state["spans"]
        # accepted counts records *ever* appended; importing the worker's
        # count (not just the surviving records) preserves its drops.
        self.accepted += state["accepted"]

    @property
    def span_watermark(self) -> int:
        """Span-id high-water mark: the offset a bulk import of a worker
        stream must add to every span/parent id so the combined stream
        carries the ids one shared serial bus would have allocated."""
        return self._next_span

    def import_stream(self, records: Iterable[TraceEvent],
                      spans: int = 0, accepted: int = 0) -> None:
        """Bulk-append worker records whose span/parent ids were *already*
        offset by :attr:`span_watermark` — the spool fold's fast path
        (:mod:`repro.telemetry.spool`), which renumbers whole id columns
        at once instead of reconstructing records one at a time the way
        :meth:`merge` must.

        ``spans``/``accepted`` import the worker's counters; the spool
        fold reserves the worker's span-id block up front (one call with
        no records) and then streams record chunks in.  Appending through
        the deque keeps the ring-buffer eviction semantics of
        :meth:`merge`.
        """
        self.records.extend(records)
        self._next_span += spans
        self.accepted += accepted

    # -- JSONL export ----------------------------------------------------

    def to_dicts(self) -> Iterator[dict[str, Any]]:
        for rec in self.records:
            yield rec.to_dict()

    def export_jsonl(self, path: str | Path,
                     extra_records: Iterable[dict[str, Any]] = ()) -> int:
        """Write one JSON object per line; returns the line count.

        ``extra_records`` (e.g. a final metrics snapshot or kernel-profile
        summary) are appended after the trace records.
        """
        n = 0
        with open(path, "w") as fh:
            for obj in self.to_dicts():
                fh.write(json.dumps(obj, default=_json_default) + "\n")
                n += 1
            for obj in extra_records:
                fh.write(json.dumps(obj, default=_json_default) + "\n")
                n += 1
        return n


def load_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Read a JSONL trace back into a list of dicts (analysis helper)."""
    out = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


#: Shared do-nothing bus for components constructed without telemetry.
NULL_BUS = TelemetryBus(enabled=False)
