"""Per-node flight recorder: the last-N protocol events, dumped on failure.

Aggregate telemetry (metrics, phase spans) answers "how long did things
take"; when a job *fails* the question becomes "what exactly did the
involved nodes do just before".  The flight recorder answers it the way a
black box does: every node keeps a small bounded ring of recent protocol
events (receive, dispatch, assign, finish, crash, ...) that costs one
deque append while healthy, and is dumped into the trace — stamped with
the failing job's trace id so it lands inside that job's span tree — only
when a job reaches a terminal failure or an invariant trips.

The rings are bounded per node (``maxlen`` entries, 64 by default) so the
recorder stays attached at production scale; note() allocates one tuple
and never touches the bus.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.bus import TelemetryBus

#: Default per-node ring capacity (events).
DEFAULT_RING = 64


class FlightRecorder:
    """Bounded per-node rings of recent protocol events."""

    __slots__ = ("maxlen", "_rings")

    def __init__(self, maxlen: int = DEFAULT_RING):
        if maxlen < 1:
            raise ValueError("flight-recorder ring must hold >= 1 event")
        self.maxlen = maxlen
        self._rings: dict[int, deque] = {}

    def note(self, node_id: int, time: float, event: str,
             job: int | None = None, info: Any = None) -> None:
        """Append one event to ``node_id``'s ring (cheap: one tuple,
        one deque append; old events fall off the far end)."""
        ring = self._rings.get(node_id)
        if ring is None:
            ring = self._rings[node_id] = deque(maxlen=self.maxlen)
        ring.append((time, event, job, info))

    def ring(self, node_id: int) -> list[dict[str, Any]]:
        """Snapshot one node's ring as JSONL-ready dicts, oldest first."""
        out = []
        for time, event, job, info in self._rings.get(node_id, ()):
            entry: dict[str, Any] = {"t": time, "ev": event}
            if job is not None:
                entry["job"] = job
            if info is not None:
                entry["info"] = info
            out.append(entry)
        return out

    def dump(self, bus: "TelemetryBus", time: float, trace_id: int | None,
             node_ids: Iterable[int], reason: str) -> int:
        """Emit one ``flight.dump`` record per (non-empty) node ring.

        Records are zero-duration spans carrying ``trace_id`` so the
        timeline layer files them under the failing job's tree.  Returns
        the number of dump records emitted.
        """
        if not bus.wants("flight.dump"):
            return 0
        emitted = 0
        # dict.fromkeys: de-duplicate while keeping caller order (a set
        # would iterate in hash order — still deterministic, but caller
        # order reads better in the dump).
        for nid in dict.fromkeys(node_ids):
            if nid is None:
                continue  # e.g. a job that never reached a run node
            events = self.ring(nid)
            if not events:
                continue
            bus.span(time, "flight.dump", trace=trace_id, node=nid,
                     reason=reason, events=events)
            emitted += 1
        return emitted

    def clear(self) -> None:
        self._rings.clear()

    def __len__(self) -> int:
        """Total buffered events across all rings."""
        return sum(len(r) for r in self._rings.values())
