"""Named counters, gauges, and histograms.

A :class:`MetricsRegistry` is the numeric half of the telemetry subsystem:
where the bus records *what happened*, the registry accumulates *how much*
— messages by type, match candidates examined, per-matchmaker hop
histograms, queue depth over time.  Everything is O(1) per observation and
bounded in memory (histograms bucket, they do not retain samples), so the
registry can stay attached at production scale.
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Iterable

#: Default histogram bucket upper bounds: exact for small hop counts,
#: log-spaced beyond.  Values above the last edge land in an overflow
#: bucket reported against the observed maximum.
DEFAULT_EDGES: tuple[float, ...] = (
    0, 1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 24, 32, 48, 64, 96, 128,
    192, 256, 512, 1024,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name!r}, {self.value:g})"


class Gauge:
    """A point-in-time value with a high-water mark."""

    __slots__ = ("name", "value", "hwm")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.hwm = -math.inf

    def set(self, value: float) -> None:
        self.value = float(value)
        if self.value > self.hwm:
            self.hwm = self.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name!r}, {self.value:g}, hwm={self.hwm:g})"


class Histogram:
    """A fixed-bucket histogram with percentile estimation.

    ``edges`` are inclusive upper bounds; an observation lands in the first
    bucket whose edge is >= the value, or the overflow bucket past the last
    edge.  With the default edges, integer observations up to 6 are exact
    per-value counts — which covers the paper's "small number of hops"
    claims — while large outliers stay bounded in memory.
    """

    __slots__ = ("name", "edges", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str, edges: Iterable[float] | None = None):
        self.name = name
        self.edges = tuple(sorted(edges)) if edges is not None else DEFAULT_EDGES
        if not self.edges:
            raise ValueError("histogram needs at least one bucket edge")
        self.buckets = [0] * (len(self.edges) + 1)  # +1 overflow
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.buckets[bisect.bisect_left(self.edges, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def percentile(self, q: float) -> float:
        """Upper-edge estimate of the ``q``-th percentile (0..100)."""
        if self.count == 0:
            return math.nan
        target = math.ceil(self.count * q / 100.0)
        cum = 0
        for i, n in enumerate(self.buckets):
            cum += n
            if cum >= target and n:
                edge = self.edges[i] if i < len(self.edges) else self.max
                return float(min(edge, self.max))
        return float(self.max)  # pragma: no cover - defensive

    def nonzero_buckets(self) -> list[tuple[str, int]]:
        """(label, count) pairs for occupied buckets, in edge order."""
        out = []
        prev: float | None = None
        for i, n in enumerate(self.buckets):
            if i < len(self.edges):
                hi = self.edges[i]
                if prev is None:
                    label = f"{hi:g}" if hi in (0, 1) else f"<= {hi:g}"
                elif hi - prev == 1:
                    label = f"{hi:g}"
                else:
                    label = f"{prev:g}..{hi:g}"
                prev = hi
            else:
                label = f"> {self.edges[-1]:g}"
            if n:
                out.append((label, n))
        return out

    def snapshot(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "min": self.min if self.count else math.nan,
            "max": self.max if self.count else math.nan,
        }

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one.

        Requires identical bucket edges — merging differently-bucketed
        histograms would silently misbin, so that is an error.
        """
        if self.edges != other.edges:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket edges differ")
        for i, n in enumerate(other.buckets):
            self.buckets[i] += n
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.4g})"


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    Names are dotted paths (``net.sent.heartbeat``, ``dht.chord.hops``);
    reports group on the prefix.  Re-registering a name with a different
    metric type is an error — it would silently shadow data.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name, *args)
        elif type(metric) is not cls:
            raise TypeError(f"metric {name!r} is a {type(metric).__name__}, "
                            f"not a {cls.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        # Inlined _get: counter() is the registry's hottest entry point
        # (every send/call/heartbeat site probes it at least once), so it
        # skips the generic helper's extra frame.
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Counter(name)
        elif type(metric) is not Counter:
            raise TypeError(f"metric {name!r} is a {type(metric).__name__}, "
                            "not a Counter")
        return metric

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, edges: Iterable[float] | None = None
                  ) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = Histogram(name, edges)
        elif type(metric) is not Histogram:
            raise TypeError(f"metric {name!r} is a {type(metric).__name__}, "
                            "not a Histogram")
        return metric

    # -- views -----------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self, prefix: str = "") -> list[str]:
        return sorted(n for n in self._metrics if n.startswith(prefix))

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        return self._metrics.get(name)

    def counters(self, prefix: str = "") -> list[Counter]:
        return [m for n in self.names(prefix)
                if isinstance(m := self._metrics[n], Counter)]

    def histograms(self, prefix: str = "") -> list[Histogram]:
        return [m for n in self.names(prefix)
                if isinstance(m := self._metrics[n], Histogram)]

    def snapshot(self) -> dict[str, Any]:
        """One nested dict of everything (JSONL-serializable)."""
        out: dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in self.names():
            m = self._metrics[name]
            if isinstance(m, Counter):
                out["counters"][name] = m.value
            elif isinstance(m, Gauge):
                out["gauges"][name] = {"value": m.value, "hwm": m.hwm}
            else:
                out["histograms"][name] = m.snapshot()
        return out

    # -- cross-process transfer -------------------------------------------

    def state(self) -> dict[str, tuple]:
        """Full-fidelity, picklable dump — unlike :meth:`snapshot`, which
        reduces histograms to summary statistics, this preserves bucket
        counts so a :meth:`merge` on the receiving side is lossless."""
        out: dict[str, tuple] = {}
        for name, m in self._metrics.items():
            if isinstance(m, Counter):
                out[name] = ("counter", m.value)
            elif isinstance(m, Gauge):
                out[name] = ("gauge", m.value, m.hwm)
            else:
                out[name] = ("histogram", m.edges, tuple(m.buckets),
                             m.count, m.total, m.min, m.max)
        return out

    def state_columnar(self) -> tuple:
        """Compact columnar counterpart of :meth:`state`.

        Same fidelity, different shape: instead of one tagged tuple per
        metric (whose pickle pays a dict entry and a tag string each),
        metrics are grouped by kind into parallel columns, and histogram
        edge tuples are interned in a shared table (nearly every
        histogram uses :data:`DEFAULT_EDGES`, so the table almost always
        has one entry).  Layout::

            ("m1",
             (names, values),                       # counters
             (names, values, hwms),                 # gauges
             (names, edge_table, edge_ref,          # histograms
              buckets, counts, totals, mins, maxs))

        ``edge_ref[i]`` indexes ``edge_table``; ``buckets[i]`` is the
        bucket-count tuple for ``names[i]``.  This is the metrics block
        of the parallel engine's spool format
        (:mod:`repro.telemetry.spool`); fold with
        :meth:`merge_columnar`.
        """
        c_names: list[str] = []
        c_vals: list[float] = []
        g_names: list[str] = []
        g_vals: list[float] = []
        g_hwms: list[float] = []
        h_names: list[str] = []
        h_refs: list[int] = []
        h_buckets: list[tuple] = []
        h_counts: list[int] = []
        h_totals: list[float] = []
        h_mins: list[float] = []
        h_maxs: list[float] = []
        edge_table: list[tuple] = []
        edge_index: dict[tuple, int] = {}
        for name, m in self._metrics.items():
            if isinstance(m, Counter):
                c_names.append(name)
                c_vals.append(m.value)
            elif isinstance(m, Gauge):
                g_names.append(name)
                g_vals.append(m.value)
                g_hwms.append(m.hwm)
            else:
                ref = edge_index.get(m.edges)
                if ref is None:
                    ref = edge_index[m.edges] = len(edge_table)
                    edge_table.append(m.edges)
                h_names.append(name)
                h_refs.append(ref)
                h_buckets.append(tuple(m.buckets))
                h_counts.append(m.count)
                h_totals.append(m.total)
                h_mins.append(m.min)
                h_maxs.append(m.max)
        return ("m1",
                (c_names, c_vals),
                (g_names, g_vals, g_hwms),
                (h_names, edge_table, h_refs, h_buckets,
                 h_counts, h_totals, h_mins, h_maxs))

    def merge_columnar(self, enc: tuple) -> None:
        """Fold a :meth:`state_columnar` dump into this registry.

        Identical merge semantics to :meth:`merge` (counters add, gauges
        last-write-wins with hwm max, histograms bucket-wise with edge
        checks) — merging per-worker dumps in cell-submission order
        reproduces the serial registry exactly.
        """
        if not enc or enc[0] != "m1":  # pragma: no cover - corrupted transfer
            raise ValueError(f"unknown columnar metrics tag: {enc[:1]!r}")
        _, counters, gauges, hists = enc
        for name, value in zip(*counters):
            self.counter(name).inc(value)
        for name, value, hwm in zip(*gauges):
            g = self.gauge(name)
            g.value = float(value)
            if hwm > g.hwm:
                g.hwm = hwm
        h_names, edge_table, h_refs, h_buckets, h_counts, h_totals, \
            h_mins, h_maxs = hists
        for i, name in enumerate(h_names):
            edges = tuple(edge_table[h_refs[i]])
            h = self.histogram(name, edges)
            if h.edges != edges:
                raise ValueError(f"cannot merge histogram {name!r}: "
                                 "bucket edges differ")
            for j, n in enumerate(h_buckets[i]):
                h.buckets[j] += n
            h.count += h_counts[i]
            h.total += h_totals[i]
            if h_mins[i] < h.min:
                h.min = h_mins[i]
            if h_maxs[i] > h.max:
                h.max = h_maxs[i]

    def merge(self, state: "MetricsRegistry | dict[str, tuple]") -> None:
        """Fold a :meth:`state` dump (or another registry) into this one.

        Counters add; gauges take the incoming value (last-write-wins in
        merge order) with high-water marks combined by max; histograms
        merge bucket-wise (identical edges required).  Merging the states
        of per-worker registries in cell-submission order reproduces
        exactly the metrics a single shared registry would have seen
        running the same cells serially.
        """
        if isinstance(state, MetricsRegistry):
            state = state.state()
        for name, entry in state.items():
            kind = entry[0]
            if kind == "counter":
                self.counter(name).inc(entry[1])
            elif kind == "gauge":
                g = self.gauge(name)
                g.value = float(entry[1])
                if entry[2] > g.hwm:
                    g.hwm = entry[2]
            elif kind == "histogram":
                _, edges, buckets, count, total, mn, mx = entry
                h = self.histogram(name, edges)
                if h.edges != tuple(edges):
                    raise ValueError(f"cannot merge histogram {name!r}: "
                                     "bucket edges differ")
                for i, n in enumerate(buckets):
                    h.buckets[i] += n
                h.count += count
                h.total += total
                if mn < h.min:
                    h.min = mn
                if mx > h.max:
                    h.max = mx
            else:  # pragma: no cover - corrupted transfer
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")

    def clear(self) -> None:
        """Drop every metric.

        Hot-path layers (:class:`~repro.sim.network.Network`, the RPC
        layer, grid nodes) cache metric *objects* resolved from this
        registry; clearing while such a layer is live detaches those
        handles from future snapshots.  Build a fresh Telemetry per run
        instead of clearing mid-flight.
        """
        self._metrics.clear()
