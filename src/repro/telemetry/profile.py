"""Event-loop profiling: where does *wall-clock* time go?

The simulator's virtual clock says nothing about how long a run takes on
real hardware.  :class:`KernelProfile` is the opt-in accounting the kernel
fills in when a profile is attached (``Simulator.profile = KernelProfile()``
or via :class:`repro.telemetry.Telemetry`): events processed, wall-clock
events/sec, heap-size high-water mark, and cumulative time per callback
site (``fn.__qualname__``), so a perf PR can see which protocol callback
actually burns the CPU.

When no profile is attached the kernel runs its original tight loop — the
zero-overhead path is a single ``is None`` check per :meth:`Simulator.run`
call, not per event.  Profiling uses ``time.perf_counter`` and never
touches virtual time or RNG streams, so enabling it cannot perturb
simulation results.
"""

from __future__ import annotations

import math


class KernelProfile:
    """Accumulates event-loop accounting (shareable across simulators)."""

    __slots__ = ("events", "wall_seconds", "heap_peak", "runs", "sites")

    def __init__(self) -> None:
        self.events = 0
        self.wall_seconds = 0.0
        self.heap_peak = 0
        self.runs = 0
        #: callback site -> [calls, cumulative seconds]
        self.sites: dict[str, list] = {}

    # -- kernel hooks ----------------------------------------------------

    def note(self, site: str, seconds: float) -> None:
        entry = self.sites.get(site)
        if entry is None:
            self.sites[site] = [1, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds

    def note_run(self, events: int, wall: float) -> None:
        self.runs += 1
        self.events += events
        self.wall_seconds += wall

    # -- views -----------------------------------------------------------

    @property
    def events_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return math.nan
        return self.events / self.wall_seconds

    def top_sites(self, n: int = 12) -> list[tuple[str, int, float]]:
        """(site, calls, cumulative seconds), heaviest first."""
        rows = [(site, calls, cum) for site, (calls, cum) in self.sites.items()]
        rows.sort(key=lambda r: r[2], reverse=True)
        return rows[:n]

    def summary(self) -> dict[str, float]:
        return {
            "events": float(self.events),
            "wall_seconds": self.wall_seconds,
            "events_per_sec": self.events_per_second,
            "heap_peak": float(self.heap_peak),
            "runs": float(self.runs),
            "sites": float(len(self.sites)),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"KernelProfile(events={self.events}, "
                f"{self.events_per_second:.0f} ev/s, "
                f"heap_peak={self.heap_peak})")
