"""Text reports over a :class:`~repro.telemetry.core.Telemetry` capture.

Renders the same quantities the paper argues about, from live telemetry
instead of terminal job records: hop distributions per overlay and
matchmaker ("a small number of hops"), the message budget by kind
(aggregation/heartbeat overhead), and the kernel wall-clock profile
(where an optimisation PR should aim).  All output reuses
:func:`repro.metrics.report.format_table` so experiment reports and
telemetry reports read alike.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.metrics.report import format_table

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.core import Telemetry
    from repro.telemetry.registry import Histogram


def histogram_table(hists: "list[Histogram]", title: str) -> str:
    """Count/mean/percentiles table, one row per histogram."""
    rows = []
    for h in hists:
        s = h.snapshot()
        rows.append([h.name, int(s["count"]), s["mean"], s["p50"], s["p95"],
                     s["p99"], s["max"]])
    return format_table(["metric", "n", "mean", "p50", "p95", "p99", "max"],
                        rows, title=title)


def hop_histogram_bars(hist: "Histogram", width: int = 40) -> str:
    """One histogram's occupied buckets as horizontal bars."""
    rows = hist.nonzero_buckets()
    if not rows:
        return f"{hist.name}: (no samples)"
    peak = max(n for _, n in rows)
    lines = [f"{hist.name} (n={hist.count}, mean={hist.mean:.2f})"]
    label_w = max(len(lbl) for lbl, _ in rows)
    for label, n in rows:
        bar = "#" * max(1, round(width * n / peak))
        lines.append(f"  {label.rjust(label_w)} |{bar.ljust(width)}| {n}")
    return "\n".join(lines)


def message_budget_report(tel: "Telemetry") -> str:
    """Network counters grouped by message kind, plus totals."""
    rows = []
    for c in tel.metrics.counters("net.sent."):
        rows.append([c.name.removeprefix("net.sent."), int(c.value)])
    for name in ("net.delivered", "net.dropped", "rpc.calls", "rpc.replies",
                 "rpc.timeouts"):
        m = tel.metrics.get(name)
        if m is not None:
            rows.append([name, int(m.value)])
    if not rows:
        return "message budget: (no network telemetry recorded)"
    return format_table(["message kind", "count"], rows,
                        title="Message budget")


def kernel_profile_report(tel: "Telemetry", top: int = 12) -> str:
    prof = tel.profile
    if prof is None or prof.events == 0:
        return "kernel profile: (profiling not enabled)"
    head = (f"Kernel profile: {prof.events} events in "
            f"{prof.wall_seconds:.3f}s wall "
            f"({prof.events_per_second:,.0f} ev/s), "
            f"heap high-water {prof.heap_peak}")
    rows = [[site, calls, cum * 1e3, cum * 1e6 / calls]
            for site, calls, cum in prof.top_sites(top)]
    table = format_table(["callback site", "calls", "cum ms", "us/call"],
                         rows, title=head)
    return table


def telemetry_report(tel: "Telemetry", bars_for: str = "dht.") -> str:
    """The full text summary: hops, message budget, kernel profile, buffer."""
    parts = []
    hop_hists = tel.metrics.histograms("dht.") + tel.metrics.histograms("match.")
    if hop_hists:
        parts.append(histogram_table(
            hop_hists, "Hop distributions (per lookup / per search)"))
        for h in tel.metrics.histograms(bars_for):
            if h.count:
                parts.append(hop_histogram_bars(h))
    queue_hists = tel.metrics.histograms("grid.")
    if queue_hists:
        parts.append(histogram_table(queue_hists,
                                     "Queue depth (periodic samples)"))
    parts.append(message_budget_report(tel))
    parts.append(kernel_profile_report(tel))
    counts = tel.bus.category_counts()
    if counts:
        rows = [[cat, n] for cat, n in sorted(counts.items())]
        title = f"Trace buffer: {len(tel.bus)} records"
        if tel.bus.dropped:
            title += f" ({tel.bus.dropped} dropped by ring buffer)"
        parts.append(format_table(["category", "records"], rows, title=title))
    return "\n\n".join(parts)
