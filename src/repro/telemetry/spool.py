"""Chunked columnar spooling of worker telemetry for parallel sweeps.

The v1 parallel engine shipped worker telemetry back as one pickled
``(MetricsRegistry.state(), TelemetryBus.state())`` blob per cell: the
whole record list pickles as N individual :class:`TraceEvent` objects and
the parent reconstructs every span-carrying record a second time inside
:meth:`TelemetryBus.merge`.  For traced sweeps that one-shot round trip
dominates parent-side wall time and holds every worker's full stream in
memory at once.

A *spool* is the streaming replacement: the worker writes its telemetry
to a file as a sequence of length-prefixed pickle blocks, and the parent
folds it incrementally as each future completes.

Format (version 1) — each block is a 4-byte little-endian length followed
by a pickle blob:

* block 0 — header dict: ``{"version", "spans", "accepted", "n_records",
  "metrics"}`` where ``"metrics"`` is the compact columnar registry dump
  (:meth:`MetricsRegistry.state_columnar`);
* blocks 1..k — record chunks: a 7-tuple of parallel lists ``(time,
  category, detail, span_id, parent_id, duration, trace_id)``,
  :data:`CHUNK_RECORDS` rows per chunk.

Why columnar chunks beat the pickled-state path:

* pickling seven flat lists memoizes the (heavily repeated) category
  strings and detail keys once per chunk instead of spelling a class
  reference and field markers per record — the stream is ~1.5x smaller;
* the fold renumbers the span/parent id *columns* with two list
  comprehensions and rebuilds records by positional slots-dataclass
  construction — about half the per-record cost of
  :meth:`TelemetryBus.merge`'s reconstruct-per-record loop;
* chunking bounds parent peak memory to one chunk per in-flight fold
  rather than one full worker stream per outstanding future.

The fold preserves the engine's determinism contract: ids are offset by
the parent's :attr:`~TelemetryBus.span_watermark` exactly as
:meth:`TelemetryBus.merge` would, so folding per-worker spools in cell
submission order reproduces the serial bus byte-for-byte.
"""

from __future__ import annotations

import pickle
import struct
from pathlib import Path
from typing import Any, BinaryIO, Iterator

from repro.telemetry.bus import TraceEvent

#: Records per chunk block.  Big enough to amortize the pickle call and
#: the length prefix, small enough to bound fold-time peak memory.
CHUNK_RECORDS = 32768

SPOOL_VERSION = 1

_PROTO = pickle.HIGHEST_PROTOCOL
_LEN = struct.Struct("<I")


def _write_block(fh: BinaryIO, obj: Any) -> int:
    blob = pickle.dumps(obj, protocol=_PROTO)
    fh.write(_LEN.pack(len(blob)))
    fh.write(blob)
    return _LEN.size + len(blob)


def _read_blocks(fh: BinaryIO) -> Iterator[Any]:
    read = fh.read
    size = _LEN.size
    unpack = _LEN.unpack
    while True:
        head = read(size)
        if not head:
            return
        if len(head) != size:
            raise ValueError("truncated spool block header")
        (n,) = unpack(head)
        blob = read(n)
        if len(blob) != n:
            raise ValueError("truncated spool block")
        yield pickle.loads(blob)


def write_spool(path: str | Path, telemetry) -> int:
    """Spool ``telemetry``'s bus records and metrics to ``path``.

    Worker-side half of the streaming merge; returns bytes written (the
    engine reports them as per-cell serialized volume).
    """
    bus = telemetry.bus
    recs = list(bus.records)
    nbytes = 0
    with open(path, "wb") as fh:
        header = {
            "version": SPOOL_VERSION,
            "spans": bus.span_watermark,
            "accepted": bus.accepted,
            "n_records": len(recs),
            "metrics": telemetry.metrics.state_columnar(),
        }
        nbytes += _write_block(fh, header)
        for i in range(0, len(recs), CHUNK_RECORDS):
            block = recs[i:i + CHUNK_RECORDS]
            cols = ([r.time for r in block],
                    [r.category for r in block],
                    [r.detail for r in block],
                    [r.span_id for r in block],
                    [r.parent_id for r in block],
                    [r.duration for r in block],
                    [r.trace_id for r in block])
            nbytes += _write_block(fh, cols)
    return nbytes


def fold_spool(path: str | Path, telemetry) -> int:
    """Fold a spool file into ``telemetry``; returns records imported.

    Parent-side half.  Equivalent to ``bus.merge(state)`` +
    ``metrics.merge(state)`` on the pickled-state path — same offsets,
    same ordering guarantees — but streams chunk by chunk.  The worker's
    span-id block is reserved up front (so the offset math matches a
    one-shot merge even mid-stream), then record chunks are renumbered
    columnwise and bulk-appended.
    """
    bus = telemetry.bus
    offset = bus.span_watermark
    TE = TraceEvent
    with open(path, "rb") as fh:
        blocks = _read_blocks(fh)
        header = next(blocks, None)
        if not isinstance(header, dict) or "version" not in header:
            raise ValueError(f"not a telemetry spool: {path}")
        if header["version"] != SPOOL_VERSION:
            raise ValueError(f"unsupported spool version "
                             f"{header['version']!r} in {path}")
        bus.import_stream((), spans=header["spans"],
                          accepted=header["accepted"])
        for cols in blocks:
            times, cats, dets, spans, parents, durs, traces = cols
            if offset:
                spans = [s + offset if s is not None else None
                         for s in spans]
                parents = [p + offset if p is not None else None
                           for p in parents]
            bus.import_stream([TE(*tup) for tup in
                               zip(times, cats, dets, spans, parents,
                                   durs, traces)])
    telemetry.metrics.merge_columnar(header["metrics"])
    return header["n_records"]
