"""The :class:`Telemetry` facade: one object wired through every layer.

A ``Telemetry`` bundles the three telemetry primitives —

* :attr:`bus` — the span/event trace bus (:mod:`repro.telemetry.bus`),
* :attr:`metrics` — the counters/gauges/histograms registry,
* :attr:`profile` — the optional kernel wall-clock profile,

— plus the grid-facing glue: a simulator clock binding (so layers without
a clock, like DHT overlays, can stamp records), a periodic load sampler,
and JSONL export that appends the final metrics snapshot and kernel
profile summary after the trace records.

The grid holds :data:`NULL_TELEMETRY` when none is supplied; every
instrumentation site guards on ``telemetry.enabled`` first, so the
default path costs one attribute load and one branch.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable

from repro.telemetry.bus import NULL_BUS, TelemetryBus
from repro.telemetry.flight import FlightRecorder
from repro.telemetry.profile import KernelProfile
from repro.telemetry.registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.dht.base import RouteResult
    from repro.grid.job import Job
    from repro.grid.system import DesktopGrid

#: Phase spans parked on ``Job.extra`` by the grid layer, in phase order.
#: :meth:`Telemetry.close_job_spans` sweeps these on every terminal path
#: so a FAILED/LOST job cannot leak open (never-appended) spans.
PHASE_SPAN_KEYS = ("tel_insert", "tel_match", "tel_probe", "tel_dispatch",
                   "tel_queue", "tel_run")


class Telemetry:
    """Grid-wide telemetry: trace bus + metrics registry + kernel profile.

    Parameters
    ----------
    categories:
        Bus category filter (None = record everything).
    maxlen:
        Bus ring-buffer bound (None = unbounded).
    enabled:
        Master switch; a disabled Telemetry is a shared no-op.
    profile_kernel:
        Attach a :class:`KernelProfile` to every bound grid's simulator.
    sample_interval:
        Virtual-time period of the load sampler (queue depths, live
        nodes); None disables sampling.  The sampler only *reads* grid
        state and draws no randomness, so it cannot perturb results.
    """

    def __init__(self, categories: Iterable[str] | None = None,
                 maxlen: int | None = None, enabled: bool = True,
                 profile_kernel: bool = False,
                 sample_interval: float | None = None,
                 flight_ring: int = 64):
        self.bus = TelemetryBus(categories=categories, enabled=enabled,
                                maxlen=maxlen) if enabled else NULL_BUS
        self.metrics = MetricsRegistry()
        self.profile: KernelProfile | None = \
            KernelProfile() if (profile_kernel and enabled) else None
        self.sample_interval = sample_interval
        #: Per-node last-N protocol event rings, dumped into the trace on
        #: job failure (None when disabled; see telemetry.flight).
        self.flight: FlightRecorder | None = \
            FlightRecorder(flight_ring) if (enabled and flight_ring) else None
        #: Ambient causal context ``(trace_id, parent_span_id)`` set by the
        #: grid around traced operations whose inner layers (DHT routing)
        #: have no job in their signatures.  The simulation is single-
        #: threaded, so a plain attribute is a sound context variable.
        self.trace_ctx: tuple[int, int | None] | None = None
        self._sim = None

    @property
    def enabled(self) -> bool:
        return self.bus.enabled

    def now(self) -> float:
        """Virtual time of the most recently bound simulator (0.0 unbound)."""
        return self._sim.now if self._sim is not None else 0.0

    # -- grid binding ----------------------------------------------------

    def bind(self, grid: "DesktopGrid") -> None:
        """Attach to a grid: clock, kernel profile, periodic load sampler.

        Safe to call once per grid; a shared Telemetry accumulates across
        sequential grids (e.g. every cell of an experiment sweep).
        """
        if not self.enabled:
            return
        self._sim = grid.sim
        if self.bus.wants("grid.bind"):
            # Cell boundary marker: sweeps run many independent grids
            # through one shared bus, and job GUIDs repeat across cells
            # (same seed => same job names), so the timeline layer needs
            # this record to segment the stream into per-grid traces.
            self.bus.record(grid.sim.now, "grid.bind",
                            nodes=len(grid.node_list),
                            matchmaker=grid.matchmaker.name)
        if self.profile is not None:
            grid.sim.profile = self.profile
        if self.sample_interval is not None:
            # Deterministic phase (no RNG, no stagger): telemetry must
            # observe, never perturb — see tests/telemetry/test_determinism.
            from repro.sim.process import PeriodicTask

            PeriodicTask(grid.sim, self.sample_interval,
                         lambda: self._sample_load(grid), stagger=False)

    def _sample_load(self, grid: "DesktopGrid") -> None:
        # Columnar read through the NodeRegistry: the sample costs one
        # masked-sum over dense arrays, not an O(N) object scan — the
        # difference between "telemetry is free" and "telemetry is the
        # bottleneck" at 10k+ nodes.
        depths = grid.registry.live_queue_lens()
        n_live = int(depths.size)
        total = int(depths.sum())
        peak = int(depths.max()) if n_live else 0
        m = self.metrics
        m.gauge("grid.live_nodes").set(n_live)
        m.gauge("grid.queue_depth.total").set(total)
        m.gauge("grid.queue_depth.max").set(peak)
        m.histogram("grid.queue_depth.sampled").observe(peak)
        # Kernel health: pending work net of tombstones, raw heap size,
        # and how often compaction has had to run (heap hygiene signal).
        sim = grid.sim
        m.gauge("kernel.live_pending").set(sim.live_pending)
        m.gauge("kernel.heap_len").set(len(sim._heap))
        m.gauge("kernel.compactions").set(sim.compactions)
        if self.bus.wants("load.sample"):
            self.bus.record(grid.sim.now, "load.sample",
                            live_nodes=n_live, queued=total, max_queue=peak)

    # -- layer hooks (shared emit logic lives here, call sites stay thin) --

    def note_dht_lookup(self, proto: str, op: str, result: "RouteResult") -> None:
        """One overlay lookup: hop histogram + a zero-duration span (the
        routing is structural; its latency is charged by the caller).

        When the grid set :attr:`trace_ctx` (owner routing / matchmaking
        on behalf of a specific job), the span carries that job's trace id
        and parents under the in-flight phase span — DHT-route records
        join the job's causal tree instead of floating free.
        """
        self.metrics.histogram(f"dht.{proto}.hops").observe(result.hops)
        if not result.success:
            self.metrics.counter(f"dht.{proto}.failed").inc()
        if self.bus.wants("dht.lookup"):
            ctx = self.trace_ctx
            trace, parent = ctx if ctx is not None else (None, None)
            self.bus.span(self.now(), "dht.lookup", parent=parent,
                          trace=trace, proto=proto, op=op,
                          hops=result.hops, ok=result.success)

    def close_job_spans(self, job: "Job", status: str,
                        keys: tuple[str, ...] = PHASE_SPAN_KEYS) -> None:
        """End any open phase spans parked on ``job.extra``.

        Terminal failure paths (owner lost, dispatch exhausted, client
        abandonment) used to drop jobs with their ``tel_match``/
        ``tel_queue`` spans still open — open spans are never appended,
        so the failed phases vanished from the trace.  This sweeps every
        phase key and closes what it finds with a ``status`` attribute,
        making failures *more* visible than successes, not less.
        """
        if not self.enabled:
            return
        now = self.now()
        extra = job.extra
        for key in keys:
            span = extra.pop(key, None)
            if span is not None:
                self.bus.end_span(span, now, status=status)

    def dump_flight(self, job: "Job", node_ids: Iterable[int | None],
                    reason: str) -> None:
        """Dump the flight-recorder rings of the nodes involved in a job
        failure into the trace, keyed by the job's trace id."""
        if self.flight is None:
            return
        self.flight.dump(self.bus, self.now(), job.guid, node_ids, reason)

    def note_match(self, matchmaker: str, hops: int, probes: int,
                   pushes: int, found: bool) -> None:
        """One run-node search by any matchmaker."""
        m = self.metrics
        m.histogram(f"match.{matchmaker}.search_hops").observe(hops)
        m.histogram(f"match.{matchmaker}.candidates").observe(probes)
        if pushes:
            m.counter(f"match.{matchmaker}.pushes").inc(pushes)
        m.counter(f"match.{matchmaker}."
                  f"{'found' if found else 'not_found'}").inc()

    # -- export ----------------------------------------------------------

    def final_records(self) -> list[dict[str, Any]]:
        """Trailer records appended to a JSONL export."""
        out: list[dict[str, Any]] = [
            {"t": self.now(), "cat": "metrics.snapshot",
             **self.metrics.snapshot()},
        ]
        if self.bus.dropped:
            out.append({"t": self.now(), "cat": "trace.overflow",
                        "dropped": self.bus.dropped,
                        "kept": len(self.bus)})
        if self.profile is not None:
            out.append({"t": self.now(), "cat": "kernel.profile",
                        **self.profile.summary(),
                        "top_sites": [
                            {"site": s, "calls": c, "seconds": round(t, 6)}
                            for s, c, t in self.profile.top_sites()
                        ]})
        return out

    def export_jsonl(self, path: str | Path) -> int:
        """Write the trace plus metrics/profile trailers; returns lines."""
        return self.bus.export_jsonl(path, extra_records=self.final_records())


#: Shared no-op instance held by grids constructed without telemetry.
NULL_TELEMETRY = Telemetry(enabled=False)
