"""Grid-wide telemetry: span tracing, metrics, and kernel profiling.

The paper's central claims — matchmaking in "a small number of hops",
bounded aggregation overhead, recovery without client resubmission — are
claims about *internal* behaviour.  This package makes that behaviour
first-class observable without perturbing it:

* :mod:`repro.telemetry.bus` — the span/event trace bus: simulator-time-
  stamped records, hierarchical spans, category filtering, a bounded ring
  buffer, JSONL export.
* :mod:`repro.telemetry.registry` — named counters, gauges, and bucketed
  histograms (O(1) per observation, bounded memory).
* :mod:`repro.telemetry.profile` — opt-in event-loop profiling: events/sec
  wall-clock, heap high-water mark, per-callback-site cumulative time.
* :mod:`repro.telemetry.core` — the :class:`Telemetry` facade the grid and
  CLI wire through every layer.
* :mod:`repro.telemetry.flight` — per-node bounded flight recorder,
  dumped into the trace when a job fails.
* :mod:`repro.telemetry.spool` — chunked columnar spool files carrying
  worker telemetry back to the parent in ``--jobs N`` sweeps (the
  parallel engine's streaming merge).
* :mod:`repro.telemetry.timeline` — span-tree reconstruction and timeline
  analytics over a recorded trace (``repro job-trace``).
* :mod:`repro.telemetry.summary` — text reports (hop distributions,
  message budgets, kernel profile).

Trace categories
----------------
Emitted by the instrumented layers (filter with ``categories=...``):

=================  ========================================================
category           meaning
=================  ========================================================
``submit``         client injected a job (event; detail: job, attempt)
``job.lifecycle``  span: submission -> result at the client
``job.insert``     span: injection-node routing to the owner (DHT hops)
``job.match``      span: owner-side matchmaking, incl. retry backoff
``job.probe``      span: one RPC probe round (children: ``rpc.server``)
``job.dispatch``   span: dispatch send -> acceptance on the run node
``job.queue``      span: waiting in the run node's queue
``job.run``        span: execution (+ staging) on the run node
``match``          run node chosen (event; detail: hops, probes)
``start``          execution started (event; detail: wait)
``complete``       result returned to the client (event; detail: state)
``dht.lookup``     span (zero virtual duration): one overlay routing
``rpc.server``     span (zero duration): request handled on a remote node
``rpc.timeout``    span (zero duration): an RPC timed out at the caller
``flight.dump``    span wrapping a node's flight-recorder dump on failure
``grid.bind``      cell boundary: a new grid bound to a shared telemetry
``load.sample``    periodic load sampler tick (live nodes, queue depths)
``heartbeat``      one runner heartbeat round (event; detail: jobs)
``recovery``       owner/run-node failure recovery triggered
``crash``          a node crashed          (``recover``: it rejoined)
``net.msg``        one network message sent (high volume; filter in)
=================  ========================================================

Causal tracing
--------------
Every job-phase span carries ``trace=<job guid>``; the grid forwards
``(trace_id, parent_span_id)`` tuples on messages and RPCs so records
emitted on *remote* nodes (probe handling, dispatch acceptance, DHT
routing) parent into the submitting job's span tree.  The timeline layer
(:func:`timeline_from_bus` / ``repro job-trace``) rebuilds per-job trees,
per-phase latency breakdowns, retry chains, and critical paths.

Determinism contract: every instrumentation site only *reads* simulation
state; telemetry draws no randomness and schedules nothing except the
deterministic, read-only load sampler — enabling full telemetry must not
change any experiment result (enforced by
``tests/telemetry/test_determinism.py``).
"""

from repro.telemetry.bus import (
    NULL_BUS,
    Span,
    TelemetryBus,
    TraceEvent,
    load_jsonl,
)
from repro.telemetry.core import NULL_TELEMETRY, PHASE_SPAN_KEYS, Telemetry
from repro.telemetry.flight import FlightRecorder
from repro.telemetry.profile import KernelProfile
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.spool import fold_spool, write_spool
from repro.telemetry.summary import telemetry_report
from repro.telemetry.timeline import (
    JobTrace,
    SpanNode,
    Timeline,
    build_timeline,
    timeline_from_bus,
    timeline_from_jsonl,
)

__all__ = [
    "NULL_BUS",
    "NULL_TELEMETRY",
    "PHASE_SPAN_KEYS",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JobTrace",
    "KernelProfile",
    "MetricsRegistry",
    "Span",
    "SpanNode",
    "Telemetry",
    "TelemetryBus",
    "Timeline",
    "TraceEvent",
    "build_timeline",
    "fold_spool",
    "load_jsonl",
    "telemetry_report",
    "timeline_from_bus",
    "timeline_from_jsonl",
    "write_spool",
]
