"""Grid-wide telemetry: span tracing, metrics, and kernel profiling.

The paper's central claims — matchmaking in "a small number of hops",
bounded aggregation overhead, recovery without client resubmission — are
claims about *internal* behaviour.  This package makes that behaviour
first-class observable without perturbing it:

* :mod:`repro.telemetry.bus` — the span/event trace bus: simulator-time-
  stamped records, hierarchical spans, category filtering, a bounded ring
  buffer, JSONL export.
* :mod:`repro.telemetry.registry` — named counters, gauges, and bucketed
  histograms (O(1) per observation, bounded memory).
* :mod:`repro.telemetry.profile` — opt-in event-loop profiling: events/sec
  wall-clock, heap high-water mark, per-callback-site cumulative time.
* :mod:`repro.telemetry.core` — the :class:`Telemetry` facade the grid and
  CLI wire through every layer.
* :mod:`repro.telemetry.summary` — text reports (hop distributions,
  message budgets, kernel profile).

Trace categories
----------------
Emitted by the instrumented layers (filter with ``categories=...``):

=================  ========================================================
category           meaning
=================  ========================================================
``submit``         client injected a job (event; detail: job, attempt)
``job.lifecycle``  span: submission -> result at the client
``job.insert``     span: injection-node routing to the owner (DHT hops)
``job.match``      span: owner-side matchmaking, incl. retry backoff
``job.queue``      span: waiting in the run node's queue
``job.run``        span: execution (+ staging) on the run node
``match``          run node chosen (event; detail: hops, probes)
``start``          execution started (event; detail: wait)
``complete``       result returned to the client (event; detail: state)
``dht.lookup``     span (zero virtual duration): one overlay routing
``load.sample``    periodic load sampler tick (live nodes, queue depths)
``heartbeat``      one runner heartbeat round (event; detail: jobs)
``recovery``       owner/run-node failure recovery triggered
``crash``          a node crashed          (``recover``: it rejoined)
``net.msg``        one network message sent (high volume; filter in)
=================  ========================================================

Determinism contract: every instrumentation site only *reads* simulation
state; telemetry draws no randomness and schedules nothing except the
deterministic, read-only load sampler — enabling full telemetry must not
change any experiment result (enforced by
``tests/telemetry/test_determinism.py``).
"""

from repro.telemetry.bus import (
    NULL_BUS,
    Span,
    TelemetryBus,
    TraceEvent,
    load_jsonl,
)
from repro.telemetry.core import NULL_TELEMETRY, Telemetry
from repro.telemetry.profile import KernelProfile
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.summary import telemetry_report

__all__ = [
    "NULL_BUS",
    "NULL_TELEMETRY",
    "Counter",
    "Gauge",
    "Histogram",
    "KernelProfile",
    "MetricsRegistry",
    "Span",
    "Telemetry",
    "TelemetryBus",
    "TraceEvent",
    "load_jsonl",
    "telemetry_report",
]
