"""Span-tree reconstruction and per-phase latency analytics.

The trace bus emits a flat, append-only stream of records; this module
turns it back into the *causal* structure the tracing layer encoded:
one span tree per job (keyed by ``trace_id`` = job GUID), with the
probe/dispatch/monitor records emitted on remote nodes attached under
the submitting job's phases.  On top of the trees it computes what the
experiments actually need:

* per-phase latency breakdowns (insert → match → probe → dispatch →
  queue → run), including *retry chains* — a job that lost its run node
  has several match/dispatch spans, and they are all accounted;
* the critical path (the chain of spans that determines the makespan);
* phase percentiles across jobs;
* anomaly flags: orphan spans (parent never appeared — cross-node loss
  or ring-buffer eviction), jobs with no terminal event, and ring
  truncation.

Input is either live :class:`~repro.telemetry.bus.TraceEvent` objects
(``build_timeline(tel.bus.records)``) or dicts loaded from a JSONL
export (:func:`timeline_from_jsonl`) — the reconstruction only looks at
the dict shape, so traces survive a round trip through disk.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.telemetry.bus import TraceEvent, load_jsonl

#: Job phases in pipeline order (the keys of every per-phase table).
PHASE_ORDER = ("insert", "match", "probe", "dispatch", "queue", "run")

#: Span category -> phase name.
PHASE_OF = {
    "job.insert": "insert",
    "job.match": "match",
    "job.probe": "probe",
    "job.dispatch": "dispatch",
    "job.queue": "queue",
    "job.run": "run",
}

#: The root category of a job's span tree.
LIFECYCLE = "job.lifecycle"


@dataclass
class SpanNode:
    """One reconstructed span plus its resolved children."""

    time: float
    category: str
    duration: float
    span_id: int | None
    parent_id: int | None
    trace_id: int | None
    detail: dict[str, Any]
    children: list["SpanNode"] = field(default_factory=list)
    #: True when ``parent_id`` was set but never found in the trace.
    orphan: bool = False

    @property
    def end(self) -> float:
        return self.time + self.duration


@dataclass
class JobTrace:
    """Everything recorded about one job, re-assembled.

    ``cell`` is the index of the grid (sweep cell) that produced the
    spans: sweeps run many independent simulations through one bus, and
    job GUIDs repeat across cells (same seed => same job names), so
    (cell, trace_id) is the actual identity.
    """

    trace_id: int
    cell: int = 0
    spans: list[SpanNode] = field(default_factory=list)
    roots: list[SpanNode] = field(default_factory=list)
    #: Point events (no span id) carrying this trace id, e.g. net.msg.
    events: list[dict[str, Any]] = field(default_factory=list)
    orphans: list[SpanNode] = field(default_factory=list)

    @property
    def name(self) -> str | None:
        for s in self.spans:
            j = s.detail.get("job")
            if j is not None:
                return j
        return None

    @property
    def lifecycle(self) -> SpanNode | None:
        for s in self.spans:
            if s.category == LIFECYCLE:
                return s
        return None

    @property
    def terminal(self) -> str | None:
        """The job's final state, or None if it never reached one."""
        life = self.lifecycle
        return None if life is None else life.detail.get("state")

    @property
    def start(self) -> float:
        return min((s.time for s in self.spans), default=0.0)

    @property
    def end(self) -> float:
        return max((s.end for s in self.spans), default=0.0)

    @property
    def makespan(self) -> float:
        return self.end - self.start

    @property
    def retries(self) -> int:
        """Extra matchmaking rounds beyond the first (retry-chain depth)."""
        return max(0, sum(1 for s in self.spans
                          if s.category == "job.match") - 1)

    def phase_totals(self) -> dict[str, float]:
        """Total time per phase, *summing* retry chains (a job with two
        dispatch attempts spent dispatch-phase time twice)."""
        totals = {p: 0.0 for p in PHASE_ORDER}
        for s in self.spans:
            phase = PHASE_OF.get(s.category)
            if phase is not None:
                totals[phase] += s.duration
        return totals

    def critical_path(self) -> list[SpanNode]:
        """The root-to-leaf chain of latest-ending spans.

        In a phase tree the child that ends last is the one the next
        phase (or the job's completion) actually waited on, so this
        chain is the causal explanation of the makespan.
        """
        root = self.lifecycle
        if root is None:
            if not self.roots:
                return []
            root = max(self.roots, key=lambda s: s.end)
        path = [root]
        node = root
        while node.children:
            node = max(node.children, key=lambda s: s.end)
            path.append(node)
        return path


@dataclass
class Timeline:
    """The reconstructed trace: one :class:`JobTrace` per (cell, job),
    plus the stream-level anomaly accounting."""

    jobs: list[JobTrace] = field(default_factory=list)
    #: Records evicted by the ring buffer before reconstruction.
    truncated: int = 0
    #: Span records carrying no trace id (not part of any job's story).
    untraced_spans: int = 0
    #: Number of cell-boundary markers (``grid.bind``) seen.
    cells: int = 0

    def job(self, trace_id: int, cell: int | None = None) -> JobTrace | None:
        """Look one job up by GUID (and cell, when the stream has many)."""
        for jt in self.jobs:
            if jt.trace_id == trace_id and (cell is None or jt.cell == cell):
                return jt
        return None

    def slowest(self, k: int = 5) -> list[JobTrace]:
        return sorted(self.jobs, key=lambda j: -j.makespan)[:k]

    def phase_percentiles(self, percentiles: tuple[int, ...] = (50, 90, 99)
                          ) -> dict[str, dict[str, float]]:
        """``{phase: {"p50": ..., ...}}`` over per-job phase totals.

        Jobs that never entered a phase contribute 0 for it — the
        distribution is over *jobs*, not over spans, so "most jobs skip
        the probe phase" shows up as a low probe median, as it should.
        """
        per_job = [j.phase_totals() for j in self.jobs]
        out: dict[str, dict[str, float]] = {}
        for phase in PHASE_ORDER:
            values = sorted(t[phase] for t in per_job)
            out[phase] = {f"p{p}": _percentile(values, p)
                          for p in percentiles}
            out[phase]["mean"] = (sum(values) / len(values)) if values else 0.0
        return out

    def anomalies(self) -> dict[str, Any]:
        """Stream-health flags: anything non-zero deserves a look."""
        orphan_spans = sum(len(j.orphans) for j in self.jobs)
        no_terminal = sorted(
            (j.cell, j.name or j.trace_id) for j in self.jobs
            if j.terminal is None)
        return {
            "orphan_spans": orphan_spans,
            "jobs_without_terminal": len(no_terminal),
            "jobs_without_terminal_ids": no_terminal[:20],
            "truncated_records": self.truncated,
            "untraced_spans": self.untraced_spans,
        }

    @property
    def healthy(self) -> bool:
        a = self.anomalies()
        return (a["orphan_spans"] == 0 and a["jobs_without_terminal"] == 0
                and a["truncated_records"] == 0)


def _percentile(sorted_values: list[float], p: float) -> float:
    """Nearest-rank percentile over an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(p / 100.0 * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def _as_dict(rec: Any) -> dict[str, Any]:
    if isinstance(rec, TraceEvent):
        return rec.to_dict()
    return rec


def build_timeline(records: Iterable[Any], dropped: int = 0) -> Timeline:
    """Reconstruct per-job span trees from a flat record stream.

    ``records`` may be live :class:`TraceEvent` objects or JSONL dicts;
    ``dropped`` is the bus's ring-buffer eviction count (taken from a
    ``trace.overflow`` trailer automatically when present in the
    stream).
    """
    tl = Timeline(truncated=dropped)
    by_key: dict[tuple[int, int], JobTrace] = {}
    # Span ids are unique within a cell (one bus feeding one grid), but a
    # concatenation of exports may reuse them across cells — key per cell.
    by_id: dict[tuple[int, int], tuple[SpanNode, JobTrace]] = {}
    pending: list[tuple[SpanNode, JobTrace]] = []
    cell = 0

    def job_of(trace_id: int) -> JobTrace:
        jt = by_key.get((cell, trace_id))
        if jt is None:
            jt = by_key[(cell, trace_id)] = JobTrace(trace_id, cell=cell)
            tl.jobs.append(jt)
        return jt

    for raw in records:
        rec = _as_dict(raw)
        cat = rec.get("cat")
        if cat == "trace.overflow":
            tl.truncated += int(rec.get("dropped", 0))
            continue
        if cat == "grid.bind":
            # Cell boundary: a new independent grid started feeding the
            # bus; GUIDs restart, so segment the stream here.
            cell += 1
            tl.cells += 1
            continue
        trace_id = rec.get("trace")
        span_id = rec.get("span")
        if span_id is None:
            # A point event: file it under its trace when it has one.
            if trace_id is not None:
                job_of(trace_id).events.append(rec)
            continue
        if trace_id is None:
            tl.untraced_spans += 1
            continue
        detail = {k: v for k, v in rec.items()
                  if k not in ("t", "cat", "span", "parent", "dur", "trace")}
        node = SpanNode(time=rec.get("t", 0.0), category=cat,
                        duration=rec.get("dur") or 0.0, span_id=span_id,
                        parent_id=rec.get("parent"), trace_id=trace_id,
                        detail=detail)
        jt = job_of(trace_id)
        by_id[(jt.cell, span_id)] = (node, jt)
        pending.append((node, jt))
        jt.spans.append(node)
    # Spans are appended when they *end*, so a parent (which outlives its
    # children) usually arrives after them — resolve links in a second
    # pass over the complete id map.
    for node, jt in pending:
        if node.parent_id is None:
            jt.roots.append(node)
            continue
        entry = by_id.get((jt.cell, node.parent_id))
        if entry is None or entry[1] is not jt:
            # Parent never closed (still open at export / evicted by the
            # ring) or belongs to another trace: keep the span, flag it.
            node.orphan = True
            jt.orphans.append(node)
            jt.roots.append(node)
        else:
            entry[0].children.append(node)
    for node, _jt in by_id.values():
        node.children.sort(key=lambda s: (s.time, s.span_id))
    for jt in tl.jobs:
        jt.roots.sort(key=lambda s: (s.time, s.span_id))
    return tl


def timeline_from_bus(bus) -> Timeline:
    """Reconstruct from a live :class:`TelemetryBus`."""
    return build_timeline(bus.records, dropped=bus.dropped)


def timeline_from_jsonl(path: str | Path) -> Timeline:
    """Reconstruct from a JSONL export (``Telemetry.export_jsonl``)."""
    return build_timeline(load_jsonl(path))


# -- rendering ------------------------------------------------------------

def render_job_timeline(jt: JobTrace, width: int = 48) -> str:
    """One job's span tree as an indented ASCII gantt chart."""
    t0, span_t = jt.start, max(jt.makespan, 1e-12)
    name = jt.name or f"trace {jt.trace_id}"
    state = jt.terminal or "NO TERMINAL EVENT"
    lines = [f"job {name}  [{state}]  makespan {jt.makespan:.3f}s  "
             f"t0={t0:.3f}  retries={jt.retries}"]

    def bar(s: SpanNode) -> str:
        lo = int((s.time - t0) / span_t * width)
        hi = int((s.end - t0) / span_t * width)
        hi = max(hi, lo + 1)
        return "." * lo + "#" * (hi - lo) + "." * (width - hi)

    def walk(node: SpanNode, depth: int) -> None:
        label = ("  " * depth + node.category)
        extra = ""
        if node.orphan:
            extra = "  (ORPHAN)"
        who = node.detail.get("node") or node.detail.get("run_node") \
            or node.detail.get("owner")
        if who:
            extra += f"  @{who}"
        status = node.detail.get("status")
        if status:
            extra += f"  status={status}"
        lines.append(f"  {label:<28.28} |{bar(node)}| "
                     f"{node.duration:9.3f}s{extra}")
        for child in node.children:
            walk(child, depth + 1)

    for root in jt.roots:
        walk(root, 0)
    if jt.events:
        lines.append(f"  ({len(jt.events)} point events, e.g. net.msg)")
    return "\n".join(lines)


def render_phase_table(tl: Timeline,
                       percentiles: tuple[int, ...] = (50, 90, 99)) -> str:
    """Phase-percentile table over all jobs in the timeline."""
    from repro.metrics.report import format_table

    stats = tl.phase_percentiles(percentiles)
    headers = ["phase", "mean (s)", *[f"p{p} (s)" for p in percentiles]]
    rows = []
    for phase in PHASE_ORDER:
        st = stats[phase]
        rows.append([phase, round(st["mean"], 4),
                     *[round(st[f"p{p}"], 4) for p in percentiles]])
    return format_table(
        headers, rows,
        title=f"Per-phase latency across {len(tl.jobs)} traced jobs")


def render_anomalies(tl: Timeline) -> str:
    a = tl.anomalies()
    lines = ["anomalies:"]
    lines.append(f"  orphan spans:            {a['orphan_spans']}")
    lines.append(f"  jobs w/o terminal event: {a['jobs_without_terminal']}")
    if a["jobs_without_terminal_ids"]:
        lines.append(f"    first ids: {a['jobs_without_terminal_ids']}")
    lines.append(f"  truncated records:       {a['truncated_records']}")
    lines.append(f"  untraced spans:          {a['untraced_spans']}")
    lines.append(f"  verdict: {'clean' if tl.healthy else 'DEGRADED'}")
    return "\n".join(lines)


def render_critical_path(jt: JobTrace) -> str:
    """The makespan-determining chain, one hop per line."""
    path = jt.critical_path()
    if not path:
        return "  (no spans)"
    lines = []
    for node in path:
        lines.append(f"  {node.category:<16} t={node.time:.3f}  "
                     f"dur={node.duration:.3f}s")
    return "\n".join(lines)
