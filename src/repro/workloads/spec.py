"""Workload configuration and the paper's Figure 2 scenario grid."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.grid.resources import ResourceSpec


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of one synthetic workload.

    Paper-scale defaults: "All of the test workloads consist of 1000 nodes
    and 5000 jobs, each of which has an average running time of about 100
    seconds.  The job arrival times are based on a Poisson distribution
    with an average inter-arrival rate of 0.1 seconds."  Lightly
    constrained jobs average 1.2 of the 3 resource constraints
    (``constraint_prob = 0.4``); heavily constrained average 2.4
    (``constraint_prob = 0.8``).
    """

    n_nodes: int = 1000
    n_jobs: int = 5000
    node_mode: str = "clustered"          # "clustered" | "mixed"
    job_mode: str = "clustered"           # "clustered" | "mixed"
    constraint_prob: float = 0.4          # per-dimension constraint probability
    node_classes: int = 10
    job_classes: int = 10
    mean_work: float = 100.0              # seconds (exponential)
    min_work: float = 1.0
    mean_interarrival: float = 0.1        # seconds (Poisson arrivals)
    n_clients: int = 4
    client_rate_weights: tuple[float, ...] = (4.0, 2.0, 1.0, 1.0)
    spec: ResourceSpec = field(default_factory=ResourceSpec)

    def __post_init__(self) -> None:
        if self.node_mode not in ("clustered", "mixed"):
            raise ValueError(f"bad node_mode {self.node_mode!r}")
        if self.job_mode not in ("clustered", "mixed"):
            raise ValueError(f"bad job_mode {self.job_mode!r}")
        if not 0.0 <= self.constraint_prob <= 1.0:
            raise ValueError("constraint_prob must be in [0, 1]")
        if self.n_nodes < 1 or self.n_jobs < 0:
            raise ValueError("population sizes must be positive")
        if len(self.client_rate_weights) != self.n_clients:
            raise ValueError("client_rate_weights length must equal n_clients")
        if self.mean_work <= 0 or self.mean_interarrival <= 0:
            raise ValueError("work and inter-arrival means must be positive")

    def scaled(self, factor: float) -> "WorkloadConfig":
        """Proportionally smaller instance with the *same offered load*.

        Scaling nodes and jobs by ``factor`` while dividing the arrival
        rate by the same factor keeps per-node utilization constant, so
        wait-time behaviour is comparable across scales (benches default
        to factor 1/4 of paper scale; see DESIGN.md §6).
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        return replace(
            self,
            n_nodes=max(2, round(self.n_nodes * factor)),
            n_jobs=max(1, round(self.n_jobs * factor)),
            mean_interarrival=self.mean_interarrival / factor,
        )


#: The four Figure 2 panels' workload families.  Each maps a scenario name
#: to (node_mode/job_mode, constraint level) pairs; the experiment driver
#: crosses them with the matchmakers.
FIGURE2_SCENARIOS: dict[str, WorkloadConfig] = {
    "clustered-light": WorkloadConfig(node_mode="clustered", job_mode="clustered",
                                      constraint_prob=0.4),
    "clustered-heavy": WorkloadConfig(node_mode="clustered", job_mode="clustered",
                                      constraint_prob=0.8),
    "mixed-light": WorkloadConfig(node_mode="mixed", job_mode="mixed",
                                  constraint_prob=0.4),
    "mixed-heavy": WorkloadConfig(node_mode="mixed", job_mode="mixed",
                                  constraint_prob=0.8),
}
