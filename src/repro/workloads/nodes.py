"""Node-population generation: clustered vs mixed capabilities."""

from __future__ import annotations

import numpy as np

from repro.grid.resources import Vector
from repro.workloads.spec import WorkloadConfig


def generate_nodes(cfg: WorkloadConfig, rng: np.random.Generator
                   ) -> list[tuple[str, Vector]]:
    """Generate ``(name, capability)`` pairs for the node population.

    * ``mixed`` — every node's level on every axis is drawn independently,
      uniform over the integer levels ``1..max_level``.
    * ``clustered`` — ``node_classes`` capability vectors are drawn the
      same way once, and nodes are spread evenly across the classes, so
      all nodes of a class are identical (the paper's equivalence-class
      populations that stress CAN zone splitting).
    """
    max_level = int(cfg.spec.max_level)
    dims = cfg.spec.dims
    caps: list[Vector] = []
    if cfg.node_mode == "mixed":
        levels = rng.integers(1, max_level + 1, size=(cfg.n_nodes, dims))
        caps = [tuple(float(v) for v in row) for row in levels]
    else:
        n_classes = min(cfg.node_classes, cfg.n_nodes)
        class_caps = rng.integers(1, max_level + 1, size=(n_classes, dims))
        for i in range(cfg.n_nodes):
            row = class_caps[i % n_classes]
            caps.append(tuple(float(v) for v in row))
    return [(f"node-{i:05d}", cap) for i, cap in enumerate(caps)]
