"""Job-stream generation: constraints, runtimes, Poisson arrivals.

Every generated job is *feasible* (satisfiable by at least one node in
the population): requirements are clamped against a uniformly chosen
"witness" node's capability.  The paper's matchmaking evaluation measures
load balance, not infeasibility handling, so its workloads are implicitly
feasible too; the TTL-walk ablation re-introduces match failure as a
property of the *algorithm*, which is the phenomenon of interest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grid.job import JobProfile
from repro.grid.resources import Vector
from repro.workloads.spec import WorkloadConfig


@dataclass(frozen=True)
class ScheduledJob:
    """A job profile plus its submission schedule."""

    submit_time: float
    client_index: int
    requirements: Vector
    work: float
    name: str

    def profile(self, client_id: int) -> JobProfile:
        return JobProfile(name=self.name, client_id=client_id,
                          requirements=self.requirements, work=self.work)


def generate_job_stream(cfg: WorkloadConfig, rng: np.random.Generator,
                        node_caps: list[Vector],
                        name_prefix: str = "job") -> list[ScheduledJob]:
    """Generate the submission stream for a node population.

    Arrivals form a Poisson process (exponential inter-arrival times with
    mean ``cfg.mean_interarrival``); each arrival is attributed to a
    client with probability proportional to ``client_rate_weights``
    ("multiple clients submitting jobs over time at different average
    rates"), which keeps the merged process Poisson.
    """
    if not node_caps:
        raise ValueError("node_caps must be non-empty (feasibility witnesses)")
    dims = cfg.spec.dims
    max_level = int(cfg.spec.max_level)
    caps_arr = np.asarray(node_caps, dtype=float)

    # -- requirement vectors ------------------------------------------------
    if cfg.job_mode == "mixed":
        masks = rng.random((cfg.n_jobs, dims)) < cfg.constraint_prob
        raw = rng.integers(1, max_level + 1, size=(cfg.n_jobs, dims)).astype(float)
        witnesses = caps_arr[rng.integers(0, len(node_caps), size=cfg.n_jobs)]
        reqs = np.where(masks, np.minimum(raw, witnesses), 0.0)
    else:
        n_classes = min(cfg.job_classes, max(1, cfg.n_jobs))
        class_masks = rng.random((n_classes, dims)) < cfg.constraint_prob
        class_raw = rng.integers(1, max_level + 1, size=(n_classes, dims)).astype(float)
        class_wit = caps_arr[rng.integers(0, len(node_caps), size=n_classes)]
        class_reqs = np.where(class_masks, np.minimum(class_raw, class_wit), 0.0)
        assignment = rng.integers(0, n_classes, size=cfg.n_jobs)
        reqs = class_reqs[assignment]

    # -- runtimes and arrivals ------------------------------------------------
    work = np.maximum(rng.exponential(cfg.mean_work, size=cfg.n_jobs),
                      cfg.min_work)
    gaps = rng.exponential(cfg.mean_interarrival, size=cfg.n_jobs)
    times = np.cumsum(gaps)
    weights = np.asarray(cfg.client_rate_weights, dtype=float)
    clients = rng.choice(len(weights), size=cfg.n_jobs, p=weights / weights.sum())

    jobs = []
    for i in range(cfg.n_jobs):
        jobs.append(ScheduledJob(
            submit_time=float(times[i]),
            client_index=int(clients[i]),
            requirements=tuple(float(v) for v in reqs[i]),
            work=float(work[i]),
            name=f"{name_prefix}-{i:06d}",
        ))
    return jobs


def mean_constraints(jobs: list[ScheduledJob]) -> float:
    """Average number of constrained dimensions (sanity metric; the paper
    quotes 1.2 for lightly and 2.4 for heavily constrained workloads)."""
    if not jobs:
        return float("nan")
    return float(np.mean([sum(1 for r in j.requirements if r > 0) for j in jobs]))
