"""Workload generation (paper §3.3).

"Our test workloads differ on two axes.  Workloads are categorized as
either clustered or mixed.  The former divides all nodes and jobs into a
small number of equivalence classes ... The latter assigns node
capabilities and job constraints randomly. ... workloads are also
distinguished by whether the jobs are lightly or heavily constrained."
"""

from repro.workloads.spec import WorkloadConfig, FIGURE2_SCENARIOS
from repro.workloads.nodes import generate_nodes
from repro.workloads.jobs import generate_job_stream
from repro.workloads.tracefile import load_trace, save_trace

__all__ = [
    "WorkloadConfig",
    "FIGURE2_SCENARIOS",
    "generate_nodes",
    "generate_job_stream",
    "load_trace",
    "save_trace",
]
