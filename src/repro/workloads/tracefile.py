"""Workload trace files: save and replay job streams.

The paper's §5 plan is to "characterize its behavior on real workloads,
via consultation with our application-area collaborators in astronomy and
physics" — i.e. replaying recorded submission traces.  This module gives
the grid a trace format for exactly that: a JSON-lines file, one job per
line, that can round-trip generated workloads or carry externally
recorded ones.

Format (one JSON object per line):

.. code-block:: json

   {"name": "job-000001", "submit_time": 0.42, "client_index": 0,
    "requirements": [6.0, 0.0, 2.0], "work": 118.3}

Optional per-job fields: ``input_size_kb``, ``output_size_kb``.
A leading comment line starting with ``#`` is ignored (header space).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.workloads.jobs import ScheduledJob

#: Required keys for every trace record.
_REQUIRED = ("name", "submit_time", "client_index", "requirements", "work")


class TraceFormatError(ValueError):
    """A trace file violated the format contract."""

    def __init__(self, line_no: int, detail: str):
        super().__init__(f"trace line {line_no}: {detail}")
        self.line_no = line_no
        self.detail = detail


def save_trace(path: str | Path, jobs: Iterable[ScheduledJob],
               comment: str | None = None) -> int:
    """Write a job stream to ``path``; returns the number of jobs written."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as fh:
        if comment:
            fh.write(f"# {comment}\n")
        for job in jobs:
            record = {
                "name": job.name,
                "submit_time": job.submit_time,
                "client_index": job.client_index,
                "requirements": list(job.requirements),
                "work": job.work,
            }
            fh.write(json.dumps(record) + "\n")
            count += 1
    return count


def load_trace(path: str | Path) -> list[ScheduledJob]:
    """Load a job stream; validates every record and submission ordering."""
    path = Path(path)
    jobs: list[ScheduledJob] = []
    names: set[str] = set()
    with path.open("r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(line_no, f"invalid JSON: {exc}") from None
            for key in _REQUIRED:
                if key not in record:
                    raise TraceFormatError(line_no, f"missing field {key!r}")
            name = record["name"]
            if not isinstance(name, str) or not name:
                raise TraceFormatError(line_no, "name must be a non-empty string")
            if name in names:
                raise TraceFormatError(line_no, f"duplicate job name {name!r}")
            names.add(name)
            work = float(record["work"])
            if work <= 0:
                raise TraceFormatError(line_no, f"work must be positive, got {work}")
            submit = float(record["submit_time"])
            if submit < 0:
                raise TraceFormatError(line_no, "submit_time must be >= 0")
            client = int(record["client_index"])
            if client < 0:
                raise TraceFormatError(line_no, "client_index must be >= 0")
            req = tuple(float(r) for r in record["requirements"])
            if any(r < 0 for r in req):
                raise TraceFormatError(line_no, "requirements must be >= 0")
            jobs.append(ScheduledJob(
                submit_time=submit,
                client_index=client,
                requirements=req,
                work=work,
                name=name,
            ))
    jobs.sort(key=lambda j: j.submit_time)
    return jobs
