"""Fault plans: named, reusable failure patterns bound to a live grid.

A *plan* is a frozen description (group count, strike rate, outage
length); calling :meth:`~FaultPlan.install` on a built
:class:`~repro.grid.system.DesktopGrid` creates the actual injector(s)
on that grid's simulator, drawing randomness from the grid's dedicated
``"faults"`` stream so fault timing replays bit-identically for a given
seed and never perturbs the workload/protocol streams.

Three correlated patterns beyond the independent churn the paper
evaluates:

* :class:`RackFailurePlan` — whole racks lose power together
  (crash: volatile state lost) via :class:`GroupFailureInjector`.
* :class:`PartitionStormPlan` — switch domains drop off the network
  together (partition: state survives, messages don't).
* :class:`DoubleFailurePlan` — the adversarial case for §2's recovery
  story: a job's owner *and* its run node go dark inside the same probe
  round, so neither side of the owner/runner watchdog pair can cover
  for the other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol

import numpy as np

from repro.sim.failure import GroupFailureInjector

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.system import DesktopGrid


def node_groups(grid: "DesktopGrid", n_groups: int) -> list[list[int]]:
    """Partition the population into ``n_groups`` contiguous "racks".

    Contiguous in ``node_list`` order — deterministic for a given
    population, no randomness consumed.
    """
    if n_groups < 1:
        raise ValueError("n_groups must be >= 1")
    ids = [n.node_id for n in grid.node_list]
    n_groups = min(n_groups, len(ids))
    size = max(1, len(ids) // n_groups)
    groups = [ids[i:i + size] for i in range(0, len(ids), size)]
    if len(groups) > n_groups:  # fold the remainder into the last rack
        groups[n_groups - 1:] = [sum(groups[n_groups - 1:], [])]
    return groups


class FaultPlan(Protocol):
    """Anything that can arm failure injection on a built grid."""

    def install(self, grid: "DesktopGrid") -> object:
        """Create the injector(s); returns the injector for inspection."""
        ...  # pragma: no cover


@dataclass(frozen=True)
class RackFailurePlan:
    """Correlated rack power loss: crash a whole group, recover later."""

    n_groups: int = 8
    mean_interval: float = 120.0
    outage: float = 60.0
    jitter: float = 0.5
    max_strikes: int | None = None

    def install(self, grid: "DesktopGrid") -> GroupFailureInjector:
        return GroupFailureInjector(
            grid.sim, grid.streams["faults"],
            node_groups(grid, self.n_groups),
            take_down_fn=grid.crash_node, bring_up_fn=grid.recover_node,
            mean_interval=self.mean_interval, outage=self.outage,
            jitter=self.jitter, max_strikes=self.max_strikes)


@dataclass(frozen=True)
class PartitionStormPlan:
    """Correlated switch loss: partition a whole group, heal later.

    State survives (queues, owned-job records, running timers), so heals
    resurrect *stale* protocol state — the regime that exposed the
    stale-owner double-FAILED bug this PR guards against.
    """

    n_groups: int = 8
    mean_interval: float = 120.0
    outage: float = 60.0
    jitter: float = 0.5
    max_strikes: int | None = None

    def install(self, grid: "DesktopGrid") -> GroupFailureInjector:
        return GroupFailureInjector(
            grid.sim, grid.streams["faults"],
            node_groups(grid, self.n_groups),
            take_down_fn=grid.partition_node, bring_up_fn=grid.heal_node,
            mean_interval=self.mean_interval, outage=self.outage,
            jitter=self.jitter, max_strikes=self.max_strikes)


class DoubleFailureInjector:
    """Take down a job's owner and run node inside one probe round.

    At each strike the injector picks (deterministically, from the
    ``"faults"`` stream) a job that currently has distinct live owner
    and run nodes, partitions *both* within ``spread`` seconds — far
    less than a heartbeat round — and heals them after ``outage``.
    While both are dark neither the owner's monitor sweep nor the run
    node's ack watchdog can fire, so recovery must come from the client
    resubmission watchdog or from the healed nodes' (stale) state.
    """

    def __init__(self, grid: "DesktopGrid", rng: np.random.Generator,
                 mean_interval: float, outage: float,
                 spread: float = 0.25,
                 max_strikes: int | None = None,
                 start: bool = True):
        if mean_interval <= 0 or outage <= 0:
            raise ValueError("mean_interval and outage must be positive")
        if spread < 0:
            raise ValueError("spread must be non-negative")
        self.grid = grid
        self.rng = rng
        self.mean_interval = mean_interval
        self.outage = outage
        self.spread = spread
        self.max_strikes = max_strikes
        self.strikes = 0
        self.pairs_hit = 0
        self.stopped = False
        if start:
            self.start()

    def start(self) -> None:
        self.stopped = False
        self.grid.sim.schedule(
            float(self.rng.exponential(self.mean_interval)), self._strike)

    def stop(self) -> None:
        self.stopped = True

    def _candidates(self) -> list[tuple[int, int]]:
        """(owner, run node) pairs of in-flight jobs, both live, distinct.

        Sorted by job guid so the pick below is a pure function of the
        rng draw, independent of dict iteration history.
        """
        nodes = self.grid.nodes
        pairs = []
        for guid in sorted(self.grid.jobs):
            job = self.grid.jobs[guid]
            if job.is_done or job.owner_id is None or job.run_node_id is None:
                continue
            if job.owner_id == job.run_node_id:
                continue
            owner = nodes.get(job.owner_id)
            runner = nodes.get(job.run_node_id)
            if owner is None or runner is None:
                continue
            if owner.alive and runner.alive:
                pairs.append((job.owner_id, job.run_node_id))
        return pairs

    def _strike(self) -> None:
        if self.stopped:
            return
        if self.max_strikes is not None and self.strikes >= self.max_strikes:
            return
        self.strikes += 1
        pairs = self._candidates()
        if pairs:
            owner_id, run_id = pairs[int(self.rng.integers(0, len(pairs)))]
            self.pairs_hit += 1
            sim = self.grid.sim
            # Owner first, runner a hair later — both inside one probe
            # round, so no watchdog observes a half-failed pair.
            sim.schedule(0.0, self.grid.partition_node, owner_id)
            sim.schedule(self.spread, self.grid.partition_node, run_id)
            sim.schedule(self.outage, self.grid.heal_node, owner_id)
            sim.schedule(self.outage + self.spread,
                         self.grid.heal_node, run_id)
        self.grid.sim.schedule(
            float(self.rng.exponential(self.mean_interval)), self._strike)


@dataclass(frozen=True)
class DoubleFailurePlan:
    """Owner + run-node double failures at exponential intervals."""

    mean_interval: float = 90.0
    outage: float = 45.0
    spread: float = 0.25
    max_strikes: int | None = None

    def install(self, grid: "DesktopGrid") -> DoubleFailureInjector:
        return DoubleFailureInjector(
            grid, grid.streams["faults"],
            mean_interval=self.mean_interval, outage=self.outage,
            spread=self.spread, max_strikes=self.max_strikes)
