"""The named scenario catalog.

A :class:`Scenario` composes a workload *shape* (a transform over the
generated :class:`~repro.workloads.jobs.ScheduledJob` stream) with a
*fault plan* (armed on the built grid) and any
:class:`~repro.grid.system.GridConfig` overrides the scenario needs
(fault scenarios turn the recovery protocol on — without heartbeats and
client resubmission a correlated outage just strands jobs forever).

Everything is deterministic per (scenario, seed): shaping draws from a
dedicated ``"scenario-shape"`` stream of the run's seed, fault plans
draw from the grid's ``"faults"`` stream, and neither touches the
workload or protocol streams — so the base population is bit-identical
across scenarios and seeds replay exactly.

Adding a scenario: write (or reuse) a shape in :mod:`.shapes` and/or a
plan in :mod:`.faults`, and register a :class:`Scenario` here.  See
EXPERIMENTS.md § Scenarios.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from repro.scenarios import shapes
from repro.scenarios.faults import (
    DoubleFailurePlan,
    FaultPlan,
    PartitionStormPlan,
    RackFailurePlan,
)
from repro.util.rng import RngStreams
from repro.workloads.jobs import ScheduledJob

Shape = Callable[[list[ScheduledJob], np.random.Generator],
                 list[ScheduledJob]]

#: GridConfig overrides every fault scenario shares: the §2 recovery
#: protocol must be on, or correlated outages simply strand jobs.
RECOVERY_OVERRIDES: Mapping[str, Any] = {
    "heartbeats_enabled": True,
    "client_resubmit_enabled": True,
}


@dataclass(frozen=True)
class Scenario:
    """One named adversarial regime."""

    name: str
    description: str
    shape: Shape | None = None
    fault_plan: FaultPlan | None = None
    grid_overrides: Mapping[str, Any] = field(default_factory=dict)

    def shaped_stream(self, stream: list[ScheduledJob],
                      seed: int) -> list[ScheduledJob]:
        """Apply the workload shape (identity when the scenario has none).

        The shaping rng is keyed by the run seed but lives on its own
        stream, so the *unshaped* population stays bit-identical to what
        every other experiment generates for that seed.
        """
        if self.shape is None:
            return stream
        return self.shape(stream, RngStreams(seed)["scenario-shape"])

    def install_faults(self, grid) -> object | None:
        """Arm the fault plan on a built grid (no-op when fault-free)."""
        if self.fault_plan is None:
            return None
        return self.fault_plan.install(grid)


SCENARIOS: dict[str, Scenario] = {}


def _register(s: Scenario) -> Scenario:
    if s.name in SCENARIOS:
        raise ValueError(f"duplicate scenario {s.name!r}")
    SCENARIOS[s.name] = s
    return s


_register(Scenario(
    "baseline",
    "Poisson arrivals, exponential runtimes, failure-free — the paper's "
    "benign regime, kept as the control cell."))

_register(Scenario(
    "flash_crowd",
    "Arrival gaps compressed 25x inside three burst windows (same total "
    "work, delivered in spikes).",
    shape=functools.partial(shapes.flash_crowd, burst_factor=25.0,
                            n_bursts=3, burst_frac=0.12)))

_register(Scenario(
    "diurnal",
    "Sinusoidal day/night arrival-rate cycle: ~2x peaks, near-silent "
    "troughs.",
    shape=functools.partial(shapes.diurnal, period=600.0, amplitude=0.8)))

_register(Scenario(
    "heavy_tail_pareto",
    "Runtimes redrawn from a mean-matched Pareto (alpha=1.6): rare "
    "stragglers dominate the wait tail.",
    shape=functools.partial(shapes.pareto_runtimes, alpha=1.6)))

_register(Scenario(
    "heavy_tail_lognormal",
    "Runtimes redrawn from a mean-matched lognormal (sigma=1.8): heavy "
    "but finite-variance tail.",
    shape=functools.partial(shapes.lognormal_runtimes, sigma=1.8)))

_register(Scenario(
    "correlated_failure",
    "Whole racks lose power together (crash: state lost) and recover "
    "after a shared outage.",
    fault_plan=RackFailurePlan(n_groups=8, mean_interval=150.0,
                               outage=80.0),
    grid_overrides=RECOVERY_OVERRIDES))

_register(Scenario(
    "partition_storm",
    "Switch domains drop off the network together (partition: state "
    "survives) and heal with stale protocol state intact.",
    fault_plan=PartitionStormPlan(n_groups=8, mean_interval=150.0,
                                  outage=80.0),
    grid_overrides=RECOVERY_OVERRIDES))

_register(Scenario(
    "double_failure",
    "A job's owner and run node are partitioned inside one probe round, "
    "defeating both §2 watchdogs at once.",
    fault_plan=DoubleFailurePlan(mean_interval=100.0, outage=60.0),
    grid_overrides=RECOVERY_OVERRIDES))


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r}; "
                       f"choose from {sorted(SCENARIOS)}") from None


def scenario_names() -> list[str]:
    return list(SCENARIOS)
