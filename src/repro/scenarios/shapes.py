"""Adversarial workload shapes: bursts, cycles, heavy tails.

The paper's evaluation drives every matchmaker with the same benign
traffic — Poisson arrivals and exponential runtimes.  Scheduler quality
only separates under the regimes real desktop grids see (Bui et al.,
arXiv 0812.0736; Banerjee & Hecker, arXiv 1509.06420): flash crowds,
diurnal load cycles, and heavy-tailed runtimes whose stragglers dominate
the wait-time tail.  Each shape here is a *transform* over an already
generated :class:`~repro.workloads.jobs.ScheduledJob` stream, so the A/B
discipline survives: the base population and stream come from the usual
seeded streams, the shape perturbs them deterministically (any extra
randomness comes from a dedicated rng passed in), and every matchmaker /
mitigation cell replays the identical shaped stream.
"""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np

from repro.workloads.jobs import ScheduledJob

Stream = "list[ScheduledJob]"


def _rebuild_times(stream: list[ScheduledJob],
                   gaps: np.ndarray) -> list[ScheduledJob]:
    """Re-cumulate modified inter-arrival gaps into submit times."""
    times = np.cumsum(gaps)
    return [replace(sj, submit_time=float(times[i]))
            for i, sj in enumerate(stream)]


def _gaps_of(stream: list[ScheduledJob]) -> np.ndarray:
    times = np.array([sj.submit_time for sj in stream], dtype=float)
    return np.diff(times, prepend=0.0)


def flash_crowd(stream: list[ScheduledJob], rng: np.random.Generator,
                burst_factor: float = 25.0, n_bursts: int = 3,
                burst_frac: float = 0.12) -> list[ScheduledJob]:
    """Compress arrival gaps into flash crowds.

    ``n_bursts`` windows are placed over the job index space at
    rng-chosen offsets; inside a window the arrival rate is multiplied by
    ``burst_factor`` (10–100x is the regime the ROADMAP calls for), and
    the gaps *between* windows stretch so the total span stays roughly
    the base stream's — the same work arrives, but in spikes.
    """
    if burst_factor <= 1.0:
        raise ValueError("burst_factor must exceed 1")
    if not 0.0 < burst_frac * n_bursts < 1.0:
        raise ValueError("bursts must cover a proper fraction of the stream")
    n = len(stream)
    if n == 0:
        return []
    gaps = _gaps_of(stream)
    burst_len = max(1, int(round(n * burst_frac)))
    # Burst start offsets, drawn then sorted so windows are reproducible
    # and non-overlapping (each start confined to its own 1/n_bursts band).
    starts = []
    band = n // max(n_bursts, 1)
    for b in range(n_bursts):
        lo = b * band
        hi = max(lo + 1, (b + 1) * band - burst_len)
        starts.append(int(rng.integers(lo, hi)))
    in_burst = np.zeros(n, dtype=bool)
    for s in starts:
        in_burst[s:s + burst_len] = True
    squeeze = 1.0 / burst_factor
    # Keep total offered time comparable: the time removed from burst
    # windows is returned to the calm gaps pro-rata.
    removed = float(gaps[in_burst].sum()) * (1.0 - squeeze)
    calm = ~in_burst
    calm_total = float(gaps[calm].sum())
    stretch = 1.0 + (removed / calm_total if calm_total > 0 else 0.0)
    new_gaps = np.where(in_burst, gaps * squeeze, gaps * stretch)
    return _rebuild_times(stream, new_gaps)


def diurnal(stream: list[ScheduledJob], rng: np.random.Generator,
            period: float = 600.0, amplitude: float = 0.8
            ) -> list[ScheduledJob]:
    """Sinusoidal day/night arrival-rate modulation.

    The instantaneous rate is ``base * (1 + amplitude*sin(2*pi*t/period))``;
    gaps are divided by the rate factor at the (pre-transform) arrival
    time.  ``amplitude`` close to 1 gives near-silent troughs and ~2x
    peaks.  No randomness is consumed (``rng`` accepted for the uniform
    shape signature).
    """
    del rng  # deterministic transform; keeps the shape(stream, rng) signature
    if not 0.0 <= amplitude < 1.0:
        raise ValueError("amplitude must be in [0, 1)")
    if period <= 0:
        raise ValueError("period must be positive")
    gaps = _gaps_of(stream)
    t = 0.0
    new_gaps = np.empty_like(gaps)
    for i, g in enumerate(gaps):
        rate = 1.0 + amplitude * math.sin(2.0 * math.pi * t / period)
        new_gaps[i] = g / max(rate, 1e-9)
        t += float(new_gaps[i])
    return _rebuild_times(stream, new_gaps)


def pareto_runtimes(stream: list[ScheduledJob], rng: np.random.Generator,
                    alpha: float = 1.6, mean_work: float | None = None,
                    min_work: float = 1.0) -> list[ScheduledJob]:
    """Replace runtimes with a mean-matched Pareto (heavy tail).

    ``alpha`` in (1, 2] gives finite mean but infinite (or huge) variance
    — the straggler regime.  The scale is chosen so the distribution's
    mean equals ``mean_work`` (default: the base stream's empirical
    mean), so total offered load stays comparable and only the *shape*
    changes.
    """
    if alpha <= 1.0:
        raise ValueError("alpha must exceed 1 for a finite mean")
    if mean_work is None:
        mean_work = float(np.mean([sj.work for sj in stream])) if stream else 1.0
    # Lomax/Pareto-II with scale m has mean m/(alpha-1).
    scale = mean_work * (alpha - 1.0)
    draws = rng.pareto(alpha, size=len(stream)) * scale
    work = np.maximum(draws, min_work)
    return [replace(sj, work=float(work[i])) for i, sj in enumerate(stream)]


def lognormal_runtimes(stream: list[ScheduledJob], rng: np.random.Generator,
                       sigma: float = 1.8, mean_work: float | None = None,
                       min_work: float = 1.0) -> list[ScheduledJob]:
    """Replace runtimes with a mean-matched lognormal (heavy tail).

    ``mu`` is solved from the target mean (``exp(mu + sigma^2/2)``), so
    offered load matches the base stream while the tail fattens with
    ``sigma``.
    """
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    if mean_work is None:
        mean_work = float(np.mean([sj.work for sj in stream])) if stream else 1.0
    mu = math.log(mean_work) - 0.5 * sigma * sigma
    draws = rng.lognormal(mu, sigma, size=len(stream))
    work = np.maximum(draws, min_work)
    return [replace(sj, work=float(work[i])) for i, sj in enumerate(stream)]
