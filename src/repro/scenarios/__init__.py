"""Adversarial scenario packs: workload shapes + fault plans, by name.

See :mod:`repro.scenarios.catalog` for the registry and
EXPERIMENTS.md § Scenarios for the user-facing catalog.
"""

from repro.scenarios.catalog import (
    RECOVERY_OVERRIDES,
    SCENARIOS,
    Scenario,
    get_scenario,
    scenario_names,
)
from repro.scenarios.faults import (
    DoubleFailureInjector,
    DoubleFailurePlan,
    PartitionStormPlan,
    RackFailurePlan,
    node_groups,
)
from repro.scenarios.shapes import (
    diurnal,
    flash_crowd,
    lognormal_runtimes,
    pareto_runtimes,
)

__all__ = [
    "RECOVERY_OVERRIDES",
    "SCENARIOS",
    "Scenario",
    "get_scenario",
    "scenario_names",
    "DoubleFailureInjector",
    "DoubleFailurePlan",
    "PartitionStormPlan",
    "RackFailurePlan",
    "node_groups",
    "diurnal",
    "flash_crowd",
    "lognormal_runtimes",
    "pareto_runtimes",
]
