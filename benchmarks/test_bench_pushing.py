"""Load-aware pushing (paper §3.3: "dramatically improves ... load
balancing compared to the basic CAN scheme ... still with low
matchmaking cost")."""

from conftest import BENCH_SCALE, BENCH_SEEDS, assert_shapes, save_report

from repro.experiments import run_pushing_experiment


def test_pushing_repairs_pathology(benchmark):
    result = benchmark.pedantic(
        run_pushing_experiment,
        kwargs={"scale": BENCH_SCALE, "seeds": BENCH_SEEDS},
        rounds=1, iterations=1)
    save_report("pushing", result.report())
    assert_shapes(result.shape_checks())
