"""Message-level Chord maintenance study: traffic vs reliability under
churn with zero oracle repair (§3.3's network-maintenance simulations)."""

from conftest import BENCH_SCALE, assert_shapes, save_report

from repro.experiments import run_protocol_experiment
from repro.experiments.protocol import ProtocolConfig


def test_protocol_maintenance_tradeoff(benchmark):
    config = ProtocolConfig(n_nodes=max(32, int(192 * BENCH_SCALE)))
    result = benchmark.pedantic(
        run_protocol_experiment, kwargs={"config": config},
        rounds=1, iterations=1)
    save_report("protocol_maintenance", result.report())
    assert_shapes(result.shape_checks())
