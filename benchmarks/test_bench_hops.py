"""Matchmaking-cost table (paper prose: "a small number of hops")."""

from conftest import BENCH_SCALE, BENCH_SEEDS, assert_shapes, save_report

from repro.experiments import run_hops_experiment


def test_matchmaking_cost_small(benchmark):
    result = benchmark.pedantic(
        run_hops_experiment, kwargs={"scale": BENCH_SCALE,
                                     "seed": BENCH_SEEDS[0]},
        rounds=1, iterations=1)
    save_report("hops", result.report())
    assert_shapes(result.shape_checks())
    # Every row's total cost is far below the population size.
    for row in result.rows:
        assert row[-1] < result.n_nodes / 2
