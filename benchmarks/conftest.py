"""Benchmark-harness configuration.

Each ``test_bench_*`` file regenerates one paper artifact (table/figure)
at a configurable scale and prints/saves the same rows/series the paper
reports (see DESIGN.md §3 for the experiment index).

Environment knobs:

* ``REPRO_BENCH_SCALE`` — workload scale factor relative to the paper's
  1000-node/5000-job setup (default ``0.25``; ``1.0`` reproduces paper
  scale — expect several minutes per figure).
* ``REPRO_BENCH_SEEDS`` — comma-separated replicate seeds (default
  ``1,2,3``).

Reports are written to ``benchmarks/reports/*.txt`` and echoed to stdout
(run with ``pytest benchmarks/ --benchmark-only -s`` to see them live).
"""

from __future__ import annotations

import os
from pathlib import Path

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))
BENCH_SEEDS = tuple(
    int(s) for s in os.environ.get("REPRO_BENCH_SEEDS", "1,2,3").split(","))

REPORT_DIR = Path(__file__).parent / "reports"


def save_report(name: str, text: str) -> None:
    """Persist a rendered report and echo it for ``-s`` runs."""
    REPORT_DIR.mkdir(exist_ok=True)
    path = REPORT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[report saved to {path}]")


def assert_shapes(checks: dict[str, bool], *keys: str) -> None:
    """Assert the named qualitative shape checks hold (all, if no keys)."""
    selected = {k: checks[k] for k in keys} if keys else checks
    failed = [k for k, ok in selected.items() if not ok]
    assert not failed, f"shape checks failed: {failed} (all: {checks})"
