"""Protocol-tuning sweeps: heartbeat cadence, RN-Tree walk length, WAN
latency sensitivity."""

from conftest import BENCH_SCALE, BENCH_SEEDS, assert_shapes, save_report

from repro.experiments import (
    run_heartbeat_sweep,
    run_latency_sensitivity,
    run_walk_length_sweep,
)


def test_tuning_heartbeat_cadence(benchmark):
    result = benchmark.pedantic(
        run_heartbeat_sweep,
        kwargs={"n_nodes": max(60, int(400 * BENCH_SCALE)),
                "n_jobs": max(150, int(1200 * BENCH_SCALE)),
                "seed": BENCH_SEEDS[0]},
        rounds=1, iterations=1)
    save_report("tuning_heartbeat", result.report())
    assert_shapes(result.shape_checks())


def test_tuning_walk_length(benchmark):
    result = benchmark.pedantic(
        run_walk_length_sweep,
        kwargs={"scale": BENCH_SCALE, "seed": BENCH_SEEDS[0]},
        rounds=1, iterations=1)
    save_report("tuning_walk_length", result.report())
    assert_shapes(result.shape_checks())


def test_tuning_latency_sensitivity(benchmark):
    result = benchmark.pedantic(
        run_latency_sensitivity,
        kwargs={"scale": BENCH_SCALE, "seed": BENCH_SEEDS[0]},
        rounds=1, iterations=1)
    save_report("tuning_latency", result.report())
    assert_shapes(result.shape_checks())
