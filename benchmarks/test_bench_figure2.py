"""Figure 2 (all four panels): job wait time, clustered & mixed workloads.

The full scenario grid (4 workloads x 3 matchmakers x seeds) is computed
once and shared by the four panel benchmarks; ``test_fig2a`` carries the
wall-clock cost, the rest validate their panel from the cached result.
"""

from __future__ import annotations

from functools import lru_cache

from conftest import BENCH_SCALE, BENCH_SEEDS, assert_shapes, save_report

from repro.experiments import run_figure2


@lru_cache(maxsize=1)
def figure2_result():
    return run_figure2(scale=BENCH_SCALE, seeds=BENCH_SEEDS)


def test_fig2a_average_wait_clustered(benchmark):
    result = benchmark.pedantic(figure2_result, rounds=1, iterations=1)
    report = result.report()
    save_report("figure2", report)
    assert_shapes(result.shape_checks())
    for level, rnt, can, cent in result.panel("clustered", "wait_mean"):
        assert cent <= min(rnt, can) + 1.0, (level, rnt, can, cent)
    # The report carries the wait-time tail supplement, and the tail is
    # ordered sanely in every cell.
    assert "Wait-time tail percentiles" in report
    for by_mm in result.values.values():
        for s in by_mm.values():
            assert s["wait_p50"] <= s["wait_p95"] <= s["wait_p99"] \
                <= s["wait_max"] + 1e-9


def test_fig2b_stdev_wait_clustered(benchmark):
    result = benchmark.pedantic(figure2_result, rounds=1, iterations=1)
    for level, rnt, can, cent in result.panel("clustered", "wait_std"):
        # The centralized target balances best: lowest dispersion too.
        assert cent <= min(rnt, can) + 5.0, (level, rnt, can, cent)


def test_fig2c_average_wait_mixed(benchmark):
    result = benchmark.pedantic(figure2_result, rounds=1, iterations=1)
    rows = {level: (rnt, can, cent)
            for level, rnt, can, cent in result.panel("mixed", "wait_mean")}
    rnt, can, cent = rows["lightly"]
    # The §3.3 finding: basic CAN collapses for lightly-constrained jobs
    # on mixed nodes.
    assert can > 2.0 * rnt
    assert can > 3.0 * max(cent, 1.0)
    rnt_h, can_h, cent_h = rows["heavily"]
    assert can_h < 2.5 * rnt_h  # competitive when heavily constrained


def test_fig2d_stdev_wait_mixed(benchmark):
    result = benchmark.pedantic(figure2_result, rounds=1, iterations=1)
    rows = {level: (rnt, can, cent)
            for level, rnt, can, cent in result.panel("mixed", "wait_std")}
    rnt, can, cent = rows["lightly"]
    # The pathology shows up as dispersion too (panel (d)'s tall CAN bar).
    assert can > 1.5 * rnt
    assert can > cent
