"""Robustness under churn: the paper's titular claim (P2P owner/run-node
recovery vs the client-server single point of failure)."""

from conftest import BENCH_SCALE, BENCH_SEEDS, assert_shapes, save_report

from repro.experiments import run_churn_experiment
from repro.experiments.churn import ChurnConfig


def test_churn_robustness(benchmark):
    config = ChurnConfig(
        n_nodes=max(60, int(480 * BENCH_SCALE)),
        n_jobs=max(200, int(1600 * BENCH_SCALE)),
    )
    result = benchmark.pedantic(
        run_churn_experiment,
        kwargs={"config": config, "seeds": BENCH_SEEDS[:2]},
        rounds=1, iterations=1)
    save_report("churn", result.report())
    assert_shapes(result.shape_checks())
