"""DHT lookup-cost scaling (the §2 premise: DHT routing is "highly
robust, scalable, and efficient") plus substrate micro-benchmarks."""

import numpy as np
from conftest import assert_shapes, save_report

from repro.dht.can import CANNode, CANOverlay
from repro.dht.chord import ChordOverlay
from repro.dht.kademlia import KademliaOverlay
from repro.experiments import run_dht_scaling
from repro.util.ids import guid_for


def test_dht_lookup_scaling(benchmark):
    result = benchmark.pedantic(
        run_dht_scaling,
        kwargs={"sizes": (64, 128, 256, 512, 1024), "lookups": 200},
        rounds=1, iterations=1)
    save_report("dht_scaling", result.report())
    assert_shapes(result.shape_checks())


def test_micro_chord_lookup_rate(benchmark):
    ov = ChordOverlay(np.random.default_rng(0))
    ov.build(sorted({guid_for(f"micro-c-{i}") for i in range(512)}))
    keys = [guid_for(f"key-{i}") for i in range(256)]

    def lookups():
        for key in keys:
            assert ov.route(key).success

    benchmark(lookups)


def test_micro_can_routing_rate(benchmark):
    rng = np.random.default_rng(0)
    ov = CANOverlay(np.random.default_rng(1), dims=4)
    for i in range(512):
        ov.join(CANNode(guid_for(f"micro-n-{i}"), tuple(rng.uniform(0, 1, 4))))
    targets = [tuple(rng.uniform(0, 1, 4)) for _ in range(256)]

    def routes():
        for t in targets:
            assert ov.route(t).success

    benchmark(routes)


def test_micro_pastry_lookup_rate(benchmark):
    from repro.dht.pastry import PastryOverlay

    ov = PastryOverlay(np.random.default_rng(0))
    ov.build(sorted({guid_for(f"micro-p-{i}") for i in range(512)}))
    keys = [guid_for(f"key-{i}") for i in range(256)]

    def lookups():
        for key in keys:
            assert ov.route(key).success

    benchmark(lookups)


def test_micro_kademlia_lookup_rate(benchmark):
    ov = KademliaOverlay(np.random.default_rng(0))
    ov.build(sorted({guid_for(f"micro-k-{i}") for i in range(512)}))
    keys = [guid_for(f"key-{i}") for i in range(256)]

    def lookups():
        for key in keys:
            assert ov.route(key).success

    benchmark(lookups)


def test_micro_event_kernel_throughput(benchmark):
    from repro.sim.kernel import Simulator

    def churn_events():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 50_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        assert count[0] == 50_000

    benchmark(churn_events)
