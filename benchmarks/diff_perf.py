"""Diff a BENCH_perf.json run against the committed baseline.

Prints a per-cell regression table and exits non-zero when any comparable
cell's throughput falls below ``baseline * (1 - tolerance)``.  Intended
for the CI bench-smoke job::

    python benchmarks/diff_perf.py                 # default paths + tol
    BENCH_TOL=0.3 python benchmarks/diff_perf.py   # allow 30% slack

Tolerance comes from ``BENCH_TOL`` (fractional slack, default 0.5 — CI
runners are noisy shared machines; the point is catching step-function
regressions, not 5% jitter).  Cells listed in ``perf.SCALE_FREE_CELLS``
are compared at any scale; scale-dependent cells are compared only when
the two documents were recorded at the same ``REPRO_BENCH_SCALE``.
Memory metrics (``mem_peak_mb`` / ``bytes_per_node``) gate too: growth
past ``MEM_FAIL_RATIO`` (+25%, fixed — tracemalloc peaks are
deterministic) against a same-cpu comparable baseline exits non-zero.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from perf import (
    BASELINE_PATH,
    CPU_SENSITIVE_CELLS,
    ENGINE_METRICS,
    MEMORY_METRICS,
    PERF_PATH,
    PERF_SCHEMA,
    SCALE_FREE_CELLS,
    THROUGHPUT_METRICS,
)

#: Memory metrics hard-fail past this growth ratio (fixed, not BENCH_TOL:
#: tracemalloc peaks are deterministic, so the gate can be tight even
#: when the throughput tolerance is slack for noisy CI runners).
MEM_FAIL_RATIO = 1.25


def load_doc(path: Path) -> dict:
    doc = json.loads(path.read_text())
    if doc.get("schema") != PERF_SCHEMA:
        raise SystemExit(f"{path}: unsupported schema {doc.get('schema')!r}")
    return doc


def compare(baseline: dict, current: dict,
            tolerance: float) -> tuple[list[tuple], list[str]]:
    """Per-cell rows plus the names of regressed cells.

    Row: (cell, metric, baseline value, current value, ratio, status) —
    status is ``ok`` / ``REGRESSED`` / ``warn (cpu)`` / ``warn (mem)`` /
    ``skipped (scale)`` / ``missing``.  Memory metrics (``MEMORY_METRICS``)
    gate like throughput: growth past ``MEM_FAIL_RATIO`` against a
    same-cpu, same-scale baseline is ``REGRESSED``; against a
    different-cpu or different-scale baseline (another malloc arena,
    another working set) it softens to ``warn (mem)``.  When the two
    documents were recorded on hosts with a different ``cpu_count``,
    regressions in ``CPU_SENSITIVE_CELLS`` are softened to ``warn (cpu)``
    and do not gate: a parallel sweep losing throughput because the
    runner has fewer cores than the baseline host is a hardware delta,
    not a code regression.
    """
    same_scale = baseline.get("scale") == current.get("scale")
    same_cpus = baseline.get("cpu_count") == current.get("cpu_count")
    rows: list[tuple] = []
    regressed: list[str] = []
    for cell, metric in sorted(THROUGHPUT_METRICS.items()):
        before = baseline["entries"].get(cell, {}).get(metric)
        after = current["entries"].get(cell, {}).get(metric)
        if before is None or after is None:
            rows.append((cell, metric, before, after, None, "missing"))
            continue
        if cell not in SCALE_FREE_CELLS and not same_scale:
            rows.append((cell, metric, before, after, None, "skipped (scale)"))
            continue
        ratio = after / before if before else float("inf")
        if ratio < 1.0 - tolerance:
            if cell in CPU_SENSITIVE_CELLS and not same_cpus:
                status = "warn (cpu)"
            else:
                status = "REGRESSED"
                regressed.append(cell)
        else:
            status = "ok"
        rows.append((cell, metric, before, after, ratio, status))
    # Memory metrics gate at a fixed +25%: tracemalloc peaks are exact
    # (not host-load-sensitive like wall clocks), so a step past
    # MEM_FAIL_RATIO on a comparable baseline is a real footprint
    # regression, not jitter.  Cross-cpu or cross-scale documents soften
    # to warn (mem) — different allocator arenas / working sets.
    for cell in sorted(set(baseline["entries"]) & set(current["entries"])):
        comparable = same_cpus and (same_scale or cell in SCALE_FREE_CELLS)
        for metric in sorted(MEMORY_METRICS):
            before = baseline["entries"][cell].get(metric)
            after = current["entries"][cell].get(metric)
            if before is None or after is None:
                continue
            ratio = after / before if before else float("inf")
            if ratio > MEM_FAIL_RATIO:
                if comparable:
                    status = "REGRESSED"
                    regressed.append(cell)
                else:
                    status = "warn (mem)"
            elif ratio > 1.0 + tolerance:
                status = "warn (mem)"
            else:
                status = "ok"
            rows.append((cell, metric, before, after, ratio, status))
    # Engine-overhead metrics are warn-only too: parent-side merge
    # bookkeeping is millisecond-scale and noisy on shared runners, so
    # drift is surfaced in the table but never gates.
    for cell in sorted(set(baseline["entries"]) & set(current["entries"])):
        for metric, higher_is_better in sorted(ENGINE_METRICS.items()):
            before = baseline["entries"][cell].get(metric)
            after = current["entries"][cell].get(metric)
            if before is None or after is None:
                continue
            ratio = after / before if before else float("inf")
            worse = (ratio < 1.0 - tolerance if higher_is_better
                     else ratio > 1.0 + tolerance)
            status = "warn (engine)" if worse else "ok"
            rows.append((cell, metric, before, after, ratio, status))
    return rows, regressed


def _fmt(value: float | None) -> str:
    """Counts get thousands separators; sub-10 values (merge seconds,
    speedup ratios) keep three decimals instead of collapsing to 0."""
    if value is None:
        return "-"
    return f"{value:,.0f}" if abs(value) >= 10 else f"{value:.3f}"


def render(rows: list[tuple], tolerance: float) -> str:
    header = (f"{'cell':<26} {'metric':<13} {'baseline':>12} "
              f"{'current':>12} {'ratio':>7}  status")
    lines = [header, "-" * len(header)]
    for cell, metric, before, after, ratio, status in rows:
        b = _fmt(before)
        a = _fmt(after)
        r = f"{ratio:.2f}x" if ratio is not None else "-"
        lines.append(f"{cell:<26} {metric:<13} {b:>12} {a:>12} {r:>7}  {status}")
    lines.append(f"(regression threshold: ratio < {1.0 - tolerance:.2f}x; "
                 f"BENCH_TOL={tolerance})")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--current", type=Path, default=PERF_PATH)
    ap.add_argument("--baseline", type=Path, default=BASELINE_PATH)
    ap.add_argument("--tolerance", type=float,
                    default=float(os.environ.get("BENCH_TOL", "0.5")))
    args = ap.parse_args(argv)

    if not args.baseline.is_file():
        print(f"no baseline at {args.baseline}; nothing to diff")
        return 0
    if not args.current.is_file():
        print(f"no current run at {args.current}; run the bench suite first",
              file=sys.stderr)
        return 2
    if not 0 <= args.tolerance < 1:
        print(f"tolerance must be in [0, 1), got {args.tolerance}",
              file=sys.stderr)
        return 2

    baseline, current = load_doc(args.baseline), load_doc(args.current)
    rows, regressed = compare(baseline, current, args.tolerance)
    print(f"perf diff: {args.current} vs {args.baseline} "
          f"(scales {current.get('scale')} vs {baseline.get('scale')})")
    if baseline.get("cpu_count") != current.get("cpu_count"):
        print(f"note: baseline recorded with cpu_count="
              f"{baseline.get('cpu_count')}, current host has "
              f"{current.get('cpu_count')} — cpu-sensitive cells "
              f"({', '.join(sorted(CPU_SENSITIVE_CELLS))}) warn instead "
              f"of gating")
    print(render(rows, args.tolerance))
    if regressed:
        print(f"\nREGRESSED: {', '.join(regressed)}", file=sys.stderr)
        return 1
    print("\nno regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
