"""Perf trajectory: machine-readable wall-clock and throughput tracking.

Assembles the measurement cells from :mod:`perf` into
``benchmarks/reports/BENCH_perf.json`` (schema documented in ``perf.py``)
so successive PRs can diff performance instead of guessing.  When the
committed pre-optimization baseline is present, the RN-Tree maintenance
cell must beat it — that is the incremental-aggregation payoff this
harness exists to keep honest.

Scale knobs: ``REPRO_BENCH_SCALE`` / ``REPRO_BENCH_SEEDS`` (see
``conftest.py``); ``REPRO_PERF_JOBS`` overrides the parallel cell's
worker count (default 4).
"""

from __future__ import annotations

import json
import os

from conftest import BENCH_SCALE, BENCH_SEEDS
from perf import (
    bench_dht_churn,
    bench_figure2,
    bench_grid_correlated_failure,
    bench_grid_steady_state,
    bench_kernel_events,
    bench_large_scale_grid,
    bench_latency_sampling,
    bench_message_throughput,
    bench_parallel_overhead,
    bench_rntree_maintenance,
    bench_scenario_flash_crowd,
    bench_select_vectorized,
    load_baseline,
    perf_document,
    save_perf,
)

PERF_JOBS = int(os.environ.get("REPRO_PERF_JOBS", "4"))


def test_perf_trajectory(benchmark):
    entries: dict[str, dict[str, float]] = {}

    def measure():
        entries["figure2.serial"] = bench_figure2(BENCH_SCALE, BENCH_SEEDS)
        entries["figure2.parallel"] = bench_figure2(
            BENCH_SCALE, BENCH_SEEDS, jobs=PERF_JOBS)
        entries["figure2.parallel"]["speedup_vs_serial"] = (
            entries["figure2.serial"]["wall_s"]
            / entries["figure2.parallel"]["wall_s"])
        entries["kernel.event_loop"] = bench_kernel_events(BENCH_SCALE)
        entries["net.message_throughput"] = bench_message_throughput()
        entries["latency.sampling"] = bench_latency_sampling()
        entries["grid.steady_state"] = bench_grid_steady_state()
        entries["rntree.churn_maintenance"] = bench_rntree_maintenance()
        entries["grid.large_scale"] = bench_large_scale_grid()
        entries["dht.churn"] = bench_dht_churn()
        entries["scenario.flash_crowd"] = bench_scenario_flash_crowd()
        entries["grid.correlated_failure"] = bench_grid_correlated_failure()
        entries["select.vectorized"] = bench_select_vectorized()
        entries["parallel.overhead"] = bench_parallel_overhead()
        return entries

    benchmark.pedantic(measure, rounds=1, iterations=1)

    doc = perf_document(BENCH_SCALE, BENCH_SEEDS, entries)
    path = save_perf(doc)
    print(f"\n[perf trajectory saved to {path}]")

    # The written document must be well-formed and self-consistent.
    written = json.loads(path.read_text())
    assert written["schema"] == 1
    for name, cell in written["entries"].items():
        assert cell["wall_s"] > 0, name
    for name in ("grid.large_scale", "dht.churn"):
        assert written["entries"][name]["mem_peak_mb"] > 0, name
        assert written["entries"][name]["bytes_per_node"] > 0, name
    speedup = written["entries"]["figure2.parallel"]["speedup_vs_serial"]

    # Multi-core speedup is only assertable on multi-core hosts; the
    # number is recorded either way so the trajectory file shows it.
    # (Skipped — never softened — below 4 cores: there is nothing to
    # measure, not a looser bar to clear.)
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 1.5, (
            f"parallel figure2 speedup {speedup:.2f}x < 1.5x on a "
            f"{os.cpu_count()}-core host")

    # The streaming spool fold must stay decisively faster than the
    # legacy pickled-state merge it replaced.  Parent-side work only, so
    # this holds on any core count; the floor is below the ~2x the
    # committed baseline records to absorb shared-runner noise.
    overhead = written["entries"]["parallel.overhead"]
    assert overhead["merge_speedup"] >= 1.4, (
        f"spool merge only {overhead['merge_speedup']:.2f}x faster than "
        f"the pickled-state path ({overhead['merge_s_spool'] * 1e3:.1f}ms "
        f"vs {overhead['merge_s_pickled'] * 1e3:.1f}ms)")
    assert overhead["bytes_spool"] < overhead["bytes_pickled"], (
        f"spool payload ({overhead['bytes_spool']:.0f} B) not smaller "
        f"than pickled-state payload ({overhead['bytes_pickled']:.0f} B)")

    baseline = load_baseline()
    if baseline is not None and \
            "rntree.churn_maintenance" in baseline["entries"]:
        before = baseline["entries"]["rntree.churn_maintenance"]
        after = written["entries"]["rntree.churn_maintenance"]
        assert after["churn_ops"] == before["churn_ops"]
        assert after["wall_s"] < before["wall_s"], (
            f"RN-Tree maintenance regressed: {after['wall_s']:.3f}s vs "
            f"baseline {before['wall_s']:.3f}s for {after['churn_ops']:.0f} "
            "churn ops")

    # Hot-path payoff gates: the message path is scale-free (fixed-size
    # cell), so it must beat the committed pre-optimization baseline at
    # any REPRO_BENCH_SCALE; the kernel cell is only comparable when run
    # at the scale the baseline was recorded at.
    if baseline is not None:
        bent = baseline["entries"]
        if "net.message_throughput" in bent:
            before = bent["net.message_throughput"]["msgs_per_s"]
            after = written["entries"]["net.message_throughput"]["msgs_per_s"]
            assert after > before, (
                f"message throughput regressed below the pre-optimization "
                f"baseline: {after:.0f} msgs/s vs {before:.0f}")
        if "kernel.event_loop" in bent and \
                written["scale"] == baseline["scale"]:
            before = bent["kernel.event_loop"]["events_per_s"]
            after = written["entries"]["kernel.event_loop"]["events_per_s"]
            assert after > before, (
                f"kernel event loop regressed below the pre-optimization "
                f"baseline: {after:.0f} events/s vs {before:.0f}")


def test_perf_json_schema_roundtrip(tmp_path):
    doc = perf_document(0.1, (1,), {"cell": {"wall_s": 1.2345678}})
    path = save_perf(doc, tmp_path / "BENCH_perf.json")
    back = json.loads(path.read_text())
    assert back["schema"] == 1
    assert back["entries"]["cell"]["wall_s"] == 1.234568  # rounded
    assert back["cpu_count"] >= 1
