"""Machine-readable performance cells for the perf-trajectory benchmark.

Each ``bench_*`` function times one well-defined workload cell and returns
a flat dict of floats; ``test_bench_perf.py`` assembles the cells into
``benchmarks/reports/BENCH_perf.json`` so future PRs can diff wall-clock
against a recorded baseline (``BENCH_perf.baseline.json``).

``BENCH_perf.json`` schema (version 1)::

    {
      "schema": 1,
      "scale": 0.25,              # REPRO_BENCH_SCALE used for the run
      "seeds": [1],               # REPRO_BENCH_SEEDS used for the run
      "cpu_count": 8,             # os.cpu_count() on the measuring host
      "python": "3.12.3",
      "entries": {
        "figure2.serial":   {"wall_s": ..., "cells": 12.0,
                             "cells_per_s": ...},
        "figure2.parallel": {"wall_s": ..., "cells": 12.0,
                             "cells_per_s": ..., "jobs": 4.0,
                             "speedup_vs_serial": ...},
        "kernel.event_loop": {"wall_s": ..., "sim_events": ...,
                              "events_per_s": ...},
        "net.message_throughput": {"wall_s": ..., "messages": ...,
                                   "msgs_per_s": ...},
        "latency.sampling":  {"wall_s": ..., "samples": ...,
                              "samples_per_s": ...},
        "grid.steady_state": {"wall_s": ..., "sim_events": ...,
                              "events_per_s": ..., "n_nodes": ...},
        "rntree.churn_maintenance": {"wall_s": ..., "churn_ops": ...,
                                     "ops_per_s": ..., "n_nodes": ...},
        "grid.large_scale": {"wall_s": ..., "sim_events": ...,
                             "events_per_s": ..., "n_nodes": ...,
                             "mem_peak_mb": ..., "bytes_per_node": ...},
        "dht.churn": {"wall_s": ..., "churn_steps": ..., "lookups": ...,
                      "ops_per_s": ..., "n_nodes": ...,
                      "mem_peak_mb": ..., "bytes_per_node": ...},
        "select.vectorized": {"wall_s": ..., "selects": ...,
                              "selects_per_s": ...,
                              "selects_per_s_scalar": ...,
                              "speedup_vs_scalar": ..., "n_nodes": ...,
                              "k": ...},
        "parallel.overhead": {"wall_s": ..., "cells": 36.0, "jobs": 2.0,
                              "merge_s_pickled": ..., "merge_s_spool": ...,
                              "merge_speedup": ...,
                              "bytes_pickled": ..., "bytes_spool": ...,
                              "bytes_ratio": ...}
      }
    }

Memory fields (``mem_peak_mb``, ``bytes_per_node``) are ``tracemalloc``
peaks measured over the cell body in a *separate accounting pass*: each
memory-carrying cell runs twice, once untraced on the clock (``wall_s``
and the throughput metric come from this pass only) and once under
``tracemalloc`` for the peak.  Tracing costs roughly a microsecond per
object allocation, which used to dominate the timed wall of
allocation-heavy cells — the split keeps the throughput gate about the
simulator and the memory numbers about the simulator's footprint.  The
peaks themselves are computed exactly as before (same tracer, same cell
body), so they remain comparable with baselines recorded under the old
single-pass scheme; ``diff_perf.py`` hard-fails memory metrics that
regress >25% against a same-cpu baseline.

Cells named under ``SCALE_FREE_CELLS`` use fixed internal sizes, so their
throughput numbers are comparable across runs regardless of
``REPRO_BENCH_SCALE`` (``diff_perf.py`` relies on this to compare a CI
run against a baseline recorded at a different scale).

The measurement loops live here (not in the test file) so a baseline can
be recorded with *exactly* the code a later comparison uses.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path
from time import perf_counter
from typing import Any

import numpy as np

PERF_SCHEMA = 1
REPORT_DIR = Path(__file__).parent / "reports"
PERF_PATH = REPORT_DIR / "BENCH_perf.json"
BASELINE_PATH = REPORT_DIR / "BENCH_perf.baseline.json"

#: Cells whose workload size does not depend on REPRO_BENCH_SCALE, and
#: the throughput metric each one reports.
SCALE_FREE_CELLS: dict[str, str] = {
    "net.message_throughput": "msgs_per_s",
    "latency.sampling": "samples_per_s",
    "grid.steady_state": "events_per_s",
    "rntree.churn_maintenance": "ops_per_s",
    "grid.large_scale": "events_per_s",
    "dht.churn": "ops_per_s",
    "scenario.flash_crowd": "events_per_s",
    "grid.correlated_failure": "events_per_s",
    "select.vectorized": "selects_per_s",
}

#: Metrics that report resource footprint, not speed.  Lower is better;
#: tracemalloc peaks are deterministic, so diff_perf hard-fails growth
#: past its ``MEM_FAIL_RATIO`` (+25%) against a same-cpu comparable
#: baseline and warns otherwise.
MEMORY_METRICS: frozenset[str] = frozenset({"mem_peak_mb", "bytes_per_node"})

#: The headline throughput metric of every known cell (scale-dependent
#: cells are only comparable between runs at the same scale).
THROUGHPUT_METRICS: dict[str, str] = {
    "figure2.serial": "cells_per_s",
    "figure2.parallel": "cells_per_s",
    "kernel.event_loop": "events_per_s",
    **SCALE_FREE_CELLS,
}

#: Cells whose throughput scales with worker-process count.  When the
#: baseline document was recorded on a host with a different
#: ``cpu_count``, a "regression" in these cells usually measures the
#: hardware, not the code — diff_perf softens them to a warning.
CPU_SENSITIVE_CELLS: frozenset[str] = frozenset({"figure2.parallel"})

#: Engine-overhead metrics of the ``parallel.overhead`` cell: parent-side
#: telemetry merge bookkeeping, A/B'd between the streaming spool fold
#: and the legacy pickled-state merge.  Millisecond-scale numbers on
#: noisy shared runners — diff_perf surfaces drift as ``warn (engine)``
#: but never gates on it.  Maps metric name -> True when higher is
#: better (speedups), False when lower is better (seconds, bytes).
ENGINE_METRICS: dict[str, bool] = {
    "merge_speedup": True,
    "merge_s_spool": False,
    "bytes_spool": False,
}


# ----------------------------------------------------------------------
# measurement cells
# ----------------------------------------------------------------------

def bench_figure2(scale: float, seeds: tuple[int, ...],
                  jobs: int | None = None) -> dict[str, float]:
    """Wall-clock of the full Figure 2 sweep (4 scenarios x 3 matchmakers
    x seeds).  ``jobs=None`` runs the historical serial path."""
    from repro.experiments import run_figure2

    kwargs: dict[str, Any] = {} if jobs is None else {"jobs": jobs}
    t0 = perf_counter()
    run_figure2(scale=scale, seeds=seeds, **kwargs)
    wall = perf_counter() - t0
    cells = 4 * 3 * len(seeds)
    out = {"wall_s": wall, "cells": float(cells), "cells_per_s": cells / wall}
    if jobs is not None:
        out["jobs"] = float(jobs)
    return out


def bench_kernel_events(scale: float, seed: int = 1) -> dict[str, float]:
    """Raw kernel throughput: events/sec driving one mixed-heavy cell."""
    from repro.experiments.runner import build_population, drive
    from repro.grid.system import DesktopGrid, GridConfig
    from repro.match import make_matchmaker
    from repro.workloads.spec import FIGURE2_SCENARIOS

    workload = FIGURE2_SCENARIOS["mixed-heavy"].scaled(scale)
    nodes, stream = build_population(workload, seed)
    grid = DesktopGrid(GridConfig(seed=seed, spec=workload.spec),
                       make_matchmaker("rn-tree"), nodes)
    t0 = perf_counter()
    drive(grid, workload, stream)
    wall = perf_counter() - t0
    events = grid.sim.events_processed
    return {"wall_s": wall, "sim_events": float(events),
            "events_per_s": events / wall}


def bench_message_throughput(n_messages: int = 20000,
                             seed: int = 3) -> dict[str, float]:
    """Messages/sec through ``Network.send`` -> delivery with telemetry
    counters attached — isolates the per-message allocation, latency
    sampling, and counter-update cost of the kernel->network->telemetry
    path.  Fixed size: comparable across ``REPRO_BENCH_SCALE`` values.
    """
    import numpy as np

    from repro.sim.kernel import Simulator
    from repro.sim.network import LatencyModel, Network
    from repro.telemetry.core import Telemetry

    kinds = ("heartbeat", "hb-ack", "assign", "result")

    class Echo:
        """Replies to every delivery until the message budget is spent."""

        __slots__ = ("node_id", "alive", "net", "peer", "remaining")

        def __init__(self, node_id, net, remaining):
            self.node_id = node_id
            self.alive = True
            self.net = net
            self.peer = None
            self.remaining = remaining

        def handle_message(self, msg):
            n = self.remaining
            if n > 0:
                self.remaining = n - 1
                self.net.send(kinds[n & 3], self.node_id, self.peer.node_id)

    sim = Simulator()
    rng = np.random.default_rng(seed)
    # Metrics on, per-message trace events filtered out: the counter path
    # is what production-scale runs pay on every message.
    tel = Telemetry(categories=("none",))
    net = Network(sim, rng, LatencyModel(mean=0.01, jitter=0.3),
                  telemetry=tel)
    a = Echo(1, net, n_messages // 2)
    b = Echo(2, net, n_messages - n_messages // 2 - 1)
    a.peer, b.peer = b, a
    net.register(a)
    net.register(b)
    t0 = perf_counter()
    net.send(kinds[0], 1, 2)
    sim.run()
    wall = perf_counter() - t0
    msgs = net.stats.sent
    return {"wall_s": wall, "messages": float(msgs),
            "msgs_per_s": msgs / wall}


def bench_latency_sampling(n_samples: int = 200000,
                           seed: int = 5) -> dict[str, float]:
    """Samples/sec from ``LatencyModel.sample`` — the innermost cost of
    every hop of every message and overlay route.  Fixed size."""
    import numpy as np

    from repro.sim.network import LatencyModel

    model = LatencyModel(mean=0.05, jitter=0.3)
    rng = np.random.default_rng(seed)
    sample = model.sample
    t0 = perf_counter()
    acc = 0.0
    for _ in range(n_samples):
        acc += sample(rng)
    wall = perf_counter() - t0
    assert acc > 0
    return {"wall_s": wall, "samples": float(n_samples),
            "samples_per_s": n_samples / wall}


def bench_grid_steady_state(scale: float = 0.08,
                            seed: int = 2) -> dict[str, float]:
    """Events/sec of a full protocol-heavy grid run: heartbeats, rpc load
    probes, and acknowledged dispatch all enabled, so periodic-task and
    rpc hot paths are on the clock.  Fixed (scaled-down) N: comparable
    across ``REPRO_BENCH_SCALE`` values."""
    from repro.experiments.runner import build_population, drive
    from repro.grid.system import DesktopGrid, GridConfig
    from repro.match import make_matchmaker
    from repro.workloads.spec import FIGURE2_SCENARIOS

    workload = FIGURE2_SCENARIOS["mixed-heavy"].scaled(scale)
    nodes, stream = build_population(workload, seed)
    cfg = GridConfig(seed=seed, spec=workload.spec, heartbeats_enabled=True,
                     probe_mode="rpc", dispatch_ack=True)
    grid = DesktopGrid(cfg, make_matchmaker("rn-tree"), nodes)
    t0 = perf_counter()
    drive(grid, workload, stream)
    wall = perf_counter() - t0
    events = grid.sim.events_processed
    return {"wall_s": wall, "sim_events": float(events),
            "events_per_s": events / wall, "n_nodes": float(workload.n_nodes)}


def bench_rntree_maintenance(n_nodes: int = 150, cycles: int = 150,
                             seed: int = 7) -> dict[str, float]:
    """Serial wall-clock of RN-Tree churn maintenance.

    Builds an rn-tree grid and applies ``cycles`` crash+recover pairs to
    seeded-random victims — isolating exactly the per-update overlay and
    tree maintenance cost the matchmaker pays under churn (no jobs run).
    """
    from repro.experiments.runner import build_population
    from repro.grid.system import DesktopGrid, GridConfig
    from repro.match import make_matchmaker
    from repro.workloads.spec import WorkloadConfig

    workload = WorkloadConfig(n_nodes=n_nodes, n_jobs=1)
    nodes, _ = build_population(workload, seed)
    grid = DesktopGrid(GridConfig(seed=seed), make_matchmaker("rn-tree"),
                       nodes)
    ids = [n.node_id for n in grid.node_list]
    rng = np.random.default_rng(seed)
    t0 = perf_counter()
    for _ in range(cycles):
        victim = ids[int(rng.integers(0, len(ids)))]
        grid.crash_node(victim)
        grid.recover_node(victim)
    wall = perf_counter() - t0
    ops = 2 * cycles
    return {"wall_s": wall, "churn_ops": float(ops), "ops_per_s": ops / wall,
            "n_nodes": float(n_nodes)}


def _traced_peak(run_cell) -> float:
    """Peak traced bytes over one extra run of ``run_cell`` (the memory
    accounting pass — see the module docstring; never on the clock)."""
    import tracemalloc

    tracemalloc.start()
    try:
        run_cell()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return float(peak)


def bench_large_scale_grid(n_nodes: int | None = None,
                           seed: int = 1) -> dict[str, float]:
    """Events/sec plus peak memory of a large-N workload cell.

    Exercises the scale-out kernel paths (timer wheel, batched dispatch,
    columnar registry and job table) at a size the per-job heap path
    never saw.  Fixed default N=2048 (scale-free); set
    ``REPRO_BENCH_LARGE_N=10000`` to opt in to the full-size cell
    locally.  Timing and memory come from separate passes — see the
    module docstring.
    """
    from repro.experiments.large_scale import run_workload_cell

    if n_nodes is None:
        n_nodes = int(os.environ.get("REPRO_BENCH_LARGE_N", "2048"))
    cell = run_workload_cell(n_nodes, seed=seed)
    peak = _traced_peak(lambda: run_workload_cell(n_nodes, seed=seed))
    return {"wall_s": cell.wall_s,
            "sim_events": cell.metrics["sim_events"],
            "events_per_s": cell.metrics["events_per_s"],
            "n_nodes": float(n_nodes),
            "mem_peak_mb": peak / 2**20,
            "bytes_per_node": peak / n_nodes}


def bench_dht_churn(n_nodes: int = 100_000, steps: int = 50,
                    lookups: int = 200, seed: int = 1) -> dict[str, float]:
    """Churn ops/sec plus peak memory of the 100k-node Chord cell.

    Builds the full ring, then crash/repair + rejoin cycles with lookups
    throughout — the membership-scale stress the paper's premise implies
    but never measures.  Fixed size (scale-free); timing and memory come
    from separate passes — see the module docstring.
    """
    from repro.experiments.large_scale import run_churn_cell

    cell = run_churn_cell(n_nodes, steps=steps, lookups=lookups, seed=seed)
    peak = _traced_peak(lambda: run_churn_cell(n_nodes, steps=steps,
                                               lookups=lookups, seed=seed))
    return {"wall_s": cell.wall_s,
            "churn_steps": cell.metrics["churn_steps"],
            "lookups": cell.metrics["lookups"],
            "ops_per_s": cell.metrics["ops_per_s"],
            "n_nodes": float(n_nodes),
            "mem_peak_mb": peak / 2**20,
            "bytes_per_node": peak / n_nodes}


def _bench_scenario(scenario_name: str, n_nodes: int, n_jobs: int,
                    seed: int) -> dict[str, float]:
    """Shared body of the scenario cells: build, shape, arm faults, run."""
    from repro.experiments.runner import build_population, drive
    from repro.grid.system import DesktopGrid, GridConfig
    from repro.match import make_matchmaker
    from repro.scenarios import get_scenario
    from repro.workloads.spec import WorkloadConfig

    scenario = get_scenario(scenario_name)
    mean_work = 60.0
    wl = WorkloadConfig(n_nodes=n_nodes, n_jobs=n_jobs, node_mode="mixed",
                        job_mode="mixed", constraint_prob=0.4,
                        mean_work=mean_work,
                        mean_interarrival=mean_work / (0.5 * n_nodes))
    nodes, stream = build_population(wl, seed)
    stream = scenario.shaped_stream(stream, seed)
    # Full message-level protocol, as in grid.steady_state — the point is
    # what the hot paths cost under the adversarial regime.
    overrides = {"heartbeats_enabled": True, "probe_mode": "rpc",
                 "dispatch_ack": True}
    overrides.update(scenario.grid_overrides)
    cfg = GridConfig(seed=seed, spec=wl.spec, **overrides)
    grid = DesktopGrid(cfg, make_matchmaker("rn-tree"), nodes)
    scenario.install_faults(grid)
    t0 = perf_counter()
    drive(grid, wl, stream, max_time=60_000.0)
    wall = perf_counter() - t0
    events = grid.sim.events_processed
    return {"wall_s": wall, "sim_events": float(events),
            "events_per_s": events / wall, "n_nodes": float(n_nodes)}


def bench_scenario_flash_crowd(n_nodes: int = 96, n_jobs: int = 480,
                               seed: int = 1) -> dict[str, float]:
    """Events/sec through a flash-crowd cell: 25x arrival bursts pile the
    matchmaking and queueing hot paths into narrow windows — the bursty
    regime the steady-state cell never stresses.  Fixed size."""
    return _bench_scenario("flash_crowd", n_nodes, n_jobs, seed)


def bench_grid_correlated_failure(n_nodes: int = 96, n_jobs: int = 480,
                                  seed: int = 1) -> dict[str, float]:
    """Events/sec under correlated rack failures with the full §2
    recovery protocol on: mass crash/recover transitions, monitor-sweep
    probing, and client resubmission all on the clock.  Fixed size."""
    return _bench_scenario("correlated_failure", n_nodes, n_jobs, seed)


def bench_select_vectorized(n_nodes: int = 10_000, k: int = 64,
                            rounds: int = 5_000,
                            seed: int = 9) -> dict[str, float]:
    """Phase-2 selection throughput over 10k-node registry columns, A/B.

    Runs ``rounds`` oracle least-loaded selections of ``k`` candidates
    each against one fixed 10k-node grid, twice: the scalar path (probe
    dict + Python rank) and the vectorized path (``CandidateSet.reg_idx``
    fancy-indexing the ``queue_len`` column).  Both selection loops are
    driven by identically-seeded RNGs, and each draws exactly once per
    selection, so the winners must match element-for-element — the cell
    asserts that A/B identity as a free equivalence check.  Headline
    metric is the vectorized path; the scalar throughput and the speedup
    ride along.  Fixed size (scale-free).
    """
    from repro.experiments.runner import build_population
    from repro.grid.system import DesktopGrid, GridConfig
    from repro.match import make_matchmaker
    from repro.match.select import (
        CandidateSet,
        LeastLoadedPolicy,
        oracle_select,
    )
    from repro.workloads.spec import WorkloadConfig

    wl = WorkloadConfig(n_nodes=n_nodes, n_jobs=1)
    nodes, _ = build_population(wl, seed)
    grid = DesktopGrid(GridConfig(seed=seed, spec=wl.spec),
                       make_matchmaker("centralized"), nodes)
    rng = np.random.default_rng(seed)
    # Seed the load column directly: both paths read registry.queue_len
    # (scalar via .loads(), vectorized via fancy indexing), so this is a
    # pure phase-2 A/B over realistically skewed loads.
    grid.registry.queue_len[:] = rng.poisson(3.0, n_nodes)
    node_list = grid.node_list
    cand_idx = [rng.choice(n_nodes, size=k, replace=False).astype(np.int64)
                for _ in range(rounds)]
    cand_ids = [[node_list[int(i)].node_id for i in idx] for idx in cand_idx]
    policy = LeastLoadedPolicy()

    def run(vectorized: bool) -> tuple[list[int], float]:
        rng_sel = np.random.default_rng(seed + 1)
        winners: list[int] = []
        t0 = perf_counter()
        for idx, ids in zip(cand_idx, cand_ids):
            cset = CandidateSet(candidates=list(ids),
                                reg_idx=idx if vectorized else None)
            ranking, _ = oracle_select(grid, cset, policy, rng_sel)
            winners.append(ranking[0])
        return winners, perf_counter() - t0

    scalar_winners, scalar_s = run(False)
    vec_winners, vec_s = run(True)
    assert vec_winners == scalar_winners, (
        "vectorized selection diverged from the scalar rank")
    return {"wall_s": scalar_s + vec_s, "selects": float(rounds),
            "selects_per_s": rounds / vec_s,
            "selects_per_s_scalar": rounds / scalar_s,
            "speedup_vs_scalar": scalar_s / max(vec_s, 1e-9),
            "n_nodes": float(n_nodes), "k": float(k)}


def bench_parallel_overhead(scale: float = 0.05,
                            seeds: tuple[int, ...] = (1, 2, 3),
                            jobs: int = 2) -> dict[str, float]:
    """Parent-side telemetry merge cost of a traced parallel sweep, A/B.

    Runs the full Figure 2 grid (4 scenarios x 3 matchmakers x 3 seeds =
    36 cells) with message-level tracing attached, once per merge mode:
    the legacy path (``REPRO_PARALLEL_MERGE=pickled`` — workers pickle
    their whole bus/metrics state, the parent unpickles and re-merges
    record by record) and the streaming spool fold that replaced it.
    ``merge_s_*`` is the parent's cumulative fold wall time as reported
    by the engine's own telemetry (:func:`repro.experiments.parallel.
    engine_stats`); ``bytes_*`` the serialized payload moved from workers
    to parent.  Fixed size and scale — comparable across
    ``REPRO_BENCH_SCALE`` values.  The timing cache is disabled so both
    runs plan from identical cost estimates.
    """
    from repro.experiments import parallel, run_figure2
    from repro.telemetry.core import Telemetry

    overrides = {"probe_mode": "rpc", "dispatch_ack": True}
    saved = {k: os.environ.get(k)
             for k in (parallel.ENV_MERGE, parallel.ENV_TIMING_CACHE)}
    os.environ[parallel.ENV_TIMING_CACHE] = "off"
    merge_s: dict[str, float] = {}
    payload: dict[str, float] = {}
    wall_total = 0.0
    try:
        for mode in ("pickled", "spool"):
            os.environ[parallel.ENV_MERGE] = mode
            parallel.reset_engine_stats()
            tel = Telemetry()
            t0 = perf_counter()
            run_figure2(scale=scale, seeds=seeds, telemetry=tel, jobs=jobs,
                        grid_overrides=overrides)
            wall_total += perf_counter() - t0
            stats = parallel.engine_stats()[-1]
            merge_s[mode] = stats.merge_s
            payload[mode] = float(stats.payload_bytes)
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        parallel.reset_engine_stats()
    return {"wall_s": wall_total, "cells": float(4 * 3 * len(seeds)),
            "jobs": float(jobs),
            "merge_s_pickled": merge_s["pickled"],
            "merge_s_spool": merge_s["spool"],
            "merge_speedup": merge_s["pickled"] / max(merge_s["spool"], 1e-9),
            "bytes_pickled": payload["pickled"],
            "bytes_spool": payload["spool"],
            "bytes_ratio": payload["pickled"] / max(payload["spool"], 1.0)}


# ----------------------------------------------------------------------
# persistence
# ----------------------------------------------------------------------

def perf_document(scale: float, seeds: tuple[int, ...],
                  entries: dict[str, dict[str, float]]) -> dict[str, Any]:
    return {
        "schema": PERF_SCHEMA,
        "scale": scale,
        "seeds": list(seeds),
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "entries": {name: {k: round(float(v), 6) for k, v in cell.items()}
                    for name, cell in entries.items()},
    }


def save_perf(doc: dict[str, Any], path: Path = PERF_PATH) -> Path:
    REPORT_DIR.mkdir(exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(path: Path = BASELINE_PATH) -> dict[str, Any] | None:
    """The committed pre-optimization baseline, if any (schema-checked)."""
    if not path.is_file():
        return None
    doc = json.loads(path.read_text())
    if doc.get("schema") != PERF_SCHEMA:
        return None
    return doc
