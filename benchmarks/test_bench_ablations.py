"""Ablations of the design choices DESIGN.md calls out: the virtual
dimension (§3.2), the RN-Tree extended-search k (§3.1), the TTL-walk
comparison (§4), and the fair-share extension (§5)."""

from conftest import BENCH_SCALE, BENCH_SEEDS, assert_shapes, save_report

from repro.experiments import (
    run_fairness_experiment,
    run_k_sweep_ablation,
    run_ttl_ablation,
    run_virtual_dimension_ablation,
)


def test_ablation_virtual_dimension(benchmark):
    result = benchmark.pedantic(
        run_virtual_dimension_ablation,
        kwargs={"scale": BENCH_SCALE, "seed": BENCH_SEEDS[0]},
        rounds=1, iterations=1)
    save_report("ablation_virtual_dim", result.report())
    assert_shapes(result.shape_checks())


def test_ablation_extended_search_k(benchmark):
    result = benchmark.pedantic(
        run_k_sweep_ablation,
        kwargs={"ks": (1, 2, 4, 8), "scale": BENCH_SCALE,
                "seed": BENCH_SEEDS[0]},
        rounds=1, iterations=1)
    save_report("ablation_k_sweep", result.report())
    assert_shapes(result.shape_checks())


def test_ablation_ttl_walk(benchmark):
    result = benchmark.pedantic(
        run_ttl_ablation,
        kwargs={"scale": BENCH_SCALE, "seed": BENCH_SEEDS[0]},
        rounds=1, iterations=1)
    save_report("ablation_ttl", result.report())
    assert_shapes(result.shape_checks())


def test_extension_fair_share(benchmark):
    result = benchmark.pedantic(
        run_fairness_experiment,
        kwargs={"seed": BENCH_SEEDS[0]},
        rounds=1, iterations=1)
    save_report("extension_fairness", result.report())
    assert_shapes(result.shape_checks())


def test_grid_scalability(benchmark):
    from repro.experiments import run_scaling_experiment

    result = benchmark.pedantic(
        run_scaling_experiment,
        kwargs={"sizes": (64, 128, 256, 512), "seed": BENCH_SEEDS[0]},
        rounds=1, iterations=1)
    save_report("scaling", result.report())
    assert_shapes(result.shape_checks())
