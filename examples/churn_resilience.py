#!/usr/bin/env python
"""Churn resilience: kill nodes mid-run and watch the grid recover.

Demonstrates the §2 fault-tolerance machinery live: heartbeats between
run nodes and owners, owner-side re-matching when a run node dies,
run-node-side owner replacement when an owner dies, and client
resubmission only as a last resort.  Midway through, a scripted
"failure storm" kills a third of the nodes at once.

Run:  python examples/churn_resilience.py
"""

import numpy as np

from repro import DesktopGrid, GridConfig, Job, JobProfile, make_matchmaker
from repro.sim.failure import CrashRecoveryProcess
from repro.workloads import WorkloadConfig, generate_nodes


def main() -> None:
    workload = WorkloadConfig(n_nodes=120, node_mode="mixed")
    nodes = generate_nodes(workload, np.random.default_rng(3))
    cfg = GridConfig(
        seed=3,
        heartbeats_enabled=True,
        heartbeat_interval=5.0,
        relay_status_to_client=True,
        client_resubmit_enabled=True,
        client_timeout=180.0,
    )
    grid = DesktopGrid(cfg, make_matchmaker("rn-tree"), nodes)
    client = grid.client("survivor")

    rng = np.random.default_rng(0)
    jobs = []
    for i in range(300):
        job = Job(profile=JobProfile(
            name=f"resilient-{i}", client_id=client.node_id,
            requirements=(0.0, 0.0, 0.0),
            work=float(rng.exponential(60.0)) + 1.0))
        grid.submit_at(float(rng.uniform(0, 300.0)), client, job)
        jobs.append(job)

    # Background churn: every node alternates ~8-minute uptimes with
    # ~2-minute outages.
    CrashRecoveryProcess(
        grid.sim, grid.streams["churn"],
        [n.node_id for n in grid.node_list],
        crash_fn=grid.crash_node, recover_fn=grid.recover_node,
        mean_uptime=480.0, mean_downtime=120.0)

    # ... and a scripted failure storm at t=150 s: a third of the grid
    # vanishes within one second.
    storm_victims = [n.node_id for n in grid.node_list[::3]]
    for k, nid in enumerate(storm_victims):
        grid.sim.schedule_at(150.0 + k * 0.01, grid.crash_node, nid)

    print(f"running: {len(jobs)} jobs, continuous churn, "
          f"failure storm of {len(storm_victims)} nodes at t=150 s")
    grid.run_until_done(max_time=100_000)

    summary = grid.metrics.summary()
    completed = int(summary["completed"])
    first_try = sum(1 for j in jobs if j.is_done and j.attempt == 1)
    print(f"completed            : {completed}/{len(jobs)}")
    print(f"without resubmission : {first_try} "
          f"({100 * first_try / len(jobs):.1f}%)")
    print(f"run-node recoveries  : {summary['recoveries_run_node']:.0f} "
          f"(owner re-matched a silent run node)")
    print(f"owner recoveries     : {summary['recoveries_owner']:.0f} "
          f"(run node recruited a replacement owner)")
    print(f"client resubmissions : {summary['resubmissions']:.0f} "
          f"(both owner and run node lost)")
    print(f"mean turnaround      : "
          f"{grid.metrics.turnarounds().mean():.1f} s")


if __name__ == "__main__":
    main()
