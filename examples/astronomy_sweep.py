#!/usr/bin/env python
"""Astronomy workload: an N-body parameter sweep with analysis stages.

The paper's motivating applications (§1) are astronomy simulations at the
University of Maryland — "finding habitable planets through N-body
simulations, formation of asteroid binaries through gravity simulations
and analysis and modeling of data from the NASA Deep Impact mission" —
all compute-bound, KB-scale I/O, independent runs.

This example models the full campaign shape the paper's §5 future work
describes: a *parameter sweep* of independent simulation jobs (one per
(eccentricity, perturber-mass) grid point), each followed by an analysis
job consuming the simulation's output, plus a final aggregation job —
scheduled through the DAGMan-style :class:`repro.grid.dag.DagScheduler`.

Run:  python examples/astronomy_sweep.py
"""

import numpy as np

from repro import DesktopGrid, GridConfig, make_matchmaker
from repro.grid.dag import DagScheduler
from repro.workloads import WorkloadConfig, generate_nodes

# The sweep grid: 6 eccentricities x 4 perturber masses = 24 simulations.
ECCENTRICITIES = [0.00, 0.05, 0.10, 0.20, 0.35, 0.50]
PERTURBER_MASSES = [0.5, 1.0, 2.0, 5.0]  # Jupiter masses

# Simulations are CPU-hungry (need cpu level >= 5 and some memory);
# analysis jobs are lighter but memory-bound.
SIM_REQUIREMENTS = (5.0, 3.0, 0.0)
ANALYSIS_REQUIREMENTS = (0.0, 6.0, 0.0)


def main() -> None:
    workload = WorkloadConfig(n_nodes=150, node_mode="mixed")
    nodes = generate_nodes(workload, np.random.default_rng(42))
    grid = DesktopGrid(GridConfig(seed=42, scale_runtime_by_cpu=True),
                       make_matchmaker("can-push"), nodes)
    astronomer = grid.client("umd-astro")
    dag = DagScheduler(grid, astronomer)

    rng = np.random.default_rng(0)
    analysis_names = []
    for ecc in ECCENTRICITIES:
        for mass in PERTURBER_MASSES:
            tag = f"e{ecc:.2f}-m{mass:.1f}"
            # Integrating the orbits: hours of reference-CPU work,
            # compressed here to ~200 virtual seconds.
            sim_work = float(rng.normal(200.0, 30.0))
            dag.add_job(f"nbody-{tag}", SIM_REQUIREMENTS,
                        max(sim_work, 60.0), kind="simulation")
            ana = f"stability-{tag}"
            dag.add_job(ana, ANALYSIS_REQUIREMENTS, 30.0,
                        deps=(f"nbody-{tag}",), kind="analysis")
            analysis_names.append(ana)
    dag.add_job("habitability-report", ANALYSIS_REQUIREMENTS, 60.0,
                deps=tuple(analysis_names), kind="analysis")

    released = dag.submit()
    print(f"sweep: {len(dag.nodes)} jobs declared, {released} roots released")

    grid.run_until_done(max_time=1_000_000)
    done, total = dag.progress()
    print(f"campaign finished: {done}/{total} jobs complete "
          f"at t={grid.sim.now:.0f} s (virtual)")

    report = dag.nodes["habitability-report"].job
    print(f"report inputs collected from {len(report.extra['inputs'])} "
          f"analysis jobs")

    sims = [n.job for n in dag.nodes.values() if n.kind.value == "simulation"]
    waits = np.array([j.wait_time for j in sims])
    print(f"simulation wait times: mean {waits.mean():.1f} s, "
          f"max {waits.max():.1f} s")
    # Heterogeneous speed: the fastest CPUs finish first, so the makespan
    # beats the naive work/nodes estimate.
    busy = sorted((n.busy_time, n.name, n.capability[0])
                  for n in grid.node_list if n.busy_time > 0)
    print(f"{len(busy)} nodes contributed cycles; busiest: "
          f"{busy[-1][1]} (cpu level {busy[-1][2]:.0f}, "
          f"{busy[-1][0]:.0f} s of work)")


if __name__ == "__main__":
    main()
