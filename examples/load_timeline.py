#!/usr/bin/env python
"""Watch load imbalance develop: basic CAN vs pushing CAN, live.

Samples every node's queue length through the run and renders the
fairness index and maximum queue depth as sparklines — the time-series
mechanism behind the paper's Figure 2(c) pathology: under basic CAN,
lightly-constrained jobs pile up in the low-capability corner of the
space while the rest of the grid idles; load-aware pushing drains them
upward.

Run:  python examples/load_timeline.py
"""

from repro.experiments.runner import build_population, drive
from repro.grid.system import DesktopGrid, GridConfig
from repro.match import make_matchmaker
from repro.metrics.timeline import LoadTimeline, utilization_report
from repro.workloads.spec import FIGURE2_SCENARIOS


def run_with_timeline(matchmaker: str):
    workload = FIGURE2_SCENARIOS["mixed-light"].scaled(0.12)
    nodes, stream = build_population(workload, seed=2)
    grid = DesktopGrid(GridConfig(seed=2), make_matchmaker(matchmaker), nodes)
    timeline = LoadTimeline(grid, interval=10.0)
    drive(grid, workload, stream, max_time=100_000)
    timeline.stop()
    return grid, timeline


def main() -> None:
    for matchmaker in ("can", "can-push"):
        grid, timeline = run_with_timeline(matchmaker)
        waits = grid.metrics.wait_times()
        util = utilization_report(grid)
        print(f"--- {matchmaker} "
              f"(mixed nodes, lightly-constrained jobs) ---")
        print(f"queue fairness over time   {timeline.sparkline('fairness')}")
        print(f"  (1.0 = perfectly even; trough "
              f"{timeline.trough('fairness'):.2f})")
        print(f"max queue depth over time  {timeline.sparkline('max_queue')}")
        print(f"  (peak {timeline.peak('max_queue'):.0f} jobs deep)")
        print(f"mean wait {waits.mean():7.1f} s   "
              f"idle nodes {util['idle_nodes']:3d}   "
              f"busy-time fairness {util['busy_fairness']:.2f}")
        print()


if __name__ == "__main__":
    main()
