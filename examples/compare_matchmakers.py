#!/usr/bin/env python
"""A miniature Figure 2 on one machine: compare all five matchmakers.

Replays *identical* workloads (same populations, same job streams, same
seeds) against every matchmaking algorithm and prints the wait-time and
matchmaking-cost comparison — a laptop-sized rendition of the paper's
evaluation.  Expect the CAN pathology on the mixed/lightly-constrained
row and the pushing variant repairing it.

Run:  python examples/compare_matchmakers.py [scale]
      (scale defaults to 0.1 = 100 nodes / 500 jobs; 1.0 is paper scale)
"""

import sys

from repro.experiments.runner import run_replicates
from repro.metrics.report import format_table
from repro.workloads.spec import FIGURE2_SCENARIOS

MATCHMAKERS = ("centralized", "rn-tree", "can", "can-push", "ttl-walk")


def main(scale: float = 0.1) -> None:
    rows = []
    for scenario, workload in FIGURE2_SCENARIOS.items():
        wl = workload.scaled(scale)
        for mm in MATCHMAKERS:
            s = run_replicates(wl, mm, seeds=(1, 2))
            rows.append([
                scenario, mm,
                round(s["wait_mean"], 1),
                round(s["wait_std"], 1),
                round(s["match_cost_mean"], 1),
                int(s["failed"]),
            ])
        rows.append(["-" * 14, "-" * 11, "-", "-", "-", "-"])
    print(format_table(
        ["scenario", "matchmaker", "wait mean (s)", "wait stdev (s)",
         "cost (msgs)", "failed"],
        rows[:-1],
        title=f"All matchmakers across the Figure 2 scenario grid "
              f"(scale={scale}: {wl.n_nodes} nodes, {wl.n_jobs} jobs, "
              f"2 seeds)",
    ))
    print("\nReading guide: 'centralized' is the omniscient target; "
          "'can' collapses on mixed-light (the paper's §3.3 finding); "
          "'can-push' repairs it; 'ttl-walk' fails feasible jobs.")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.1)
