#!/usr/bin/env python
"""Quickstart: build a P2P desktop grid, submit jobs, read the results.

This is the 30-line tour of the public API: a 100-node grid using
CAN-based matchmaking (the paper's primary mechanism), one client
submitting a mix of constrained jobs, and the metrics the paper reports.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import DesktopGrid, GridConfig, Job, JobProfile, make_matchmaker
from repro.workloads import WorkloadConfig, generate_nodes


def main() -> None:
    # 1. A population of 100 desktop machines with mixed capabilities
    #    (3 resource axes: cpu, mem, disk; levels 1..10).
    workload = WorkloadConfig(n_nodes=100, node_mode="mixed")
    nodes = generate_nodes(workload, np.random.default_rng(7))

    # 2. The grid: pick a matchmaker ("can", "can-push", "rn-tree",
    #    "ttl-walk", or the "centralized" baseline).
    grid = DesktopGrid(GridConfig(seed=7), make_matchmaker("can"), nodes)

    # 3. A client submits 50 jobs over ~25 virtual seconds; every third
    #    job needs a capable CPU (level >= 6).
    client = grid.client("alice")
    rng = np.random.default_rng(1)
    for i in range(50):
        requirements = (6.0, 0.0, 0.0) if i % 3 == 0 else (0.0, 0.0, 0.0)
        job = Job(profile=JobProfile(
            name=f"quickstart-{i}",
            client_id=client.node_id,
            requirements=requirements,
            work=float(rng.exponential(30.0)) + 1.0,
        ))
        grid.submit_at(i * 0.5, client, job)

    # 4. Run the simulation until every job finished, then inspect.
    grid.run_until_done(max_time=100_000)

    summary = grid.metrics.summary(node_loads=grid.node_execution_counts())
    print(f"completed jobs      : {summary['completed']:.0f}")
    print(f"mean wait time      : {summary['wait_mean']:.2f} s")
    print(f"stdev of wait time  : {summary['wait_std']:.2f} s")
    print(f"matchmaking cost    : {summary['match_cost_mean']:.1f} msgs/job")
    print(f"load fairness (Jain): {summary['load_fairness']:.3f}")

    fastest = min(client.completed, key=lambda j: j.turnaround)
    print(f"fastest turnaround  : {fastest.name} "
          f"in {fastest.turnaround:.1f} s on node "
          f"{grid.nodes[fastest.run_node_id].name}")


if __name__ == "__main__":
    main()
