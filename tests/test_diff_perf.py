"""The perf-gate diff: cpu-sensitive cells soften when hosts differ,
memory metrics hard-fail past MEM_FAIL_RATIO on comparable baselines."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from diff_perf import MEM_FAIL_RATIO, compare  # noqa: E402


def _doc(cpu_count: int, parallel: float, serial: float) -> dict:
    return {
        "schema": 1, "scale": 0.1, "cpu_count": cpu_count,
        "entries": {
            "figure2.parallel": {"wall_s": 1.0, "cells_per_s": parallel},
            "figure2.serial": {"wall_s": 1.0, "cells_per_s": serial},
        },
    }


def _status(rows: list[tuple], cell: str) -> str:
    return next(r[5] for r in rows if r[0] == cell)


class TestCpuSoftening:
    def test_parallel_regression_warns_when_cpu_count_differs(self):
        rows, regressed = compare(_doc(8, 100.0, 10.0),
                                  _doc(1, 20.0, 10.0), tolerance=0.5)
        assert _status(rows, "figure2.parallel") == "warn (cpu)"
        assert "figure2.parallel" not in regressed

    def test_parallel_regression_gates_on_same_host(self):
        rows, regressed = compare(_doc(8, 100.0, 10.0),
                                  _doc(8, 20.0, 10.0), tolerance=0.5)
        assert _status(rows, "figure2.parallel") == "REGRESSED"
        assert "figure2.parallel" in regressed

    def test_cpu_insensitive_cells_still_gate_across_hosts(self):
        rows, regressed = compare(_doc(8, 100.0, 10.0),
                                  _doc(1, 100.0, 2.0), tolerance=0.5)
        assert _status(rows, "figure2.serial") == "REGRESSED"
        assert "figure2.serial" in regressed

    def test_ok_cells_unaffected(self):
        rows, regressed = compare(_doc(8, 100.0, 10.0),
                                  _doc(1, 100.0, 10.0), tolerance=0.5)
        assert _status(rows, "figure2.parallel") == "ok"
        assert not regressed


def _mem_doc(cpu_count: int, peak_mb: float, scale: float = 0.1) -> dict:
    # grid.large_scale is in SCALE_FREE_CELLS, so the memory gate stays
    # armed even when the two documents were recorded at different
    # --scale (the cell's internal sizes are fixed).
    return {
        "schema": 1, "scale": scale, "cpu_count": cpu_count,
        "entries": {
            "grid.large_scale": {"events_per_s": 100.0,
                                 "mem_peak_mb": peak_mb},
        },
    }


def _mem_status(rows: list[tuple]) -> str:
    return next(r[5] for r in rows
                if r[0] == "grid.large_scale" and r[1] == "mem_peak_mb")


class TestMemoryGate:
    def test_growth_past_fail_ratio_gates_on_same_host(self):
        rows, regressed = compare(_mem_doc(8, 100.0), _mem_doc(8, 130.0),
                                  tolerance=0.5)
        assert _mem_status(rows) == "REGRESSED"
        assert "grid.large_scale" in regressed

    def test_growth_past_fail_ratio_warns_across_hosts(self):
        rows, regressed = compare(_mem_doc(8, 100.0), _mem_doc(1, 130.0),
                                  tolerance=0.5)
        assert _mem_status(rows) == "warn (mem)"
        assert "grid.large_scale" not in regressed

    def test_growth_within_fail_ratio_does_not_gate(self):
        rows, regressed = compare(_mem_doc(8, 100.0),
                                  _mem_doc(8, 100.0 * MEM_FAIL_RATIO),
                                  tolerance=0.05)
        assert _mem_status(rows) == "warn (mem)"  # > tol, <= fail ratio
        assert "grid.large_scale" not in regressed

    def test_flat_memory_is_ok(self):
        rows, regressed = compare(_mem_doc(8, 100.0), _mem_doc(8, 101.0),
                                  tolerance=0.5)
        assert _mem_status(rows) == "ok"
        assert not regressed
