"""The perf-gate diff: cpu-sensitive cells soften when hosts differ."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from diff_perf import compare  # noqa: E402


def _doc(cpu_count: int, parallel: float, serial: float) -> dict:
    return {
        "schema": 1, "scale": 0.1, "cpu_count": cpu_count,
        "entries": {
            "figure2.parallel": {"wall_s": 1.0, "cells_per_s": parallel},
            "figure2.serial": {"wall_s": 1.0, "cells_per_s": serial},
        },
    }


def _status(rows: list[tuple], cell: str) -> str:
    return next(r[5] for r in rows if r[0] == cell)


class TestCpuSoftening:
    def test_parallel_regression_warns_when_cpu_count_differs(self):
        rows, regressed = compare(_doc(8, 100.0, 10.0),
                                  _doc(1, 20.0, 10.0), tolerance=0.5)
        assert _status(rows, "figure2.parallel") == "warn (cpu)"
        assert "figure2.parallel" not in regressed

    def test_parallel_regression_gates_on_same_host(self):
        rows, regressed = compare(_doc(8, 100.0, 10.0),
                                  _doc(8, 20.0, 10.0), tolerance=0.5)
        assert _status(rows, "figure2.parallel") == "REGRESSED"
        assert "figure2.parallel" in regressed

    def test_cpu_insensitive_cells_still_gate_across_hosts(self):
        rows, regressed = compare(_doc(8, 100.0, 10.0),
                                  _doc(1, 100.0, 2.0), tolerance=0.5)
        assert _status(rows, "figure2.serial") == "REGRESSED"
        assert "figure2.serial" in regressed

    def test_ok_cells_unaffected(self):
        rows, regressed = compare(_doc(8, 100.0, 10.0),
                                  _doc(1, 100.0, 10.0), tolerance=0.5)
        assert _status(rows, "figure2.parallel") == "ok"
        assert not regressed
