"""The ``python -m repro`` command-line interface."""

import pytest

from repro.cli import (
    EXPERIMENTS,
    SINGLE_SEED_EXPERIMENTS,
    TELEMETRY_RUNNERS,
    build_parser,
    main,
)


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nonexistent"])

    def test_seed_parsing(self):
        args = build_parser().parse_args(["run", "figure2", "--seeds", "3,5"])
        assert args.seeds == (3, 5)

    def test_bad_seed_list_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "figure2", "--seeds", "a,b"])

    def test_registry_covers_every_driver(self):
        # Every public run_* experiment driver is reachable from the CLI.
        import repro.experiments as exp

        drivers = {name for name in exp.__all__ if name.startswith("run_")}
        # runner-internal helpers are not standalone experiments
        drivers -= {"run_workload", "run_replicates"}
        assert len(EXPERIMENTS) == len(drivers)


class TestExecution:
    def test_run_small_experiment(self, capsys, tmp_path):
        code = main(["run", "ablation-k", "--scale", "0.06",
                     "--out", str(tmp_path), "--check"])
        out = capsys.readouterr().out
        assert code == 0
        assert "RN-Tree extended search" in out
        assert "[ok]" in out
        assert (tmp_path / "ablation-k.txt").exists()

    def test_check_flag_propagates_failures(self, capsys, monkeypatch):
        class FakeResult:
            def report(self):
                return "fake"

            def shape_checks(self):
                return {"doomed": False}

        monkeypatch.setitem(EXPERIMENTS, "ablation-k",
                            ("desc", lambda scale, seeds: FakeResult()))
        assert main(["run", "ablation-k", "--check"]) == 1
        assert main(["run", "ablation-k"]) == 0  # informational without --check


class _FakeResult:
    def report(self):
        return "fake report"


class TestSeedPlumbing:
    def test_single_seed_experiments_warn_on_extra_seeds(
            self, capsys, monkeypatch):
        assert "ablation-k" in SINGLE_SEED_EXPERIMENTS
        monkeypatch.setitem(EXPERIMENTS, "ablation-k",
                            ("desc", lambda scale, seeds: _FakeResult()))
        assert main(["run", "ablation-k", "--seeds", "1,2,3"]) == 0
        err = capsys.readouterr().err
        assert "single-replicate" in err
        assert "[2, 3]" in err

    def test_no_warning_for_single_seed(self, capsys, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "ablation-k",
                            ("desc", lambda scale, seeds: _FakeResult()))
        assert main(["run", "ablation-k"]) == 0
        assert "single-replicate" not in capsys.readouterr().err

    def test_multi_seed_experiments_receive_all_seeds(self, monkeypatch):
        got = {}

        def fake_runner(scale, seeds):
            got["seeds"] = seeds
            return _FakeResult()

        monkeypatch.setitem(EXPERIMENTS, "hops", ("desc", fake_runner))
        assert main(["run", "hops", "--seeds", "4,5"]) == 0
        assert got["seeds"] == (4, 5)

    def test_hops_runner_forwards_every_seed(self, monkeypatch):
        # The regression this guards: 'repro run hops --seeds 1,2,3' used
        # to silently run only seed 1.
        import repro.cli as cli_mod

        seen = []
        monkeypatch.setattr(
            cli_mod, "run_hops_experiment",
            lambda scale, seeds, **kw: seen.append(seeds) or _FakeResult())
        _desc, runner = cli_mod.EXPERIMENTS["hops"]
        runner(0.1, (1, 2, 3))
        assert seen == [(1, 2, 3)]


class TestTrace:
    def test_trace_requires_telemetry_capable_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "churn"])

    def test_trace_runs_and_exports(self, capsys, monkeypatch, tmp_path):
        def fake_runner(scale, seeds, tel):
            tel.bus.record(1.0, "job.match", job="j1")
            tel.metrics.counter("jobs.submitted").inc()
            return _FakeResult()

        monkeypatch.setitem(TELEMETRY_RUNNERS, "hops", fake_runner)
        out = tmp_path / "trace.jsonl"
        assert main(["trace", "hops", "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "Trace buffer" in text
        assert out.exists()
        from repro.telemetry import load_jsonl

        cats = [r["cat"] for r in load_jsonl(out)]
        assert "job.match" in cats
        assert "metrics.snapshot" in cats

    def test_trace_category_filter(self, monkeypatch):
        captured = {}

        def fake_runner(scale, seeds, tel):
            captured["tel"] = tel
            return _FakeResult()

        monkeypatch.setitem(TELEMETRY_RUNNERS, "figure2", fake_runner)
        assert main(["trace", "figure2",
                     "--categories", "dht.lookup,job.match",
                     "--buffer", "500"]) == 0
        tel = captured["tel"]
        assert tel.bus.categories == {"dht.lookup", "job.match"}
        assert tel.bus.maxlen == 500

    def test_unwritable_telemetry_path_fails_fast(self, capsys):
        # Before the fix this crashed with a raw traceback *after* the
        # whole experiment had already run.
        assert main(["trace", "hops", "--out", "/nonexistent/d/x.jsonl"]) == 2
        assert "does not exist" in capsys.readouterr().err
        assert main(["run", "hops",
                     "--telemetry", "/nonexistent/d/x.jsonl"]) == 2

    def test_run_telemetry_unsupported_warns(self, capsys, monkeypatch):
        monkeypatch.setitem(EXPERIMENTS, "ablation-k",
                            ("desc", lambda scale, seeds: _FakeResult()))
        assert main(["run", "ablation-k", "--telemetry", "/tmp/x.jsonl"]) == 0
        assert "does not support" in capsys.readouterr().err


class TestJobTrace:
    def test_job_trace_renders_timelines(self, capsys, tmp_path):
        out = tmp_path / "trace.jsonl"
        code = main(["job-trace", "figure2", "--scale", "0.02",
                     "--slowest", "2", "--check", "--out", str(out)])
        text = capsys.readouterr().out
        assert code == 0
        assert "causal trace:" in text
        assert "job.lifecycle" in text
        assert "critical path:" in text
        assert "Per-phase latency" in text
        assert "verdict: clean" in text
        assert out.exists()
        # The exported stream reconstructs to the same healthy timeline,
        # remote probe spans included (default probe mode is rpc).
        from repro.telemetry.timeline import timeline_from_jsonl

        tl = timeline_from_jsonl(out)
        assert tl.healthy
        assert tl.cells == 12  # 4 scenarios x 3 matchmakers
        cats = {s.category for j in tl.jobs for s in j.spans}
        assert {"job.probe", "job.dispatch", "rpc.server"} <= cats

    def test_job_trace_check_fails_on_anomalies(self, capsys, monkeypatch):
        from repro import cli

        def fake_runner(scale, seeds, tel, overrides, jobs=None):
            # An orphan: parent id 999 never appears in the stream.
            tel.bus.span(1.0, "job.run", parent=999, trace=7, job="j-0")

        monkeypatch.setitem(cli.JOB_TRACE_RUNNERS, "figure2", fake_runner)
        assert main(["job-trace", "figure2", "--check"]) == 1
        assert "anomalies detected" in capsys.readouterr().err

    def test_job_trace_unwritable_out_fails_fast(self, capsys):
        assert main(["job-trace", "figure2",
                     "--out", "/nonexistent/d/x.jsonl"]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_probe_mode_oracle_plumbs_overrides(self, monkeypatch):
        from repro import cli

        captured = {}

        def fake_runner(scale, seeds, tel, overrides, jobs=None):
            captured.update(overrides, scale=scale, jobs=jobs)

        monkeypatch.setitem(cli.JOB_TRACE_RUNNERS, "figure2", fake_runner)
        assert main(["job-trace", "figure2", "--probe-mode", "oracle",
                     "--scale", "0.5", "--jobs", "2"]) == 0
        assert captured == {"probe_mode": "oracle", "dispatch_ack": False,
                            "scale": 0.5, "jobs": 2}


class TestPerfHistory:
    def test_perf_history_empty_repo(self, capsys, tmp_path):
        import subprocess

        subprocess.run(["git", "init", "-q", str(tmp_path)], check=True)
        assert main(["perf-history", "--repo", str(tmp_path)]) == 0
        assert "no committed revisions" in capsys.readouterr().out

    def test_perf_history_walks_commits(self, capsys, tmp_path):
        import json
        import subprocess

        def git(*args):
            subprocess.run(["git", "-C", str(tmp_path), *args], check=True,
                           capture_output=True)

        git("init", "-q")
        git("config", "user.email", "t@example.com")
        git("config", "user.name", "t")
        doc_dir = tmp_path / "benchmarks" / "reports"
        doc_dir.mkdir(parents=True)
        path = doc_dir / "BENCH_perf.json"
        base = {"schema": 1, "scale": 0.1, "cpu_count": 4, "entries": {
            "grid.steady_state": {"wall_s": 2.0, "events_per_s": 1000.0}}}
        path.write_text(json.dumps(base))
        git("add", "-A")
        git("commit", "-qm", "first bench")
        base["entries"]["grid.steady_state"]["events_per_s"] = 2000.0
        path.write_text(json.dumps(base))
        git("add", "-A")
        git("commit", "-qm", "twice as fast")
        assert main(["perf-history", "--repo", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "2 measured revision(s)" in out
        assert "grid.steady_state" in out
        assert "2.00x" in out
        assert "twice as fast" in out
