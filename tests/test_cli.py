"""The ``python -m repro`` command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nonexistent"])

    def test_seed_parsing(self):
        args = build_parser().parse_args(["run", "figure2", "--seeds", "3,5"])
        assert args.seeds == (3, 5)

    def test_bad_seed_list_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "figure2", "--seeds", "a,b"])

    def test_registry_covers_every_driver(self):
        # Every public run_* experiment driver is reachable from the CLI.
        import repro.experiments as exp

        drivers = {name for name in exp.__all__ if name.startswith("run_")}
        # runner-internal helpers are not standalone experiments
        drivers -= {"run_workload", "run_replicates"}
        assert len(EXPERIMENTS) == len(drivers)


class TestExecution:
    def test_run_small_experiment(self, capsys, tmp_path):
        code = main(["run", "ablation-k", "--scale", "0.06",
                     "--out", str(tmp_path), "--check"])
        out = capsys.readouterr().out
        assert code == 0
        assert "RN-Tree extended search" in out
        assert "[ok]" in out
        assert (tmp_path / "ablation-k.txt").exists()

    def test_check_flag_propagates_failures(self, capsys, monkeypatch):
        class FakeResult:
            def report(self):
                return "fake"

            def shape_checks(self):
                return {"doomed": False}

        monkeypatch.setitem(EXPERIMENTS, "ablation-k",
                            ("desc", lambda scale, seeds: FakeResult()))
        assert main(["run", "ablation-k", "--check"]) == 1
        assert main(["run", "ablation-k"]) == 0  # informational without --check
