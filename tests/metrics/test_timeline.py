"""Load timelines, sparklines, and utilization reports."""

import math

import numpy as np
import pytest

from repro.grid.job import Job, JobProfile
from repro.metrics.timeline import LoadTimeline, ascii_sparkline, utilization_report

from tests.conftest import make_small_grid


def submit_n(grid, client, n, work=20.0):
    jobs = []
    for i in range(n):
        job = Job(profile=JobProfile(name=f"tl-{i}", client_id=client.node_id,
                                     requirements=(0.0, 0.0, 0.0), work=work))
        grid.submit_at(0.0, client, job)
        jobs.append(job)
    return jobs


class TestLoadTimeline:
    def test_samples_accumulate_over_time(self):
        grid = make_small_grid(n_nodes=8)
        client = grid.client("c")
        submit_n(grid, client, 30)
        timeline = LoadTimeline(grid, interval=5.0)
        grid.run_until_done(max_time=10000)
        timeline.stop()
        assert len(timeline.samples) >= 5
        times = [s.time for s in timeline.samples]
        assert times == sorted(times)

    def test_queue_buildup_visible(self):
        grid = make_small_grid(n_nodes=2)
        client = grid.client("c")
        submit_n(grid, client, 20, work=50.0)
        timeline = LoadTimeline(grid, interval=5.0)
        grid.run(until=30.0)
        timeline.stop()
        assert timeline.peak("max_queue") >= 5

    def test_fairness_bounds(self):
        grid = make_small_grid(n_nodes=8)
        client = grid.client("c")
        submit_n(grid, client, 40)
        timeline = LoadTimeline(grid, interval=5.0)
        grid.run_until_done(max_time=10000)
        for s in timeline.samples:
            if not math.isnan(s.fairness):
                assert 0.0 < s.fairness <= 1.0 + 1e-9

    def test_series_and_extremes(self):
        grid = make_small_grid(n_nodes=4)
        client = grid.client("c")
        submit_n(grid, client, 10)
        timeline = LoadTimeline(grid, interval=5.0)
        grid.run_until_done(max_time=10000)
        series = timeline.series("mean_queue")
        assert len(series) == len(timeline.samples)
        assert timeline.peak("mean_queue") >= timeline.trough("mean_queue")

    def test_bad_interval_rejected(self):
        grid = make_small_grid(n_nodes=2)
        with pytest.raises(ValueError):
            LoadTimeline(grid, interval=0.0)


class TestSparkline:
    def test_empty(self):
        assert ascii_sparkline([]) == ""

    def test_constant_series_flat(self):
        out = ascii_sparkline([5.0] * 10)
        assert len(set(out)) == 1

    def test_monotone_series_monotone_blocks(self):
        out = ascii_sparkline(list(range(9)), width=9)
        levels = [" ▁▂▃▄▅▆▇█".index(ch) for ch in out]
        assert levels == sorted(levels)

    def test_downsamples_to_width(self):
        out = ascii_sparkline(np.sin(np.linspace(0, 10, 500)), width=40)
        assert len(out) == 40


class TestUtilization:
    def test_busy_time_accounting(self):
        grid = make_small_grid(n_nodes=4)
        client = grid.client("c")
        submit_n(grid, client, 8, work=10.0)
        grid.run_until_done(max_time=10000)
        report = utilization_report(grid)
        assert report["total_cpu_seconds"] == pytest.approx(80.0, rel=0.01)
        assert 0 < report["mean_utilization"] <= 1.0

    def test_idle_nodes_counted(self):
        grid = make_small_grid(n_nodes=8)
        client = grid.client("c")
        submit_n(grid, client, 1, work=5.0)
        grid.run_until_done(max_time=10000)
        assert utilization_report(grid)["idle_nodes"] == 7

    def test_bad_horizon_rejected(self):
        grid = make_small_grid(n_nodes=2)
        with pytest.raises(ValueError):
            utilization_report(grid, horizon=0.0)
