"""Metrics collector and report rendering."""

import math

import pytest

from repro.grid.job import Job, JobProfile, JobState
from repro.metrics.collector import MetricsCollector
from repro.metrics.report import format_barchart, format_series, format_table


def finished_job(name, submit=0.0, start=5.0, finish=15.0,
                 state=JobState.COMPLETED, **fields):
    job = Job(profile=JobProfile(name=name, client_id=1,
                                 requirements=(0.0, 0.0, 0.0), work=10.0))
    job.submit_time, job.start_time, job.finish_time = submit, start, finish
    job.state = state
    for k, v in fields.items():
        setattr(job, k, v)
    return job


class TestCollector:
    def test_wait_times_only_completed(self):
        mc = MetricsCollector()
        mc.on_job_done(finished_job("a", start=3.0))
        mc.on_job_done(finished_job("b", state=JobState.FAILED))
        waits = mc.wait_times()
        assert list(waits) == [3.0]

    def test_summary_values(self):
        mc = MetricsCollector()
        mc.on_job_done(finished_job("a", start=2.0, match_hops=3,
                                    owner_route_hops=4, match_probes=2))
        mc.on_job_done(finished_job("b", start=6.0, match_hops=5,
                                    owner_route_hops=2, match_probes=4))
        s = mc.summary()
        assert s["completed"] == 2
        assert s["wait_mean"] == pytest.approx(4.0)
        assert s["wait_std"] == pytest.approx(2.0)
        assert s["match_hops_mean"] == pytest.approx(4.0)
        assert s["owner_hops_mean"] == pytest.approx(3.0)
        assert s["probes_mean"] == pytest.approx(3.0)
        assert s["match_cost_mean"] == pytest.approx(10.0)

    def test_empty_summary_is_nan(self):
        s = MetricsCollector().summary()
        assert math.isnan(s["wait_mean"])
        assert s["jobs_done"] == 0

    def test_recovery_and_resubmission_counters(self):
        mc = MetricsCollector()
        job = finished_job("a")
        mc.on_recovery("run-node", job)
        mc.on_recovery("run-node", job)
        mc.on_recovery("owner", job)
        mc.on_resubmission(job)
        s = mc.summary()
        assert s["recoveries_run_node"] == 2
        assert s["recoveries_owner"] == 1
        assert s["resubmissions"] == 1

    def test_lost_jobs_bucketed(self):
        mc = MetricsCollector()
        mc.on_job_done(finished_job("gone", state=JobState.LOST))
        assert len(mc.lost()) == 1
        assert len(mc.completed()) == 0

    def test_fairness_included_when_loads_given(self):
        mc = MetricsCollector()
        s = mc.summary(node_loads=[2, 2, 2, 2])
        assert s["load_fairness"] == pytest.approx(1.0)


class TestReport:
    def test_table_alignment_and_content(self):
        out = format_table(["name", "value"], [["alpha", 1.5], ["b", 22.25]],
                           title="Demo")
        lines = out.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[2] and "value" in lines[2]
        assert "alpha" in out and "22.25" in out
        # All data rows share one width.
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_series(self):
        out = format_series("growth", [(1, 2.0), (2, 4.0)],
                            x_label="n", y_label="hops")
        assert "growth" in out and "hops" in out and "4.00" in out


class TestBarchart:
    GROUPS = [
        ("light", [("a", 10.0), ("b", 40.0)]),
        ("heavy", [("a", 20.0), ("b", 80.0)]),
    ]

    def test_bars_scale_to_global_max(self):
        out = format_barchart("demo", self.GROUPS, width=40)
        lines = {line.split("|")[0].strip(): line
                 for line in out.splitlines() if "|" in line}
        # b-in-heavy is the global max: full width.
        assert lines["b"].count("#") >= 40 or \
            out.splitlines()[-1].count("#") == 40
        # a-in-light is 1/8 of max: ~5 chars.
        first_a = next(line for line in out.splitlines() if "| 10.00" in line)
        assert first_a.count("#") == 5

    def test_group_labels_present(self):
        out = format_barchart("demo", self.GROUPS)
        assert "light:" in out and "heavy:" in out

    def test_zero_value_gets_empty_bar(self):
        out = format_barchart("z", [("g", [("none", 0.0), ("some", 5.0)])])
        none_line = next(line for line in out.splitlines() if "none" in line)
        assert "#" not in none_line

    def test_unit_suffix(self):
        out = format_barchart("u", self.GROUPS, unit=" s")
        assert "10.00 s" in out

    def test_empty_groups(self):
        assert "(no data)" in format_barchart("e", [])

    def test_narrow_width_rejected(self):
        with pytest.raises(ValueError):
            format_barchart("w", self.GROUPS, width=4)
