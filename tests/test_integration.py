"""Cross-cutting integration: every §2 mechanism enabled at once.

A 'kitchen sink' deployment — RN-Tree matchmaking, heartbeats, status
relay, client resubmission, DHT result pointers, fair-share queueing, a
DAG workflow, continuous churn AND a failure storm — must still deliver
the work.  This is the closest the test suite gets to the paper's target
deployment.
"""

import numpy as np

from repro.grid.dag import DagScheduler
from repro.grid.job import Job, JobProfile, JobState
from repro.grid.system import DesktopGrid, GridConfig
from repro.match import make_matchmaker
from repro.metrics.timeline import LoadTimeline
from repro.sim.failure import CrashRecoveryProcess
from repro.workloads import WorkloadConfig, generate_nodes

UNCONSTRAINED = (0.0, 0.0, 0.0)


def build_kitchen_sink(seed=5, n_nodes=60):
    workload = WorkloadConfig(n_nodes=n_nodes, node_mode="mixed")
    nodes = generate_nodes(workload, np.random.default_rng(seed))
    cfg = GridConfig(
        seed=seed,
        heartbeats_enabled=True,
        heartbeat_interval=4.0,
        relay_status_to_client=True,
        client_resubmit_enabled=True,
        client_check_interval=10.0,
        client_timeout=120.0,
        client_max_attempts=8,
        match_retries=8,
        match_retry_backoff=8.0,
        result_return="pointer",
        queue_discipline="fair-share",
    )
    return DesktopGrid(cfg, make_matchmaker("rn-tree"), nodes)


class TestKitchenSink:
    def test_everything_at_once_still_delivers(self):
        grid = build_kitchen_sink()
        timeline = LoadTimeline(grid, interval=20.0)

        # A bag-of-tasks client.
        bag_client = grid.client("bag")
        rng = np.random.default_rng(0)
        bag_jobs = []
        for i in range(120):
            req = (float(rng.integers(0, 6)), 0.0, 0.0)
            job = Job(profile=JobProfile(name=f"bag-{i}",
                                         client_id=bag_client.node_id,
                                         requirements=req,
                                         work=float(rng.exponential(40.0)) + 1.0))
            grid.submit_at(float(rng.uniform(0, 200.0)), bag_client, job)
            bag_jobs.append(job)

        # A workflow client with a simulation -> analysis DAG.
        flow_client = grid.client("workflow")
        dag = DagScheduler(grid, flow_client)
        for i in range(6):
            dag.add_job(f"sim-{i}", (3.0, 0.0, 0.0), 30.0)
            dag.add_job(f"ana-{i}", UNCONSTRAINED, 10.0, deps=(f"sim-{i}",),
                        kind="analysis")
        dag.add_job("rollup", UNCONSTRAINED, 5.0,
                    deps=tuple(f"ana-{i}" for i in range(6)))
        grid.sim.schedule(1.0, dag.submit)

        # Continuous churn + a storm at t=100.
        CrashRecoveryProcess(grid.sim, grid.streams["churn"],
                             [n.node_id for n in grid.node_list],
                             crash_fn=grid.crash_node,
                             recover_fn=grid.recover_node,
                             mean_uptime=600.0, mean_downtime=100.0)
        for k, node in enumerate(grid.node_list[::4]):
            grid.sim.schedule_at(100.0 + 0.01 * k, grid.crash_node,
                                 node.node_id)

        assert grid.run_until_done(max_time=60000)
        timeline.stop()

        done_states = {j.state for j in bag_jobs}
        assert done_states <= {JobState.COMPLETED, JobState.LOST}
        completed = [j for j in bag_jobs if j.state is JobState.COMPLETED]
        assert len(completed) >= 0.95 * len(bag_jobs)
        # Result pointers round-tripped through the DHT.
        assert all(j.result == f"output:{j.name}" for j in completed)
        assert grid.network.stats.by_kind.get("result-pointer", 0) > 0

        # The workflow finished in dependency order.
        assert dag.complete
        rollup = dag.nodes["rollup"].job
        for i in range(6):
            assert dag.nodes[f"ana-{i}"].job.finish_time <= rollup.submit_time

        # Recovery machinery actually exercised.
        recoveries = grid.metrics.recoveries
        assert recoveries["run-node"] + recoveries["owner"] > 0
        assert len(timeline.samples) > 10

    def test_churn_run_is_deterministic(self):
        def signature():
            grid = build_kitchen_sink(seed=11, n_nodes=40)
            client = grid.client("d")
            rng = np.random.default_rng(1)
            jobs = [Job(profile=JobProfile(name=f"d-{i}",
                                           client_id=client.node_id,
                                           requirements=UNCONSTRAINED,
                                           work=float(rng.exponential(20.0)) + 1.0))
                    for i in range(40)]
            for i, job in enumerate(jobs):
                grid.submit_at(i * 2.0, client, job)
            CrashRecoveryProcess(grid.sim, grid.streams["churn"],
                                 [n.node_id for n in grid.node_list],
                                 crash_fn=grid.crash_node,
                                 recover_fn=grid.recover_node,
                                 mean_uptime=300.0, mean_downtime=60.0)
            grid.run_until_done(max_time=30000)
            return [(j.name, j.state.value, round(j.finish_time, 9),
                     j.attempt, j.run_node_id) for j in jobs]

        assert signature() == signature()
