"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.grid.system import DesktopGrid, GridConfig
from repro.match import make_matchmaker
from repro.sim.kernel import Simulator
from repro.sim.network import LatencyModel, Network
from repro.workloads.nodes import generate_nodes
from repro.workloads.spec import WorkloadConfig


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def network(sim, rng) -> Network:
    # Deterministic latency keeps protocol-timing tests exact.
    return Network(sim, rng, LatencyModel(mean=0.01, jitter=0.0))


def make_small_grid(matchmaker_name: str = "centralized", n_nodes: int = 16,
                    seed: int = 7, node_mode: str = "mixed",
                    cfg: GridConfig | None = None, **mm_kwargs) -> DesktopGrid:
    """A small ready-to-use grid for protocol tests."""
    workload = WorkloadConfig(n_nodes=n_nodes, node_mode=node_mode)
    nodes = generate_nodes(workload, np.random.default_rng(seed))
    grid_cfg = cfg if cfg is not None else GridConfig(seed=seed)
    return DesktopGrid(grid_cfg, make_matchmaker(matchmaker_name, **mm_kwargs),
                       nodes)


@pytest.fixture
def small_grid() -> DesktopGrid:
    return make_small_grid()
