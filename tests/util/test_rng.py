"""RngStreams determinism and stream isolation."""

import numpy as np
import pytest

from repro.util.rng import RngStreams


class TestRngStreams:
    def test_same_seed_same_draws(self):
        a = RngStreams(42).stream("jobs").uniform(size=10)
        b = RngStreams(42).stream("jobs").uniform(size=10)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngStreams(1).stream("jobs").uniform(size=10)
        b = RngStreams(2).stream("jobs").uniform(size=10)
        assert not np.array_equal(a, b)

    def test_named_streams_are_independent(self):
        # Drawing from one stream must not perturb another.
        s1 = RngStreams(7)
        s2 = RngStreams(7)
        s1.stream("a").uniform(size=1000)  # extra draws on 'a' only
        np.testing.assert_array_equal(
            s1.stream("b").uniform(size=10),
            s2.stream("b").uniform(size=10),
        )

    def test_stream_order_does_not_matter(self):
        s1 = RngStreams(7)
        s2 = RngStreams(7)
        a1 = s1.stream("a").uniform()
        b1 = s1.stream("b").uniform()
        b2 = s2.stream("b").uniform()
        a2 = s2.stream("a").uniform()
        assert a1 == a2 and b1 == b2

    def test_stream_is_cached_and_stateful(self):
        s = RngStreams(3)
        first = s.stream("x").uniform()
        second = s.stream("x").uniform()
        assert first != second  # same generator advanced, not reset

    def test_getitem_alias(self):
        s = RngStreams(3)
        assert s["x"] is s.stream("x")

    def test_fork_changes_streams(self):
        base = RngStreams(5)
        fork = base.fork(1)
        assert fork.seed != base.seed
        assert base.stream("a").uniform() != fork.stream("a").uniform()

    def test_fork_deterministic(self):
        assert RngStreams(5).fork(3).seed == RngStreams(5).fork(3).seed

    def test_rejects_bad_seed(self):
        with pytest.raises(ValueError):
            RngStreams(-1)
        with pytest.raises(ValueError):
            RngStreams("abc")  # type: ignore[arg-type]
