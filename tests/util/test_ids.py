"""GUID hashing and ring arithmetic, including hypothesis properties."""

import hashlib

import pytest
from hypothesis import given, strategies as st

from repro.util.ids import (
    GUID_BITS,
    GUID_SPACE,
    guid_for,
    random_guid,
    ring_add,
    ring_between,
    ring_between_right_inclusive,
    ring_distance,
)

ids = st.integers(min_value=0, max_value=GUID_SPACE - 1)


class TestGuidFor:
    def test_deterministic(self):
        assert guid_for("alpha") == guid_for("alpha")

    def test_distinct_names_distinct_guids(self):
        assert guid_for("alpha") != guid_for("beta")

    def test_accepts_bytes_consistently(self):
        assert guid_for("alpha") == guid_for(b"alpha")

    def test_in_range(self):
        for name in ("a", "b", "node-42", "x" * 1000):
            assert 0 <= guid_for(name) < GUID_SPACE

    def test_matches_truncated_sha1(self):
        digest = hashlib.sha1(b"check").digest()
        assert guid_for("check") == int.from_bytes(digest[:8], "big")

    def test_custom_bits(self):
        g = guid_for("x", bits=16)
        assert 0 <= g < 1 << 16

    def test_random_guid_in_range(self, rng):
        for _ in range(100):
            assert 0 <= random_guid(rng) < GUID_SPACE

    def test_random_guid_small_bits(self, rng):
        for _ in range(100):
            assert 0 <= random_guid(rng, bits=8) < 256


class TestRingMath:
    def test_add_wraps(self):
        assert ring_add(GUID_SPACE - 1, 1) == 0

    def test_distance_simple(self):
        assert ring_distance(5, 9) == 4

    def test_distance_wraps(self):
        assert ring_distance(9, 5) == GUID_SPACE - 4

    def test_between_plain(self):
        assert ring_between(5, 2, 9)
        assert not ring_between(2, 2, 9)
        assert not ring_between(9, 2, 9)

    def test_between_wrapping(self):
        assert ring_between(1, GUID_SPACE - 5, 5)
        assert ring_between(GUID_SPACE - 1, GUID_SPACE - 5, 5)
        assert not ring_between(10, GUID_SPACE - 5, 5)

    def test_between_degenerate_full_ring(self):
        # (a, a) is everything except a itself.
        assert ring_between(1, 7, 7)
        assert not ring_between(7, 7, 7)

    def test_right_inclusive_endpoint(self):
        assert ring_between_right_inclusive(9, 2, 9)
        assert not ring_between_right_inclusive(2, 2, 9)

    @given(a=ids, b=ids)
    def test_distance_inverse_of_add(self, a, b):
        assert ring_add(a, ring_distance(a, b)) == b

    @given(a=ids, b=ids)
    def test_distance_antisymmetry(self, a, b):
        if a != b:
            assert ring_distance(a, b) + ring_distance(b, a) == GUID_SPACE
        else:
            assert ring_distance(a, b) == 0

    @given(x=ids, a=ids, b=ids)
    def test_between_exclusive_of_endpoints(self, x, a, b):
        if x == a or x == b:
            assert not ring_between(x, a, b)

    @given(x=ids, a=ids, b=ids)
    def test_between_matches_distance_characterization(self, x, a, b):
        # x in (a, b) iff walking clockwise from a reaches x strictly
        # before reaching b.
        if a != b and x != a and x != b:
            expected = ring_distance(a, x) < ring_distance(a, b)
            assert ring_between(x, a, b) == expected

    @given(x=ids, a=ids, b=ids)
    def test_right_inclusive_consistent(self, x, a, b):
        assert ring_between_right_inclusive(x, a, b) == \
            (x == b or ring_between(x, a, b))


@pytest.fixture
def rng():
    import numpy as np

    return np.random.default_rng(0)
