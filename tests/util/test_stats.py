"""RunningStats (Welford), summarize, and Jain's fairness index."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.stats import RunningStats, jains_fairness, summarize

finite_floats = st.floats(min_value=-1e9, max_value=1e9,
                          allow_nan=False, allow_infinity=False)


class TestRunningStats:
    def test_empty(self):
        s = RunningStats()
        assert s.count == 0
        assert math.isnan(s.mean)
        assert math.isnan(s.std)

    def test_single_sample(self):
        s = RunningStats()
        s.add(5.0)
        assert s.mean == 5.0
        assert s.std == 0.0
        assert s.min == s.max == 5.0

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            RunningStats().add(float("nan"))

    def test_matches_numpy(self):
        data = np.random.default_rng(0).normal(10, 3, size=500)
        s = RunningStats()
        s.extend(data)
        assert s.count == 500
        assert s.mean == pytest.approx(data.mean())
        assert s.std == pytest.approx(data.std())
        assert s.min == data.min() and s.max == data.max()

    @given(st.lists(finite_floats, min_size=1, max_size=100))
    def test_welford_matches_numpy_property(self, xs):
        s = RunningStats()
        s.extend(xs)
        arr = np.asarray(xs)
        assert s.mean == pytest.approx(arr.mean(), rel=1e-9, abs=1e-6)
        assert s.variance == pytest.approx(arr.var(), rel=1e-6, abs=1e-4)

    @given(st.lists(finite_floats, min_size=1, max_size=50),
           st.lists(finite_floats, min_size=1, max_size=50))
    def test_merge_equals_concatenation(self, xs, ys):
        a, b = RunningStats(), RunningStats()
        a.extend(xs)
        b.extend(ys)
        merged = a.merge(b)
        both = RunningStats()
        both.extend(xs + ys)
        assert merged.count == both.count
        assert merged.mean == pytest.approx(both.mean, rel=1e-9, abs=1e-6)
        assert merged.variance == pytest.approx(both.variance, rel=1e-6, abs=1e-4)
        assert merged.min == both.min and merged.max == both.max

    def test_merge_with_empty(self):
        a = RunningStats()
        a.extend([1.0, 2.0, 3.0])
        empty = RunningStats()
        assert a.merge(empty).mean == pytest.approx(2.0)
        assert empty.merge(a).mean == pytest.approx(2.0)


class TestSummarize:
    def test_empty(self):
        s = summarize([])
        assert s.count == 0
        assert math.isnan(s.mean)

    def test_basic_fields(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.median == pytest.approx(2.5)
        assert s.min == 1.0 and s.max == 4.0

    def test_as_dict_roundtrip(self):
        d = summarize([1.0, 2.0]).as_dict()
        assert d["count"] == 2
        assert set(d) == {"count", "mean", "std", "min", "p25", "median",
                          "p75", "p95", "p99", "max"}


class TestJainsFairness:
    def test_uniform_is_one(self):
        assert jains_fairness([3, 3, 3, 3]) == pytest.approx(1.0)

    def test_single_hog_is_one_over_n(self):
        assert jains_fairness([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_all_zero_is_balanced(self):
        assert jains_fairness([0, 0, 0]) == pytest.approx(1.0)

    def test_empty_is_nan(self):
        assert math.isnan(jains_fairness([]))

    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                    min_size=1, max_size=50))
    def test_bounds(self, loads):
        f = jains_fairness(loads)
        assert 1.0 / len(loads) - 1e-9 <= f <= 1.0 + 1e-9
