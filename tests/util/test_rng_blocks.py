"""Bit-equivalence of block (chunked) RNG draws vs scalar draws.

The hot-path samplers in :mod:`repro.util.rng` claim that pre-drawing
vectorized blocks from a ``numpy`` ``Generator`` yields *exactly* the
values — and leaves the generator in *exactly* the state — that the
equivalent sequence of scalar calls would.  Every optimization downstream
(latency models, periodic-task jitter) leans on that claim, so it is
asserted here directly against numpy, not against our wrappers alone.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.rng import (
    DEFAULT_CHUNK,
    ChunkedLognormal,
    ChunkedUniform,
    RngStreams,
)


def _pair(seed: int = 123):
    """Two generators in identical states."""
    return (np.random.default_rng(seed), np.random.default_rng(seed))


class TestNumpyBlockEquivalence:
    """The underlying numpy facts the samplers rely on."""

    def test_lognormal_block_matches_scalars_and_state(self):
        a, b = _pair()
        block = a.lognormal(-3.0, 0.3, 100)
        scalars = [b.lognormal(-3.0, 0.3) for _ in range(100)]
        assert block.tolist() == scalars
        # Same bit-generator state afterwards: the next draws agree too.
        assert a.random() == b.random()

    def test_uniform_scaling_identity(self):
        a, b = _pair()
        us = a.random(50)
        want = [b.uniform(2.5, 7.5) for _ in range(50)]
        got = [2.5 + (7.5 - 2.5) * u for u in us.tolist()]
        assert got == want


class TestChunkedUniform:
    def test_matches_scalar_uniform_fixed_bounds(self):
        a, b = _pair(7)
        cu = ChunkedUniform(a, chunk=16)
        for _ in range(100):  # spans several refills
            assert cu.uniform(3.0, 9.0) == b.uniform(3.0, 9.0)

    def test_matches_scalar_uniform_varying_bounds(self):
        a, b = _pair(11)
        cu = ChunkedUniform(a, chunk=8)
        bounds = [(0.0, 1.0), (5.0, 15.0), (-2.0, 2.0), (0.9, 1.1)] * 10
        for lo, hi in bounds:
            assert cu.uniform(lo, hi) == b.uniform(lo, hi)

    def test_chunk_size_does_not_change_values(self):
        seqs = []
        for chunk in (1, 3, 64, DEFAULT_CHUNK):
            cu = ChunkedUniform(np.random.default_rng(42), chunk=chunk)
            seqs.append([cu.uniform(0.0, 5.0) for _ in range(200)])
        assert all(s == seqs[0] for s in seqs)

    def test_rejects_bad_chunk(self):
        with pytest.raises(ValueError):
            ChunkedUniform(np.random.default_rng(0), chunk=0)


class TestChunkedLognormal:
    def test_matches_scalar_lognormal(self):
        a, b = _pair(5)
        cl = ChunkedLognormal(a, mu=-3.04499, sigma=0.3, chunk=32)
        for _ in range(150):
            assert cl.sample() == b.lognormal(-3.04499, 0.3)

    def test_chunk_size_does_not_change_values(self):
        seqs = []
        for chunk in (1, 7, 256):
            cl = ChunkedLognormal(np.random.default_rng(9), -1.0, 0.5,
                                  chunk=chunk)
            seqs.append([cl.sample() for _ in range(100)])
        assert all(s == seqs[0] for s in seqs)

    def test_rejects_bad_chunk(self):
        with pytest.raises(ValueError):
            ChunkedLognormal(np.random.default_rng(0), 0.0, 1.0, chunk=-1)


class TestUniformSamplerFamilyCache:
    def test_same_sampler_per_name(self):
        streams = RngStreams(1)
        s1 = streams.uniform_sampler("protocol")
        s2 = streams.uniform_sampler("protocol")
        assert s1 is s2
        assert s1.rng is streams.stream("protocol")

    def test_distinct_names_distinct_samplers(self):
        streams = RngStreams(1)
        assert streams.uniform_sampler("a") is not streams.uniform_sampler("b")

    def test_shared_sampler_equals_interleaved_scalar_draws(self):
        """Two consumers sharing the family sampler see the same
        interleaved sequence as two consumers of a scalar generator."""
        chunked = RngStreams(77).uniform_sampler("protocol", chunk=5)
        scalar = RngStreams(77).stream("protocol")
        for i in range(60):
            lo, hi = (0.0, 1.0) if i % 2 else (10.0, 20.0)
            assert chunked.uniform(lo, hi) == scalar.uniform(lo, hi)
