"""Pastry: digit math, leaf sets, prefix routing, churn behaviour."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.dht.pastry import PastryNode, PastryOverlay
from repro.dht.pastry.node import circular_distance, digits_of, shared_prefix_len
from repro.util.ids import GUID_BITS, guid_for

ids = st.integers(min_value=0, max_value=(1 << GUID_BITS) - 1)


def build_overlay(n, seed=0, **kwargs):
    ov = PastryOverlay(np.random.default_rng(seed), **kwargs)
    ov.build(sorted({guid_for(f"pastry-{seed}-{i}") for i in range(n)}))
    return ov


class TestDigitMath:
    def test_digits_roundtrip(self):
        nid = guid_for("roundtrip")
        digits = digits_of(nid)
        rebuilt = 0
        for d in digits:
            rebuilt = (rebuilt << 4) | d
        assert rebuilt == nid

    def test_digit_count(self):
        assert len(digits_of(0)) == GUID_BITS // 4
        assert len(digits_of(0, bits=16, b=4)) == 4

    def test_shared_prefix(self):
        assert shared_prefix_len((1, 2, 3), (1, 2, 4)) == 2
        assert shared_prefix_len((1, 2, 3), (1, 2, 3)) == 3
        assert shared_prefix_len((5,), (6,)) == 0

    @given(a=ids, b=ids)
    def test_circular_distance_symmetric(self, a, b):
        assert circular_distance(a, b) == circular_distance(b, a)

    @given(a=ids, b=ids)
    def test_circular_distance_bounded(self, a, b):
        assert 0 <= circular_distance(a, b) <= (1 << GUID_BITS) // 2

    @given(a=ids)
    def test_self_distance_zero(self, a):
        assert circular_distance(a, a) == 0

    def test_bits_not_multiple_of_b_rejected(self):
        with pytest.raises(ValueError):
            PastryNode(1, bits=10, b=4)


class TestConstruction:
    def test_leaf_sets_are_ring_neighbors(self):
        ov = build_overlay(50)
        ids_sorted = [n.node_id for n in ov.live_nodes()]
        for i, node in enumerate(ov.live_nodes()):
            smaller_ids = [n.node_id for n in node.leaf_smaller]
            expected = [ids_sorted[(i - k) % 50] for k in range(1, 5)]
            assert smaller_ids == expected

    def test_routing_entries_share_prefix(self):
        ov = build_overlay(60)
        for node in ov.live_nodes():
            for row_idx, row in enumerate(node.routing_table):
                for col, entry in enumerate(row):
                    if entry is None:
                        continue
                    assert shared_prefix_len(entry.digits, node.digits) == row_idx
                    assert entry.digits[row_idx] == col

    def test_small_network_leafs_cover_everything(self):
        ov = build_overlay(4, leaf_set_size=8)
        for node in ov.live_nodes():
            known = {leaf.node_id for leaf in node.leaf_set()}
            assert known == {n.node_id for n in ov.live_nodes()} - {node.node_id}

    def test_bad_leaf_set_size_rejected(self):
        with pytest.raises(ValueError):
            PastryOverlay(np.random.default_rng(0), leaf_set_size=3)


class TestRouting:
    def test_owner_matches_oracle(self):
        ov = build_overlay(150)
        for i in range(300):
            key = guid_for(f"route-{i}")
            res = ov.route(key)
            assert res.success
            assert res.owner is ov.owner_oracle(key)

    def test_hops_track_log16(self):
        ov = build_overlay(256)
        hops = [ov.route(guid_for(f"h{i}")).hops for i in range(300)]
        assert np.mean(hops) <= 2.0 * np.log2(256) / 4.0 + 3.0

    def test_route_from_start(self):
        ov = build_overlay(60)
        start = ov.live_nodes()[10]
        res = ov.route(guid_for("from-here"), start=start)
        assert res.success and res.path[0] == start.node_id

    def test_key_equal_to_node_id(self):
        ov = build_overlay(60)
        target = ov.live_nodes()[7]
        res = ov.route(target.node_id)
        assert res.owner is target

    def test_empty_overlay(self):
        ov = PastryOverlay(np.random.default_rng(0))
        assert not ov.route(42).success


class TestChurn:
    def test_repair_restores_full_accuracy(self):
        ov = build_overlay(120)
        for node in ov.live_nodes()[::3]:
            ov.crash(node.node_id)
        ov.repair()
        for i in range(200):
            key = guid_for(f"churn-{i}")
            res = ov.route(key)
            assert res.success and res.owner is ov.owner_oracle(key)

    def test_leaf_redundancy_survives_unrepaired_crashes(self):
        ov = build_overlay(120, leaf_set_size=16)
        for node in ov.live_nodes()[::8]:
            ov.crash(node.node_id)
        ok = 0
        for i in range(200):
            key = guid_for(f"x-{i}")
            res = ov.route(key)
            if res.success and res.owner is ov.owner_oracle(key):
                ok += 1
        assert ok >= 180  # >90% without any repair round

    def test_join_is_findable_and_fills_holes(self):
        ov = build_overlay(60)
        newcomer = PastryNode(guid_for("pastry-late"))
        ov.join(newcomer)
        res = ov.route(newcomer.node_id)
        assert res.owner is newcomer
        # Its ring neighbors list it in their leaf sets.
        neighbors = ov._leaf_neighborhood(newcomer.node_id)
        assert any(newcomer in ov.nodes[nid].leaf_set() for nid in neighbors)


class TestStorage:
    def test_put_get_with_leaf_replication(self):
        ov = build_overlay(80)
        key = guid_for("pastry-value")
        ov.put(key, "v", replicas=4)
        holders = [n for n in ov.live_nodes() if key in n.store]
        assert len(holders) == 4
        _, value = ov.get(key, replicas=4)
        assert value == "v"

    def test_value_survives_owner_crash(self):
        ov = build_overlay(80)
        key = guid_for("pastry-durable")
        ov.put(key, "keep", replicas=4)
        ov.crash(ov.owner_oracle(key).node_id)
        ov.repair()
        _, value = ov.get(key, replicas=4)
        assert value == "keep"
