"""Chord: construction, lookup correctness, stabilization, storage, churn."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dht.chord import ChordNode, ChordOverlay
from repro.util.ids import guid_for


def build_overlay(n, seed=0, **kwargs):
    ov = ChordOverlay(np.random.default_rng(seed), **kwargs)
    ids = sorted({guid_for(f"chord-{seed}-{i}") for i in range(n)})
    ov.build(ids)
    return ov


class TestOracleConstruction:
    def test_ring_of_one(self):
        ov = build_overlay(1)
        node = ov.live_nodes()[0]
        assert node.successors == [node]
        assert node.predecessor is node
        res = ov.route(guid_for("anything"))
        assert res.success and res.owner is node and res.hops == 0

    def test_successor_pointers_sorted(self):
        ov = build_overlay(50)
        live = ov.live_nodes()
        ids = [n.node_id for n in live]
        for i, node in enumerate(live):
            assert node.successors[0].node_id == ids[(i + 1) % len(ids)]
            assert node.predecessor.node_id == ids[(i - 1) % len(ids)]

    def test_fingers_point_at_true_successors(self):
        ov = build_overlay(30)
        for node in ov.live_nodes():
            for i, finger in enumerate(node.fingers):
                target = node.finger_start(i)
                assert finger is ov.successor_of(target)

    def test_duplicate_ids_rejected(self):
        ov = ChordOverlay(np.random.default_rng(0))
        with pytest.raises(ValueError):
            ov.build([5, 5])


class TestLookup:
    def test_owner_matches_oracle(self):
        ov = build_overlay(100)
        for i in range(300):
            key = guid_for(f"key-{i}")
            res = ov.route(key)
            assert res.success
            assert res.owner is ov.successor_of(key)

    def test_hops_logarithmic(self):
        ov = build_overlay(256)
        hops = []
        for i in range(300):
            res = ov.route(guid_for(f"k{i}"))
            hops.append(res.hops)
        # Chord: expected (1/2) log2 N ~= 4; generous bound.
        assert np.mean(hops) < 2 * np.log2(256)
        assert max(hops) <= 4 * np.log2(256)

    def test_lookup_from_specific_start(self):
        ov = build_overlay(64)
        start = ov.live_nodes()[5]
        key = guid_for("from-start")
        res = ov.route(key, start=start)
        assert res.success and res.path[0] == start.node_id
        assert res.owner is ov.successor_of(key)

    def test_lookup_key_owned_by_start(self):
        ov = build_overlay(64)
        node = ov.live_nodes()[3]
        res = ov.route(node.node_id, start=node)
        assert res.success and res.owner is node

    def test_stats_recorded(self):
        ov = build_overlay(32)
        for i in range(10):
            ov.route(guid_for(f"s{i}"))
        assert ov.lookup_stats.lookups == 10
        assert ov.lookup_stats.mean_hops > 0

    def test_empty_overlay_lookup_fails(self):
        ov = ChordOverlay(np.random.default_rng(0))
        res = ov.route(123)
        assert not res.success


class TestProtocolJoinAndStabilize:
    def test_sequential_joins_converge(self):
        ov = ChordOverlay(np.random.default_rng(1))
        ov.join(ChordNode(guid_for("seed")))
        for i in range(30):
            ov.join(ChordNode(guid_for(f"join-{i}")))
            ov.maintenance_round()
            ov.maintenance_round()
        for i in range(100):
            key = guid_for(f"jk{i}")
            res = ov.route(key)
            assert res.success and res.owner is ov.successor_of(key)

    def test_join_collision_rejected(self):
        ov = ChordOverlay(np.random.default_rng(1))
        ov.join(ChordNode(guid_for("a")))
        with pytest.raises(ValueError):
            ov.join(ChordNode(guid_for("a")))

    def test_stabilization_fixes_crashed_successor(self):
        ov = build_overlay(20)
        live = ov.live_nodes()
        victim = live[3]
        pred = live[2]
        ov.crash(victim.node_id)
        # Before repair the predecessor's successor list starts with a
        # corpse; stabilization must splice it out.
        assert not pred.successors[0].alive
        for _ in range(3):
            ov.maintenance_round()
        assert pred.first_live_successor() is ov.successor_of(
            (pred.node_id + 1) % (1 << pred.bits))

    def test_oracle_join_after_build(self):
        ov = build_overlay(20)
        newcomer = ChordNode(guid_for("late-arrival"))
        ov.oracle_join(newcomer)
        assert newcomer.alive
        res = ov.route(newcomer.node_id)
        assert res.owner is newcomer


class TestStorage:
    def test_put_get_roundtrip(self):
        ov = build_overlay(40)
        key = guid_for("data")
        ov.put(key, {"payload": 1}, replicas=3)
        res, value = ov.get(key, replicas=3)
        assert res.success and value == {"payload": 1}

    def test_replicas_placed_on_successors(self):
        ov = build_overlay(40)
        key = guid_for("replicated")
        ov.put(key, "v", replicas=3)
        owner = ov.successor_of(key)
        holders = [n for n in ov.live_nodes() if key in n.store]
        assert len(holders) == 3
        assert owner in holders

    def test_value_survives_owner_crash(self):
        ov = build_overlay(40)
        key = guid_for("precious")
        ov.put(key, "keep-me", replicas=3)
        ov.crash(ov.successor_of(key).node_id)
        ov.repair()
        _, value = ov.get(key, replicas=3)
        assert value == "keep-me"

    def test_value_lost_when_all_replicas_crash(self):
        ov = build_overlay(40)
        key = guid_for("fragile")
        ov.put(key, "v", replicas=1)
        ov.crash(ov.successor_of(key).node_id)
        ov.repair()
        _, value = ov.get(key, replicas=1)
        assert value is None

    def test_graceful_leave_hands_off_keys(self):
        ov = build_overlay(40)
        key = guid_for("handoff")
        ov.put(key, "moved", replicas=1)
        owner = ov.successor_of(key)
        ov.leave(owner.node_id)
        _, value = ov.get(key, replicas=1)
        assert value == "moved"


class TestChurn:
    @settings(max_examples=20, deadline=None)
    @given(crash_seed=st.integers(0, 10_000))
    def test_lookups_correct_after_random_crashes(self, crash_seed):
        ov = build_overlay(60, seed=crash_seed % 7)
        rng = np.random.default_rng(crash_seed)
        live = ov.live_nodes()
        victims = rng.choice(len(live), size=len(live) // 3, replace=False)
        for idx in victims:
            ov.crash(live[idx].node_id)
        ov.repair()
        for i in range(30):
            key = guid_for(f"churn-{crash_seed}-{i}")
            res = ov.route(key)
            assert res.success
            assert res.owner is ov.successor_of(key)

    def test_crash_then_recover(self):
        ov = build_overlay(20)
        victim = ov.live_nodes()[4]
        nid = victim.node_id
        ov.crash(nid)
        assert ov.size == 19
        node = ov.recover(nid)
        assert ov.size == 20
        assert node.alive and node.store == {}
        res = ov.route(nid)
        assert res.owner is node

    def test_survives_with_successor_list_redundancy(self):
        # Kill a *run* of consecutive nodes shorter than the successor
        # list; routing must still succeed without oracle repair.
        ov = build_overlay(40, successor_list_len=8)
        live = ov.live_nodes()
        for node in live[5:10]:  # 5 consecutive < r=8
            ov.crash(node.node_id)
        for i in range(50):
            key = guid_for(f"redundancy-{i}")
            res = ov.route(key)
            assert res.success
            assert res.owner is ov.successor_of(key)
