"""Incremental oracle splices must equal a full oracle repair.

``crash_repair`` and the strengthened ``oracle_join`` claim to leave
every live node's pointers exactly as ``repair()`` (a full O(N·B) sweep)
would.  These tests churn a ring through both code paths and compare
successor lists, predecessors, and all finger tables node-by-node.
"""

import numpy as np
import pytest

from repro.dht.chord import ChordOverlay
from repro.dht.chord.node import ChordNode
from repro.util.ids import guid_for


def _pointers(overlay: ChordOverlay) -> dict:
    out = {}
    for node in overlay.live_nodes():
        out[node.node_id] = (
            [s.node_id for s in node.successors],
            None if node.predecessor is None else node.predecessor.node_id,
            [None if f is None else f.node_id for f in node.fingers],
        )
    return out


def _build_pair(n: int, seed: int) -> tuple[ChordOverlay, ChordOverlay, list[int]]:
    ids = sorted({guid_for(f"inc-{seed}-{i}") for i in range(n)})
    fast = ChordOverlay(np.random.default_rng(seed))
    slow = ChordOverlay(np.random.default_rng(seed))
    fast.build(ids)
    slow.build(ids)
    return fast, slow, ids


class TestCrashRepair:
    @pytest.mark.parametrize("n", [12, 60])
    def test_matches_crash_plus_repair(self, n):
        fast, slow, ids = _build_pair(n, seed=n)
        rng = np.random.default_rng(n)
        crashed: list[int] = []
        for step in range(3 * n):
            if len(fast._live_ids) > 3 and (not crashed or rng.random() < 0.5):
                victim = int(fast._live_ids[
                    int(rng.integers(0, len(fast._live_ids)))])
                fast.crash_repair(victim)
                slow.crash(victim)
                slow.repair()
                crashed.append(victim)
            else:
                back = crashed.pop(int(rng.integers(0, len(crashed))))
                fast.recover(back)  # oracle_join splice
                old = slow.nodes.pop(back)
                assert not old.alive
                fresh = ChordNode(back)
                slow.nodes[back] = fresh
                fresh.alive = True
                slow._insert_live_id(back)
                slow.repair()
            assert _pointers(fast) == _pointers(slow), f"diverged at {step}"

    def test_idempotent_on_dead_node(self):
        fast, _, ids = _build_pair(10, seed=4)
        fast.crash_repair(ids[0])
        before = _pointers(fast)
        fast.crash_repair(ids[0])  # already dead: no-op
        assert _pointers(fast) == before

    def test_splice_is_a_repair_fixed_point(self):
        # After any splice, running the full repair must change nothing.
        fast, _, ids = _build_pair(40, seed=7)
        rng = np.random.default_rng(11)
        for _ in range(15):
            victim = int(fast._live_ids[
                int(rng.integers(0, len(fast._live_ids)))])
            fast.crash_repair(victim)
        spliced = _pointers(fast)
        fast.repair()
        assert _pointers(fast) == spliced


class TestOracleJoinSplice:
    def test_join_matches_full_repair(self):
        fast, slow, _ = _build_pair(30, seed=2)
        for i in range(12):
            nid = guid_for(f"joiner-{i}")
            fast.oracle_join(ChordNode(nid))
            n2 = ChordNode(nid)
            slow.nodes[nid] = n2
            n2.alive = True
            slow._insert_live_id(nid)
            slow.repair()
            assert _pointers(fast) == _pointers(slow)

    def test_tiny_ring_growth(self):
        # n <= r+1 path: the splice degenerates to full repair.
        fast = ChordOverlay(np.random.default_rng(0), successor_list_len=4)
        slow = ChordOverlay(np.random.default_rng(0), successor_list_len=4)
        first = guid_for("tiny-0")
        fast.build([first])
        slow.build([first])
        for i in range(1, 8):
            nid = guid_for(f"tiny-{i}")
            fast.oracle_join(ChordNode(nid))
            n2 = ChordNode(nid)
            slow.nodes[nid] = n2
            n2.alive = True
            slow._insert_live_id(nid)
            slow.repair()
            assert _pointers(fast) == _pointers(slow)
