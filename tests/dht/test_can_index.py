"""The CAN split-history (BSP) index vs a linear zone scan.

``zone_owner`` resolves point ownership by descending the split history
in O(depth).  These tests keep a brute-force scan as the reference and
assert agreement through joins, crashes (takeover relabels), and
graceful leaves — including points on shared zone faces, where the
half-open convention makes exactly one zone the owner.
"""

import numpy as np
import pytest

from repro.dht.can import CANNode, CANOverlay
from repro.util.ids import guid_for


def _scan_owner(overlay: CANOverlay, point):
    for node in overlay.live_nodes():
        if node.owns_point(point):
            return node
    return None


def _probe_points(overlay: CANOverlay, rng, extra=()):
    pts = [tuple(rng.uniform(0, 1, overlay.dims)) for _ in range(64)]
    pts += [tuple(z.center()) for n in overlay.live_nodes()
            for z in n.zones]
    # boundary coordinates: zone corners exercise the half-open faces
    for node in overlay.live_nodes():
        for zone in node.zones:
            pts.append(tuple(zone.lo))
            pts.append(tuple(zone.hi))
    pts.extend(extra)
    return pts


def _assert_index_matches_scan(overlay: CANOverlay, rng):
    for p in _probe_points(overlay, rng,
                           extra=[(0.0,) * overlay.dims,
                                  (1.0,) * overlay.dims,
                                  (1.5,) * overlay.dims]):
        assert overlay.zone_owner(p) is _scan_owner(overlay, p), p


class TestIndexEquivalence:
    @pytest.mark.parametrize("dims", [2, 4])
    def test_after_joins(self, dims):
        rng = np.random.default_rng(dims)
        ov = CANOverlay(np.random.default_rng(1), dims=dims)
        for i in range(50):
            ov.join(CANNode(guid_for(f"can-{dims}-{i}"),
                            tuple(rng.uniform(0, 1, dims))))
        ov.check_invariants()
        _assert_index_matches_scan(ov, rng)

    def test_after_churn(self):
        rng = np.random.default_rng(5)
        ov = CANOverlay(np.random.default_rng(2), dims=3)
        ids = []
        for i in range(40):
            nid = guid_for(f"churn-{i}")
            ids.append(nid)
            ov.join(CANNode(nid, tuple(rng.uniform(0, 1, 3))))
        # crashes trigger takeover (index relabels, geometry unchanged)
        for nid in ids[::4]:
            ov.crash(nid)
        ov.check_invariants()
        _assert_index_matches_scan(ov, rng)
        # graceful leaves go through the same takeover path
        live = [n.node_id for n in ov.live_nodes()]
        for nid in live[::5]:
            ov.leave(nid)
        ov.check_invariants()
        _assert_index_matches_scan(ov, rng)

    def test_reseeded_after_total_loss(self):
        ov = CANOverlay(np.random.default_rng(3), dims=2)
        a, b = guid_for("tl-a"), guid_for("tl-b")
        ov.join(CANNode(a, (0.2, 0.2)))
        ov.join(CANNode(b, (0.8, 0.8)))
        ov.crash(a)
        ov.crash(b)
        assert ov.zone_owner((0.5, 0.5)) is None
        c = guid_for("tl-c")
        ov.join(CANNode(c, (0.4, 0.6)))  # first node again: fresh root
        assert ov.zone_owner((0.5, 0.5)) is ov.nodes[c]
        ov.check_invariants()

    def test_join_resolution_agrees_with_routing(self):
        # The join path now resolves the owner through the index; the
        # routed owner must be the same node (ownership is unique).
        rng = np.random.default_rng(8)
        ov = CANOverlay(np.random.default_rng(4), dims=3)
        for i in range(30):
            ov.join(CANNode(guid_for(f"jr-{i}"), tuple(rng.uniform(0, 1, 3))))
        for _ in range(40):
            p = tuple(rng.uniform(0, 1, 3))
            res = ov.route(p)
            assert res.success
            assert res.owner is ov.zone_owner(p)
