"""Kademlia: buckets, iterative lookup, storage, crash behaviour."""

import numpy as np
import pytest

from repro.dht.kademlia import KademliaNode, KademliaOverlay
from repro.util.ids import guid_for


def build_overlay(n, seed=0, **kwargs):
    ov = KademliaOverlay(np.random.default_rng(seed), **kwargs)
    ids = sorted({guid_for(f"kad-{seed}-{i}") for i in range(n)})
    ov.build(ids)
    return ov


class TestBuckets:
    def test_bucket_index_is_xor_msb(self):
        node = KademliaNode(0b1000, bits=8)
        assert node.bucket_index(0b1001) == 0
        assert node.bucket_index(0b1100) == 2
        assert node.bucket_index(0b0000) == 3

    def test_no_bucket_for_self(self):
        node = KademliaNode(5)
        with pytest.raises(ValueError):
            node.bucket_index(5)

    def test_observe_dedupes_and_moves_to_tail(self):
        a = KademliaNode(0, bits=8, k=4)
        b = KademliaNode(2, bits=8, k=4)  # xor 2 -> bucket 1
        c = KademliaNode(3, bits=8, k=4)  # xor 3 -> bucket 1
        a.observe(b)
        a.observe(c)
        a.observe(b)  # seen again -> tail
        bucket = a.buckets[1]
        assert bucket == [c, b]

    def test_full_bucket_drops_newcomer_when_all_live(self):
        a = KademliaNode(0, bits=8, k=2)
        peers = [KademliaNode(i, bits=8, k=2) for i in (4, 5, 6, 7)]
        for p in peers:
            a.observe(p)
        assert len(a.buckets[2]) == 2
        assert peers[0] in a.buckets[2] and peers[1] in a.buckets[2]

    def test_full_bucket_evicts_dead_lru(self):
        a = KademliaNode(0, bits=8, k=2)
        p1, p2, p3 = (KademliaNode(i, bits=8, k=2) for i in (4, 5, 6))
        a.observe(p1)
        a.observe(p2)
        p1.alive = False
        a.observe(p3)
        assert p1 not in a.buckets[2]
        assert p3 in a.buckets[2]

    def test_observe_self_is_noop(self):
        a = KademliaNode(0, bits=8)
        a.observe(a)
        assert all(not b for b in a.buckets)


class TestLookup:
    def test_finds_globally_closest_node(self):
        ov = build_overlay(150)
        for i in range(200):
            key = guid_for(f"target-{i}")
            res = ov.route(key)
            assert res.success
            assert res.owner is ov.owner_oracle(key)

    def test_query_cost_logarithmic(self):
        ov = build_overlay(256)
        hops = []
        for i in range(200):
            hops.append(ov.route(guid_for(f"q{i}")).hops)
        # ~alpha * log2(N) queries; generous cap.
        assert np.mean(hops) < 6 * np.log2(256)

    def test_lookup_after_crashes(self):
        ov = build_overlay(100)
        for node in ov.live_nodes()[::3]:
            ov.crash(node.node_id)
        for i in range(100):
            key = guid_for(f"post-crash-{i}")
            res = ov.route(key)
            assert res.success
            assert res.owner is ov.owner_oracle(key)

    def test_empty_overlay(self):
        ov = KademliaOverlay(np.random.default_rng(0))
        assert not ov.route(42).success


class TestStorage:
    def test_put_get(self):
        ov = build_overlay(80)
        key = guid_for("kv")
        ov.put(key, "value")
        _, v = ov.get(key, replicas=8)
        assert v == "value"

    def test_put_replicates_to_k_closest(self):
        ov = build_overlay(80, k=8)
        key = guid_for("replicated")
        ov.put(key, "v")
        holders = sorted((n for n in ov.live_nodes() if key in n.store),
                         key=lambda n: n.node_id ^ key)
        assert len(holders) == 8
        # The holders are exactly the globally closest nodes.
        closest = sorted(ov.live_nodes(), key=lambda n: n.node_id ^ key)[:8]
        assert holders == closest

    def test_value_survives_partial_crash(self):
        ov = build_overlay(80, k=8)
        key = guid_for("durable")
        ov.put(key, "v")
        # Kill half the replica set.
        closest = sorted(ov.live_nodes(), key=lambda n: n.node_id ^ key)[:4]
        for n in closest:
            ov.crash(n.node_id)
        _, v = ov.get(key, replicas=8)
        assert v == "v"


class TestJoin:
    def test_join_announces_to_network(self):
        ov = build_overlay(50)
        newcomer = KademliaNode(guid_for("late"), k=8)
        ov.join(newcomer)
        # The newcomer is findable.
        res = ov.route(newcomer.node_id)
        assert res.owner is newcomer

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            KademliaOverlay(np.random.default_rng(0), k=0)
