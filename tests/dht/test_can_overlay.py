"""CAN overlay: joins, tessellation invariants, routing, takeover."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dht.can import CANNode, CANOverlay
from repro.util.ids import guid_for


def build_overlay(n, dims=3, seed=0, discrete=False):
    ov = CANOverlay(np.random.default_rng(seed), dims=dims)
    rng = np.random.default_rng(seed + 1)
    for i in range(n):
        if discrete:
            # Discrete resource levels + continuous virtual last dim, the
            # matchmaking shape.
            coords = tuple(rng.integers(1, 11, dims - 1) / 10.0) + \
                (float(rng.uniform()),)
        else:
            coords = tuple(rng.uniform(0, 1, dims))
        ov.join(CANNode(guid_for(f"can-{seed}-{i}"), coords))
    return ov


class TestJoin:
    def test_first_node_owns_everything(self):
        ov = CANOverlay(np.random.default_rng(0), dims=2)
        n = CANNode(1, (0.3, 0.7))
        ov.join(n)
        assert n.zone.volume() == pytest.approx(1.0)
        assert ov.route((0.9, 0.9)).owner is n

    def test_invariants_after_many_joins(self):
        ov = build_overlay(120)
        ov.check_invariants()

    def test_invariants_with_discrete_levels(self):
        ov = build_overlay(120, dims=4, discrete=True)
        ov.check_invariants()

    def test_every_node_keeps_its_point(self):
        ov = build_overlay(80)
        for node in ov.live_nodes():
            assert node.zone.contains(node.point)

    def test_identical_points_rejected(self):
        ov = CANOverlay(np.random.default_rng(0), dims=2)
        ov.join(CANNode(1, (0.5, 0.5)))
        with pytest.raises(ValueError):
            ov.join(CANNode(2, (0.5, 0.5)))

    def test_duplicate_id_rejected(self):
        ov = CANOverlay(np.random.default_rng(0), dims=2)
        ov.join(CANNode(1, (0.5, 0.5)))
        with pytest.raises(ValueError):
            ov.join(CANNode(1, (0.4, 0.4)))

    def test_wrong_dims_rejected(self):
        ov = CANOverlay(np.random.default_rng(0), dims=3)
        with pytest.raises(ValueError):
            ov.join(CANNode(1, (0.5, 0.5)))


class TestRouting:
    def test_owner_matches_oracle(self):
        ov = build_overlay(100)
        rng = np.random.default_rng(99)
        for _ in range(200):
            p = tuple(rng.uniform(0, 1, 3))
            res = ov.route(p)
            assert res.success
            assert res.owner is ov.zone_owner(p)

    def test_boundary_targets_resolve(self):
        # Points exactly on shared zone faces (common with discrete levels).
        ov = build_overlay(100, dims=4, discrete=True)
        rng = np.random.default_rng(5)
        for _ in range(200):
            p = tuple(rng.integers(1, 11, 3) / 10.0) + (float(rng.uniform()),)
            res = ov.route(p)
            assert res.success
            assert res.owner is ov.zone_owner(p)

    def test_hops_scale_sublinearly(self):
        small = build_overlay(32, dims=3, seed=1)
        large = build_overlay(512, dims=3, seed=2)
        rng = np.random.default_rng(0)

        def mean_hops(ov):
            hops = []
            for _ in range(200):
                res = ov.route(tuple(rng.uniform(0, 1, 3)))
                assert res.success
                hops.append(res.hops)
            return np.mean(hops)

        # 16x more nodes must cost far less than 16x more hops
        # (theory: N^(1/3) => ~2.5x).
        assert mean_hops(large) < 6 * mean_hops(small)

    def test_route_from_start(self):
        ov = build_overlay(50)
        start = ov.live_nodes()[7]
        res = ov.route((0.9, 0.9, 0.9), start=start)
        assert res.success and res.path[0] == start.node_id

    def test_empty_overlay_fails(self):
        ov = CANOverlay(np.random.default_rng(0), dims=2)
        assert not ov.route((0.5, 0.5)).success


class TestTakeover:
    def test_crash_preserves_tessellation(self):
        ov = build_overlay(60)
        victims = ov.live_nodes()[::4]
        for v in victims:
            ov.crash(v.node_id)
        ov.check_invariants()

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_random_crash_patterns_keep_routing_correct(self, seed):
        ov = build_overlay(50, seed=seed % 5)
        rng = np.random.default_rng(seed)
        live = ov.live_nodes()
        for idx in rng.choice(len(live), size=len(live) // 3, replace=False):
            ov.crash(live[idx].node_id)
        ov.check_invariants()
        for _ in range(30):
            p = tuple(rng.uniform(0, 1, 3))
            res = ov.route(p)
            assert res.success
            assert res.owner is ov.zone_owner(p)

    def test_graceful_leave_hands_off_store(self):
        ov = build_overlay(30)
        node = ov.live_nodes()[3]
        node.store[42] = "v"
        ov.leave(node.node_id)
        holders = [n for n in ov.live_nodes() if n.store.get(42) == "v"]
        assert len(holders) == 1
        ov.check_invariants()

    def test_crash_to_single_survivor(self):
        ov = build_overlay(10)
        live = ov.live_nodes()
        for node in live[:-1]:
            ov.crash(node.node_id)
        survivor = ov.live_nodes()[0]
        assert survivor.total_volume() == pytest.approx(1.0)
        res = ov.route((0.1, 0.1, 0.1))
        assert res.success and res.owner is survivor


class TestReplicaSet:
    def test_owner_first_then_neighbors(self):
        ov = build_overlay(40)
        owner = ov.live_nodes()[0]
        rs = ov.replica_set(owner, None, 3)
        assert rs[0] is owner
        assert len(rs) == 3
        assert all(nb in owner.neighbors for nb in rs[1:])
