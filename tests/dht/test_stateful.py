"""Stateful property tests: random join/crash/lookup interleavings.

Hypothesis drives arbitrary membership histories against each overlay and
checks, after every step, that routing agrees with the oracle and the
structural invariants hold.  These catch ordering bugs (e.g. takeover
after cascading failures) that fixed scenarios miss.
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.dht.can import CANNode, CANOverlay
from repro.dht.chord import ChordNode, ChordOverlay
from repro.dht.pastry import PastryNode, PastryOverlay
from repro.util.ids import guid_for


class ChordMachine(RuleBasedStateMachine):
    """Chord under arbitrary oracle-membership churn."""

    @initialize()
    def setup(self) -> None:
        self.overlay = ChordOverlay(np.random.default_rng(0))
        self.counter = 0
        first = guid_for("chord-state-0")
        self.overlay.build([first])
        self.member_ids = {first}

    @rule()
    def join_node(self) -> None:
        self.counter += 1
        nid = guid_for(f"chord-state-{self.counter}")
        if nid in self.overlay.nodes:
            if not self.overlay.nodes[nid].alive:
                self.overlay.recover(nid)
                self.member_ids.add(nid)
            return
        self.overlay.oracle_join(ChordNode(nid))
        self.member_ids.add(nid)

    @precondition(lambda self: len(self.member_ids) > 1)
    @rule(pick=st.integers(0, 10**9))
    def crash_node(self, pick: int) -> None:
        victim = sorted(self.member_ids)[pick % len(self.member_ids)]
        self.overlay.crash(victim)
        self.overlay.repair()
        self.member_ids.discard(victim)

    @rule(key_seed=st.integers(0, 10**9))
    def lookup(self, key_seed: int) -> None:
        key = guid_for(f"chord-key-{key_seed}")
        res = self.overlay.route(key)
        assert res.success
        assert res.owner is self.overlay.successor_of(key)

    @invariant()
    def live_set_matches(self) -> None:
        assert {n.node_id for n in self.overlay.live_nodes()} == self.member_ids


class CANMachine(RuleBasedStateMachine):
    """CAN under arbitrary join/crash churn with immediate takeover."""

    @initialize()
    def setup(self) -> None:
        self.overlay = CANOverlay(np.random.default_rng(0), dims=3)
        self.rng = np.random.default_rng(42)
        self.counter = 0
        first = CANNode(guid_for("can-state-0"), tuple(self.rng.uniform(0, 1, 3)))
        self.overlay.join(first)
        self.member_ids = {first.node_id}

    @rule()
    def join_node(self) -> None:
        self.counter += 1
        name = f"can-state-{self.counter}"
        nid = guid_for(name)
        if nid in self.overlay.nodes:
            return
        self.overlay.join(CANNode(nid, tuple(self.rng.uniform(0, 1, 3))))
        self.member_ids.add(nid)

    @precondition(lambda self: len(self.member_ids) > 1)
    @rule(pick=st.integers(0, 10**9))
    def crash_node(self, pick: int) -> None:
        victim = sorted(self.member_ids)[pick % len(self.member_ids)]
        self.overlay.crash(victim)
        self.member_ids.discard(victim)

    @rule(seed=st.integers(0, 10**9))
    def route(self, seed: int) -> None:
        rng = np.random.default_rng(seed)
        point = tuple(rng.uniform(0, 1, 3))
        res = self.overlay.route(point)
        assert res.success
        assert res.owner is self.overlay.zone_owner(point)

    @invariant()
    def tessellation_holds(self) -> None:
        self.overlay.check_invariants()


class PastryMachine(RuleBasedStateMachine):
    """Pastry under join/crash churn with oracle repair."""

    @initialize()
    def setup(self) -> None:
        self.overlay = PastryOverlay(np.random.default_rng(0))
        self.counter = 0
        first = guid_for("pastry-state-0")
        self.overlay.build([first])
        self.member_ids = {first}

    @rule()
    def join_node(self) -> None:
        self.counter += 1
        nid = guid_for(f"pastry-state-{self.counter}")
        if nid in self.overlay.nodes:
            return
        self.overlay.join(PastryNode(nid))
        self.member_ids.add(nid)

    @precondition(lambda self: len(self.member_ids) > 1)
    @rule(pick=st.integers(0, 10**9))
    def crash_node(self, pick: int) -> None:
        victim = sorted(self.member_ids)[pick % len(self.member_ids)]
        self.overlay.crash(victim)
        self.overlay.repair()
        self.member_ids.discard(victim)

    @rule(key_seed=st.integers(0, 10**9))
    def lookup(self, key_seed: int) -> None:
        key = guid_for(f"pastry-key-{key_seed}")
        res = self.overlay.route(key)
        assert res.success
        assert res.owner is self.overlay.owner_oracle(key)


common_settings = settings(max_examples=12, stateful_step_count=30,
                           deadline=None)

TestChordStateful = ChordMachine.TestCase
TestChordStateful.settings = common_settings
TestCANStateful = CANMachine.TestCase
TestCANStateful.settings = common_settings
TestPastryStateful = PastryMachine.TestCase
TestPastryStateful.settings = common_settings
