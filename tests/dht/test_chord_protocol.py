"""Message-level Chord: join convergence, lookups, churn self-repair.

Everything here runs with zero oracle intervention — nodes know only what
messages told them, and failures surface as RPC timeouts.
"""

import numpy as np
import pytest

from repro.dht.chord.protocol import ChordProtocolNetwork
from repro.sim.failure import CrashRecoveryProcess
from repro.sim.kernel import Simulator
from repro.sim.network import LatencyModel, Network
from repro.util.ids import guid_for


def make_network(seed=0, interval=2.0, latency_jitter=0.2):
    sim = Simulator()
    network = Network(sim, np.random.default_rng(seed),
                      LatencyModel(mean=0.02, jitter=latency_jitter))
    chord = ChordProtocolNetwork(sim, network, np.random.default_rng(seed + 1),
                                 stabilize_interval=interval)
    return sim, network, chord


def build_ring(chord, sim, n, tag="n", stagger=0.5, settle=60.0):
    boot = guid_for(f"{tag}-boot")
    chord.bootstrap(boot)
    ids = [boot]
    for i in range(n - 1):
        nid = guid_for(f"{tag}-{i}")
        ids.append(nid)
        sim.schedule(1.0 + i * stagger, chord.join, nid, boot)
    sim.run(until=1.0 + n * stagger + settle)
    return ids


def run_lookups(chord, sim, keys, horizon=30.0, starts=None):
    results = {}
    live = chord.live_ids()
    for i, key in enumerate(keys):
        start = (starts or live)[i % len(starts or live)]
        chord.lookup(key, start,
                     (lambda k: lambda owner, q: results.__setitem__(k, (owner, q)))(key))
    sim.run(until=sim.now + horizon)
    return results


class TestJoinConvergence:
    def test_sequential_joins_form_consistent_ring(self):
        sim, _, chord = make_network()
        build_ring(chord, sim, 24)
        assert len(chord.live_ids()) == 24
        assert chord.ring_consistent()

    def test_concurrent_joins_converge(self):
        sim, _, chord = make_network(seed=3)
        boot = guid_for("cj-boot")
        chord.bootstrap(boot)
        for i in range(16):  # all join within one second
            sim.schedule(1.0 + 0.05 * i, chord.join, guid_for(f"cj-{i}"), boot)
        sim.run(until=120.0)
        assert len(chord.live_ids()) == 17
        assert chord.ring_consistent()

    def test_duplicate_create_rejected(self):
        sim, _, chord = make_network()
        chord.bootstrap(guid_for("dup"))
        with pytest.raises(ValueError):
            chord.create(guid_for("dup"))


class TestLookups:
    def test_lookups_find_oracle_owner(self):
        sim, _, chord = make_network()
        build_ring(chord, sim, 24, tag="lk")
        keys = [guid_for(f"key-{i}") for i in range(60)]
        results = run_lookups(chord, sim, keys)
        for key in keys:
            owner, _ = results[key]
            assert owner == chord.oracle_owner(key)

    def test_query_cost_logarithmic(self):
        sim, _, chord = make_network()
        build_ring(chord, sim, 32, tag="qc")
        keys = [guid_for(f"qk-{i}") for i in range(60)]
        results = run_lookups(chord, sim, keys)
        queries = [q for _, q in results.values()]
        assert np.mean(queries) < 3 * np.log2(32)

    def test_lookup_self_key(self):
        sim, _, chord = make_network()
        ids = build_ring(chord, sim, 12, tag="sk")
        results = run_lookups(chord, sim, [ids[3]], starts=[ids[5]])
        owner, _ = results[ids[3]]
        assert owner == ids[3]

    def test_exclusion_skips_named_node(self):
        sim, _, chord = make_network()
        ids = build_ring(chord, sim, 12, tag="ex")
        target = sorted(chord.live_ids())[4]
        out = []
        chord.lookup(target, ids[0], lambda o, q: out.append(o),
                     exclude=(target,))
        sim.run(until=sim.now + 20.0)
        live = sorted(chord.live_ids())
        expected = live[(live.index(target) + 1) % len(live)]
        assert out == [expected]


class TestChurnSelfRepair:
    def test_ring_heals_after_mass_failure(self):
        sim, _, chord = make_network(interval=2.0)
        build_ring(chord, sim, 24, tag="mf")
        victims = chord.live_ids()[::4]
        for nid in victims:
            chord.crash(nid)
        sim.run(until=sim.now + 60.0)  # stabilization only, no oracle
        assert chord.ring_consistent()
        keys = [guid_for(f"mk-{i}") for i in range(40)]
        results = run_lookups(chord, sim, keys)
        ok = sum(1 for key in keys
                 if results[key][0] == chord.oracle_owner(key))
        assert ok >= 38

    def test_rejoin_after_crash(self):
        sim, _, chord = make_network()
        ids = build_ring(chord, sim, 16, tag="rj")
        victim = ids[5]
        chord.crash(victim)
        sim.run(until=sim.now + 20.0)
        chord.recover(victim, ids[0])
        sim.run(until=sim.now + 60.0)
        assert victim in chord.live_ids()
        assert chord.ring_consistent()
        results = run_lookups(chord, sim, [victim], starts=[ids[1]])
        assert results[victim][0] == victim

    def test_continuous_churn_self_repairs(self):
        sim, _, chord = make_network(seed=9, interval=2.0)
        ids = build_ring(chord, sim, 24, tag="cc")
        rng = np.random.default_rng(4)

        def contact():
            live = chord.live_ids()
            return live[int(rng.integers(0, len(live)))] if live else None

        def recover(nid):
            c = contact()
            if c is not None:
                chord.recover(nid, c, contacts=contact)

        churn = CrashRecoveryProcess(sim, rng, ids[1:],
                                     crash_fn=chord.crash, recover_fn=recover,
                                     mean_uptime=120.0, mean_downtime=30.0)
        sim.run(until=sim.now + 400.0)
        churn.stop()
        sim.run(until=sim.now + 60.0)
        assert chord.ring_consistent()

    def test_crashed_node_stops_serving(self):
        sim, _, chord = make_network()
        ids = build_ring(chord, sim, 8, tag="cs")
        chord.crash(ids[3])
        out = []
        chord.rpc.call(ids[0], ids[3], "ping", None,
                       lambda _: out.append("reply"), lambda: out.append("TO"))
        sim.run(until=sim.now + 5.0)
        assert out == ["TO"]
