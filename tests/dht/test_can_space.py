"""CAN geometry: zones, splits, abutment, distances (with hypothesis)."""

import pytest
from hypothesis import assume, given, strategies as st

from repro.dht.can.space import (
    Zone,
    as_point,
    point_distance_sq,
    unit_zone,
    zone_distance,
)

unit_coord = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def points(dims):
    return st.tuples(*([unit_coord] * dims))


class TestZoneBasics:
    def test_unit_zone(self):
        z = unit_zone(3)
        assert z.volume() == pytest.approx(1.0)
        assert z.contains((0.0, 0.5, 0.999))

    def test_half_open_membership(self):
        z = Zone((0.0, 0.0), (0.5, 0.5))
        assert z.contains((0.0, 0.0))
        assert not z.contains((0.5, 0.25))

    def test_space_boundary_closed_at_top(self):
        z = Zone((0.5, 0.5), (1.0, 1.0))
        assert z.contains((1.0, 1.0))
        inner = Zone((0.0, 0.0), (0.5, 0.5))
        assert not inner.contains((0.5, 0.5))

    def test_degenerate_zone_rejected(self):
        with pytest.raises(ValueError):
            Zone((0.0, 0.5), (1.0, 0.5))

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Zone((0.0,), (1.0, 1.0))

    def test_center_and_extent(self):
        z = Zone((0.0, 0.2), (0.5, 1.0))
        assert z.center() == (0.25, 0.6)
        assert z.extent(0) == 0.5
        assert z.extent(1) == pytest.approx(0.8)

    def test_as_point_validates(self):
        with pytest.raises(ValueError):
            as_point((0.5, 1.5))
        assert as_point([0.1, 0.2]) == (0.1, 0.2)


class TestSplit:
    def test_split_partitions_volume(self):
        z = unit_zone(2)
        lo, hi = z.split(0, 0.3)
        assert lo.volume() + hi.volume() == pytest.approx(z.volume())
        assert lo.hi[0] == 0.3 and hi.lo[0] == 0.3

    def test_split_outside_extent_rejected(self):
        z = Zone((0.0, 0.0), (0.5, 0.5))
        with pytest.raises(ValueError):
            z.split(0, 0.7)
        with pytest.raises(ValueError):
            z.split(0, 0.0)

    def test_split_halves_abut(self):
        z = unit_zone(3)
        lo, hi = z.split(1, 0.4)
        assert lo.abuts(hi)
        assert hi.abuts(lo)

    @given(at=st.floats(min_value=0.01, max_value=0.99), dim=st.integers(0, 2))
    def test_split_preserves_membership(self, at, dim):
        z = unit_zone(3)
        lo, hi = z.split(dim, at)
        probe = (0.5, 0.5, 0.5)
        assert lo.contains(probe) != hi.contains(probe) or not z.contains(probe)


class TestAbutment:
    def test_face_neighbors(self):
        a = Zone((0.0, 0.0), (0.5, 1.0))
        b = Zone((0.5, 0.0), (1.0, 1.0))
        assert a.abuts(b) and b.abuts(a)

    def test_corner_touch_is_not_abutment(self):
        a = Zone((0.0, 0.0), (0.5, 0.5))
        b = Zone((0.5, 0.5), (1.0, 1.0))
        assert not a.abuts(b)

    def test_partial_face_overlap_is_abutment(self):
        a = Zone((0.0, 0.0), (0.5, 1.0))
        b = Zone((0.5, 0.25), (1.0, 0.75))
        assert a.abuts(b)

    def test_disjoint_zones_not_abutting(self):
        a = Zone((0.0, 0.0), (0.25, 0.25))
        b = Zone((0.5, 0.5), (1.0, 1.0))
        assert not a.abuts(b)

    def test_edge_touch_in_3d_is_not_abutment(self):
        a = Zone((0.0, 0.0, 0.0), (0.5, 0.5, 1.0))
        b = Zone((0.5, 0.5, 0.0), (1.0, 1.0, 1.0))
        assert not a.abuts(b)

    @given(at1=st.floats(min_value=0.1, max_value=0.9),
           at2=st.floats(min_value=0.1, max_value=0.9))
    def test_recursive_splits_stay_consistent(self, at1, at2):
        z = unit_zone(2)
        left, right = z.split(0, at1)
        ll, lr = left.split(1, at2)
        # Both sub-halves of `left` touch `right` along dim 0.
        assert ll.abuts(right) and lr.abuts(right)
        assert ll.abuts(lr)


class TestDistances:
    def test_zone_distance_inside_is_zero(self):
        z = unit_zone(2)
        assert zone_distance(z, (0.3, 0.7)) == 0.0

    def test_zone_distance_outside(self):
        z = Zone((0.0, 0.0), (0.5, 0.5))
        assert zone_distance(z, (1.0, 0.25)) == pytest.approx(0.25)
        assert zone_distance(z, (1.0, 1.0)) == pytest.approx(0.5)

    def test_clamp(self):
        z = Zone((0.0, 0.0), (0.5, 0.5))
        assert z.clamp((0.9, 0.2)) == (0.5, 0.2)

    @given(p=points(3), q=points(3))
    def test_point_distance_symmetric(self, p, q):
        assert point_distance_sq(p, q) == point_distance_sq(q, p)

    @given(p=points(2), at=st.floats(min_value=0.1, max_value=0.9))
    def test_zone_distance_decreases_into_subzone(self, p, at):
        """Distance to the half containing p is 0; to the other >= 0."""
        z = unit_zone(2)
        lo, hi = z.split(0, at)
        inside = lo if lo.contains(p) else hi
        assume(inside.contains(p))
        assert zone_distance(inside, p) == 0.0

    @given(p=points(2))
    def test_zone_distance_matches_clamp(self, p):
        z = Zone((0.25, 0.25), (0.75, 0.75))
        clamped = z.clamp(p)
        assert zone_distance(z, p) == pytest.approx(point_distance_sq(p, clamped))
