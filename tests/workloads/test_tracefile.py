"""Trace-file save/load round-trips and format validation."""

import numpy as np
import pytest

from repro.workloads.jobs import generate_job_stream
from repro.workloads.nodes import generate_nodes
from repro.workloads.spec import WorkloadConfig
from repro.workloads.tracefile import TraceFormatError, load_trace, save_trace


@pytest.fixture
def stream():
    cfg = WorkloadConfig(n_nodes=20, n_jobs=50)
    rng = np.random.default_rng(0)
    nodes = generate_nodes(cfg, rng)
    return generate_job_stream(cfg, rng, [c for _, c in nodes])


class TestRoundTrip:
    def test_save_load_identity(self, tmp_path, stream):
        path = tmp_path / "trace.jsonl"
        assert save_trace(path, stream, comment="test trace") == 50
        loaded = load_trace(path)
        assert loaded == sorted(stream, key=lambda j: j.submit_time)

    def test_loaded_trace_drives_a_grid(self, tmp_path, stream):
        from repro.grid.job import Job
        from tests.conftest import make_small_grid

        path = tmp_path / "drive.jsonl"
        save_trace(path, stream[:10])
        grid = make_small_grid(n_nodes=10)
        clients = [grid.client(f"c{i}") for i in range(4)]
        for sj in load_trace(path):
            client = clients[sj.client_index]
            grid.submit_at(sj.submit_time, client,
                           Job(profile=sj.profile(client.node_id)))
        assert grid.run_until_done(max_time=100000)
        assert len(grid.metrics.completed()) == 10

    def test_comment_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "c.jsonl"
        path.write_text(
            "# header comment\n"
            "\n"
            '{"name": "j", "submit_time": 1.0, "client_index": 0, '
            '"requirements": [0, 0, 0], "work": 5.0}\n')
        assert len(load_trace(path)) == 1

    def test_load_sorts_by_submit_time(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text(
            '{"name": "late", "submit_time": 9.0, "client_index": 0, '
            '"requirements": [0], "work": 1.0}\n'
            '{"name": "early", "submit_time": 1.0, "client_index": 0, '
            '"requirements": [0], "work": 1.0}\n')
        assert [j.name for j in load_trace(path)] == ["early", "late"]


class TestValidation:
    def write_and_expect_error(self, tmp_path, body, match):
        path = tmp_path / "bad.jsonl"
        path.write_text(body)
        with pytest.raises(TraceFormatError, match=match):
            load_trace(path)

    def test_invalid_json(self, tmp_path):
        self.write_and_expect_error(tmp_path, "not json\n", "invalid JSON")

    def test_missing_field(self, tmp_path):
        self.write_and_expect_error(
            tmp_path, '{"name": "j", "submit_time": 1.0}\n', "missing field")

    def test_duplicate_names(self, tmp_path):
        row = ('{"name": "dup", "submit_time": 1.0, "client_index": 0, '
               '"requirements": [0], "work": 1.0}\n')
        self.write_and_expect_error(tmp_path, row + row, "duplicate")

    def test_nonpositive_work(self, tmp_path):
        self.write_and_expect_error(
            tmp_path,
            '{"name": "j", "submit_time": 1.0, "client_index": 0, '
            '"requirements": [0], "work": 0.0}\n',
            "work must be positive")

    def test_negative_submit_time(self, tmp_path):
        self.write_and_expect_error(
            tmp_path,
            '{"name": "j", "submit_time": -1.0, "client_index": 0, '
            '"requirements": [0], "work": 1.0}\n',
            "submit_time")

    def test_negative_requirement(self, tmp_path):
        self.write_and_expect_error(
            tmp_path,
            '{"name": "j", "submit_time": 1.0, "client_index": 0, '
            '"requirements": [-2.0], "work": 1.0}\n',
            "requirements")

    def test_error_reports_line_number(self, tmp_path):
        path = tmp_path / "line.jsonl"
        path.write_text("# ok\n{bad\n")
        with pytest.raises(TraceFormatError) as exc:
            load_trace(path)
        assert exc.value.line_no == 2
