"""Workload generators: populations, constraints, arrivals, feasibility."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.grid.resources import satisfies
from repro.workloads.jobs import generate_job_stream, mean_constraints
from repro.workloads.nodes import generate_nodes
from repro.workloads.spec import FIGURE2_SCENARIOS, WorkloadConfig


def gen(seed=0, **kwargs):
    cfg = WorkloadConfig(**kwargs)
    rng = np.random.default_rng(seed)
    nodes = generate_nodes(cfg, rng)
    jobs = generate_job_stream(cfg, rng, [c for _, c in nodes])
    return cfg, nodes, jobs


class TestNodeGeneration:
    def test_count_and_names_unique(self):
        _, nodes, _ = gen(n_nodes=100, n_jobs=0)
        assert len(nodes) == 100
        assert len({name for name, _ in nodes}) == 100

    def test_levels_in_range(self):
        _, nodes, _ = gen(n_nodes=200, n_jobs=0, node_mode="mixed")
        for _, cap in nodes:
            assert all(1.0 <= c <= 10.0 for c in cap)
            assert all(float(c).is_integer() for c in cap)

    def test_clustered_has_few_classes(self):
        _, nodes, _ = gen(n_nodes=200, n_jobs=0, node_mode="clustered",
                          node_classes=10)
        classes = {cap for _, cap in nodes}
        assert len(classes) <= 10

    def test_clustered_classes_evenly_sized(self):
        _, nodes, _ = gen(n_nodes=100, n_jobs=0, node_mode="clustered",
                          node_classes=10)
        from collections import Counter

        counts = Counter(cap for _, cap in nodes)
        # Classes may collide on identical capability draws, but each
        # drawn class holds a multiple of 10 nodes.
        assert all(c % 10 == 0 for c in counts.values())

    def test_mixed_is_diverse(self):
        _, nodes, _ = gen(n_nodes=200, n_jobs=0, node_mode="mixed")
        assert len({cap for _, cap in nodes}) > 50


class TestJobGeneration:
    def test_every_job_is_feasible(self):
        _, nodes, jobs = gen(n_nodes=50, n_jobs=300, job_mode="mixed",
                             constraint_prob=0.8)
        caps = [c for _, c in nodes]
        for job in jobs:
            assert any(satisfies(c, job.requirements) for c in caps), \
                job.requirements

    def test_constraint_density_lightly(self):
        _, _, jobs = gen(n_nodes=50, n_jobs=2000, constraint_prob=0.4,
                         job_mode="mixed")
        assert mean_constraints(jobs) == pytest.approx(1.2, abs=0.15)

    def test_constraint_density_heavily(self):
        _, _, jobs = gen(n_nodes=50, n_jobs=2000, constraint_prob=0.8,
                         job_mode="mixed")
        assert mean_constraints(jobs) == pytest.approx(2.4, abs=0.15)

    def test_clustered_jobs_form_classes(self):
        _, _, jobs = gen(n_nodes=50, n_jobs=500, job_mode="clustered",
                         job_classes=10)
        reqs = {j.requirements for j in jobs}
        assert len(reqs) <= 10

    def test_poisson_arrivals_monotone_with_right_rate(self):
        cfg, _, jobs = gen(n_nodes=50, n_jobs=3000, mean_interarrival=0.1)
        times = [j.submit_time for j in jobs]
        assert times == sorted(times)
        gaps = np.diff([0.0] + times)
        assert np.mean(gaps) == pytest.approx(0.1, rel=0.1)

    def test_work_distribution(self):
        cfg, _, jobs = gen(n_nodes=50, n_jobs=3000, mean_work=100.0)
        works = np.array([j.work for j in jobs])
        assert works.min() >= cfg.min_work
        assert np.mean(works) == pytest.approx(100.0, rel=0.1)

    def test_client_attribution_follows_weights(self):
        cfg, _, jobs = gen(n_nodes=50, n_jobs=4000,
                           client_rate_weights=(4.0, 2.0, 1.0, 1.0))
        counts = np.bincount([j.client_index for j in jobs], minlength=4)
        fracs = counts / counts.sum()
        assert fracs[0] == pytest.approx(0.5, abs=0.05)
        assert fracs[1] == pytest.approx(0.25, abs=0.05)

    def test_deterministic_given_seed(self):
        _, _, a = gen(seed=5, n_nodes=20, n_jobs=50)
        _, _, b = gen(seed=5, n_nodes=20, n_jobs=50)
        assert a == b

    def test_profile_construction(self):
        _, _, jobs = gen(n_nodes=20, n_jobs=5)
        p = jobs[0].profile(client_id=99)
        assert p.client_id == 99
        assert p.work == jobs[0].work


class TestWorkloadConfig:
    def test_scaled_keeps_offered_load(self):
        cfg = WorkloadConfig()
        small = cfg.scaled(0.25)
        assert small.n_nodes == 250
        assert small.n_jobs == 1250
        # offered load = mean_work / (interarrival * n_nodes) is invariant.
        base_load = cfg.mean_work / (cfg.mean_interarrival * cfg.n_nodes)
        small_load = small.mean_work / (small.mean_interarrival * small.n_nodes)
        assert small_load == pytest.approx(base_load)

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(node_mode="exotic")
        with pytest.raises(ValueError):
            WorkloadConfig(constraint_prob=1.5)
        with pytest.raises(ValueError):
            WorkloadConfig(n_clients=2)  # weights length mismatch
        with pytest.raises(ValueError):
            WorkloadConfig().scaled(0.0)

    def test_figure2_grid_covers_both_axes(self):
        assert set(FIGURE2_SCENARIOS) == {
            "clustered-light", "clustered-heavy", "mixed-light", "mixed-heavy"}
        assert FIGURE2_SCENARIOS["mixed-light"].constraint_prob == 0.4
        assert FIGURE2_SCENARIOS["clustered-heavy"].constraint_prob == 0.8

    @settings(max_examples=20, deadline=None)
    @given(prob=st.floats(min_value=0.0, max_value=1.0),
           seed=st.integers(0, 100))
    def test_feasibility_holds_for_any_constraint_prob(self, prob, seed):
        _, nodes, jobs = gen(seed=seed, n_nodes=10, n_jobs=30,
                             constraint_prob=prob, job_mode="mixed")
        caps = [c for _, c in nodes]
        for job in jobs:
            assert any(satisfies(c, job.requirements) for c in caps)
