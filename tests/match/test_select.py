"""Phase-2 selection machinery: policies, probe rounds, oracle mode."""

import numpy as np
import pytest

from repro.match.select import (
    CandidateSet,
    LeastLoadedPolicy,
    PowerOfDPolicy,
    ProbeRound,
    RandomPolicy,
    make_policy,
    oracle_select,
)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestCandidateSet:
    def test_defaults(self):
        cset = CandidateSet()
        assert not cset
        assert cset.hops == 0 and cset.pushes == 0
        assert cset.charge_probes and cset.tie_break == "random"

    def test_truthiness_tracks_candidates(self):
        assert CandidateSet(candidates=[1])
        assert not CandidateSet(hops=5)


class TestLeastLoadedPolicy:
    def test_probes_everyone(self, rng):
        assert LeastLoadedPolicy().probe_targets([3, 1, 2], rng) == [3, 1, 2]

    def test_ranks_by_load_then_search_order(self, rng):
        ranking = LeastLoadedPolicy().rank(
            [10, 20, 30], {10: 2, 20: 0, 30: 1}, (), rng)
        assert ranking == [20, 30, 10]

    def test_tie_break_first_is_search_order(self, rng):
        ranking = LeastLoadedPolicy().rank(
            [10, 20, 30], {10: 1, 20: 1, 30: 1}, (), rng, tie_break="first")
        assert ranking == [10, 20, 30]

    def test_tie_break_random_stays_within_winners(self, rng):
        picks = {LeastLoadedPolicy().rank(
            [10, 20, 30], {10: 0, 20: 0, 30: 9}, (), rng)[0]
            for _ in range(50)}
        assert picks == {10, 20}

    def test_failed_candidates_excluded(self, rng):
        ranking = LeastLoadedPolicy().rank(
            [10, 20, 30], {10: 0, 30: 1}, {20}, rng)
        assert 20 not in ranking
        assert ranking[0] == 10

    def test_unprobed_rank_last_as_fallbacks(self, rng):
        ranking = LeastLoadedPolicy().rank([10, 20, 30], {20: 5}, (), rng)
        assert ranking == [20, 10, 30]

    def test_all_failed_leaves_nothing(self, rng):
        assert LeastLoadedPolicy().rank([10, 20], {}, {10, 20}, rng) == []


class TestRandomPolicy:
    def test_never_probes(self, rng):
        assert RandomPolicy().probe_targets([1, 2, 3], rng) == []

    def test_rank_covers_all_candidates(self, rng):
        ranking = RandomPolicy().rank([10, 20, 30], {}, (), rng)
        assert sorted(ranking) == [10, 20, 30]

    def test_rank_excludes_failed(self, rng):
        ranking = RandomPolicy().rank([10, 20, 30], {}, {30}, rng)
        assert sorted(ranking) == [10, 20]

    def test_empty_pool(self, rng):
        assert RandomPolicy().rank([10], {}, {10}, rng) == []


class TestPowerOfDPolicy:
    def test_probes_exactly_d(self, rng):
        targets = PowerOfDPolicy(d=2).probe_targets(list(range(100, 120)), rng)
        assert len(targets) == 2
        assert all(t in range(100, 120) for t in targets)

    def test_small_pool_probes_all(self, rng):
        assert PowerOfDPolicy(d=3).probe_targets([1, 2], rng) == [1, 2]

    def test_ranks_probed_first_unprobed_fallback(self, rng):
        ranking = PowerOfDPolicy(d=2).rank(
            [10, 20, 30, 40], {20: 1, 30: 0}, (), rng)
        assert ranking[:2] == [30, 20]
        assert sorted(ranking[2:]) == [10, 40]

    def test_rejects_bad_d(self):
        with pytest.raises(ValueError):
            PowerOfDPolicy(d=0)


class TestMakePolicy:
    def test_registry_names(self):
        assert make_policy("least-loaded").name == "least-loaded"
        assert make_policy("random").name == "random"
        assert make_policy("power-of-d", probe_fanout=3).d == 3

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown selection policy"):
            make_policy("psychic")


class TestProbeRound:
    def test_completes_on_last_settlement(self):
        rnd = ProbeRound([1, 2, 3])
        assert rnd.reply(1, 4) is False
        assert rnd.timeout(2) is False
        assert rnd.reply(3, 0) is True
        assert rnd.loads == {1: 4, 3: 0}
        assert rnd.failed == {2}

    def test_single_target(self):
        rnd = ProbeRound([7])
        assert rnd.timeout(7) is True
        assert rnd.failed == {7} and rnd.loads == {}


class TestOracleSelect:
    def test_empty_candidate_set(self, rng, small_grid):
        ranking, probes = oracle_select(
            small_grid, CandidateSet(), LeastLoadedPolicy(), rng)
        assert ranking == [] and probes == 0

    def test_charge_probes_false_reports_zero(self, rng, small_grid):
        nid = small_grid.node_list[0].node_id
        cset = CandidateSet(candidates=[nid], charge_probes=False)
        ranking, probes = oracle_select(
            small_grid, cset, LeastLoadedPolicy(), rng)
        assert ranking == [nid] and probes == 0

    def test_probes_counted_when_charged(self, rng, small_grid):
        ids = [n.node_id for n in small_grid.node_list[:3]]
        cset = CandidateSet(candidates=ids)
        ranking, probes = oracle_select(
            small_grid, cset, LeastLoadedPolicy(), rng)
        assert probes == 3
        assert sorted(ranking) == sorted(ids)
