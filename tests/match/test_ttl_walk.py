"""TTL random walk: bounded cost, first-fit semantics, documented misses."""

from repro.grid.job import Job, JobProfile
from repro.grid.resources import satisfies

from tests.conftest import make_small_grid


def job_with(req, name="ttl-job"):
    return Job(profile=JobProfile(name=name, client_id=1, requirements=req,
                                  work=10.0))


class TestWalk:
    def test_ttl_autosizes_to_log(self):
        grid = make_small_grid("ttl-walk", n_nodes=32)
        assert grid.matchmaker.ttl == 2 * 5  # 2*log2(32)

    def test_explicit_ttl_respected(self):
        grid = make_small_grid("ttl-walk", n_nodes=32, ttl=3)
        assert grid.matchmaker.ttl == 3
        job = job_with((0.0, 0.0, 0.0))
        owner, _ = grid.matchmaker.find_owner(job)
        result = grid.matchmaker.find_run_node(owner, job)
        assert result.hops <= 3

    def test_unconstrained_job_found_immediately(self):
        grid = make_small_grid("ttl-walk", n_nodes=32)
        job = job_with((0.0, 0.0, 0.0))
        owner, _ = grid.matchmaker.find_owner(job)
        result = grid.matchmaker.find_run_node(owner, job)
        # An idle satisfying node is accepted on sight (first-fit).
        assert result.node is not None
        assert result.hops == 0  # owner itself was idle and satisfying

    def test_result_satisfies_requirements(self):
        grid = make_small_grid("ttl-walk", n_nodes=32)
        req = (4.0, 0.0, 0.0)
        job = job_with(req)
        owner, _ = grid.matchmaker.find_owner(job)
        result = grid.matchmaker.find_run_node(owner, job)
        if result.node is not None:
            assert satisfies(result.node.capability, req)

    def test_can_miss_feasible_resources(self):
        # The §4 criticism: a short walk over a large network misses rare
        # satisfying nodes even though they exist.
        grid = make_small_grid("ttl-walk", n_nodes=64, ttl=2, seed=3)
        # Find the rarest high capability present in the population.
        best_cpu = max(n.capability[0] for n in grid.node_list)
        rare_req = (best_cpu, 0.0, 0.0)
        holders = [n for n in grid.node_list
                   if satisfies(n.capability, rare_req)]
        assert holders  # feasible by construction
        misses = 0
        for i in range(30):
            job = job_with(rare_req, name=f"rare-{i}")
            owner, _ = grid.matchmaker.find_owner(job)
            if grid.matchmaker.find_run_node(owner, job).node is None:
                misses += 1
        assert misses > 0

    def test_prefers_idle_over_busy(self):
        grid = make_small_grid("ttl-walk", n_nodes=16, accept_queue=0)
        busy = grid.node_list[0]
        for i in range(5):
            busy.queue.append(job_with((0.0, 0.0, 0.0), name=f"b-{i}"))
        grid.on_queue_change(busy)  # sync load watchers (registry column)
        job = job_with((0.0, 0.0, 0.0), name="probe")
        result = grid.matchmaker.find_run_node(busy, job)
        assert result.node is not busy
