"""CAN matchmaker: coordinates, owner mapping, climb, candidates."""

import pytest

from repro.grid.job import Job, JobProfile
from repro.grid.resources import dominates, satisfies

from tests.conftest import make_small_grid


def job_with(req, name="can-job"):
    return Job(profile=JobProfile(name=name, client_id=1, requirements=req,
                                  work=10.0))


@pytest.fixture
def grid():
    return make_small_grid("can", n_nodes=40)


class TestCoordinates:
    def test_overlay_has_virtual_dimension(self, grid):
        assert grid.matchmaker.can.dims == grid.cfg.spec.dims + 1

    def test_node_points_are_normalized_capabilities(self, grid):
        for node in grid.node_list:
            can_node = grid.matchmaker.can.nodes[node.node_id]
            expected = grid.cfg.spec.normalize(node.capability)
            assert can_node.point[:-1] == expected
            assert 0.0 <= can_node.point[-1] <= 1.0

    def test_job_point_cached_per_job(self, grid):
        job = job_with((5.0, 0.0, 0.0))
        p1 = grid.matchmaker._job_point(job)
        p2 = grid.matchmaker._job_point(job)
        assert p1 is p2  # stable across re-matching / owner recovery

    def test_job_point_uses_requirements(self, grid):
        job = job_with((5.0, 0.0, 2.0))
        point = grid.matchmaker._job_point(job)
        assert point[:-1] == (0.5, 0.0, 0.2)

    def test_distinct_jobs_get_distinct_virtual_coords(self, grid):
        points = {grid.matchmaker._job_point(job_with((0.0, 0.0, 0.0),
                                                      name=f"vj-{i}"))[-1]
                  for i in range(20)}
        assert len(points) == 20


class TestOwnerMapping:
    def test_owner_owns_job_point(self, grid):
        job = job_with((4.0, 0.0, 0.0))
        owner, hops = grid.matchmaker.find_owner(job)
        can_owner = grid.matchmaker.can.nodes[owner.node_id]
        assert can_owner.owns_point(job.extra["can_point"])
        assert hops >= 0

    def test_identical_jobs_spread_across_owners(self, grid):
        owners = set()
        for i in range(25):
            job = job_with((0.0, 0.0, 0.0), name=f"spread-{i}")
            owner, _ = grid.matchmaker.find_owner(job)
            owners.add(owner.node_id)
        assert len(owners) > 3  # the virtual dimension breaks the cluster


class TestRunNodeSelection:
    def test_result_satisfies_requirements(self, grid):
        for i in range(20):
            req = (float(i % 9), 0.0, float((i * 3) % 8))
            job = job_with(req, name=f"sel-{i}")
            owner, _ = grid.matchmaker.find_owner(job)
            result = grid.matchmaker.find_run_node(owner, job)
            assert result.node is not None, req
            assert satisfies(result.node.capability, req)

    def test_climb_needed_when_owner_falls_short(self, grid):
        # A demanding requirement: the zone owner at that point may not
        # satisfy it, forcing a climb; the result must still satisfy.
        req = (9.0, 9.0, 0.0)
        caps = [n.capability for n in grid.node_list]
        if not any(satisfies(c, req) for c in caps):
            pytest.skip("population cannot satisfy the demanding job")
        job = job_with(req, name="demanding")
        owner, _ = grid.matchmaker.find_owner(job)
        result = grid.matchmaker.find_run_node(owner, job)
        assert result.node is not None
        assert satisfies(result.node.capability, req)

    def test_dominating_rule_respects_paper_wording(self):
        grid = make_small_grid("can", n_nodes=40,
                               candidate_rule="dominating")
        mm = grid.matchmaker
        req = (0.0, 0.0, 0.0)
        job = job_with(req, name="dom")
        owner, _ = mm.find_owner(job)
        anchor, _ = mm._climb_to_satisfying(mm.can.nodes[owner.node_id], req)
        anchor_cap = grid.nodes[anchor.node_id].capability
        for cand in mm._candidates(anchor, req):
            if cand is anchor:
                continue
            assert dominates(grid.nodes[cand.node_id].capability,
                             anchor_cap, strict=True)

    def test_probes_counted(self, grid):
        job = job_with((0.0, 0.0, 0.0))
        owner, _ = grid.matchmaker.find_owner(job)
        result = grid.matchmaker.find_run_node(owner, job)
        # One probe per candidate, and the chosen node is always probed.
        assert result.probes >= 1


class TestClimb:
    def test_climb_reports_hops(self, grid):
        mm = grid.matchmaker
        start = min(
            (mm.can.nodes[n.node_id] for n in grid.node_list),
            key=lambda cn: sum(cn.point[:-1]),
        )
        req = (8.0, 8.0, 0.0)
        caps = [n.capability for n in grid.node_list]
        if not any(satisfies(c, req) for c in caps):
            pytest.skip("unsatisfiable for this population")
        anchor, hops = mm._climb_to_satisfying(start, req)
        assert anchor is not None
        assert satisfies(grid.nodes[anchor.node_id].capability, req)
        if not satisfies(grid.nodes[start.node_id].capability, req):
            assert hops >= 1

    def test_zero_hops_when_start_satisfies(self, grid):
        mm = grid.matchmaker
        node = grid.node_list[0]
        start = mm.can.nodes[node.node_id]
        anchor, hops = mm._climb_to_satisfying(start, (0.0, 0.0, 0.0))
        assert anchor is start and hops == 0


class TestChurn:
    def test_crash_then_match_still_works(self, grid):
        for node in grid.node_list[::4]:
            grid.crash_node(node.node_id)
        job = job_with((3.0, 0.0, 0.0), name="post-churn")
        owner, _ = grid.matchmaker.find_owner(job)
        assert owner is not None and owner.alive
        result = grid.matchmaker.find_run_node(owner, job)
        assert result.node is not None and result.node.alive
        assert satisfies(result.node.capability, (3.0, 0.0, 0.0))

    def test_rejoin_gets_fresh_zone(self, grid):
        victim = grid.node_list[7]
        grid.crash_node(victim.node_id)
        grid.recover_node(victim.node_id)
        can_node = grid.matchmaker.can.nodes[victim.node_id]
        assert can_node.alive
        assert can_node.zone.contains(can_node.point)
        grid.matchmaker.can.check_invariants()
