"""Incremental RN-Tree maintenance must equal a from-scratch rebuild.

``on_crash``/``on_join`` splice single nodes in and out of the tree using
the parent-probe index and dirty-path aggregation.  After *any* churn
sequence, the (parents, children, subtree maxima) triple must be
bit-identical to throwing the tree away and rebuilding it from the
current Chord membership — that is the whole correctness contract of the
fast path.
"""

import numpy as np
import pytest

from repro.experiments.runner import build_population
from repro.grid.system import DesktopGrid, GridConfig
from repro.match import make_matchmaker
from repro.workloads.spec import WorkloadConfig


def _make_grid(n_nodes: int, seed: int) -> DesktopGrid:
    wl = WorkloadConfig(n_nodes=n_nodes, n_jobs=5, node_mode="mixed",
                        job_mode="mixed", mean_work=50.0,
                        mean_interarrival=5.0)
    nodes, _ = build_population(wl, seed=seed)
    return DesktopGrid(GridConfig(seed=seed), make_matchmaker("rn-tree"),
                       nodes)


def _snapshot(mm) -> dict:
    return {nid: (t.parent_id, tuple(t.children), t.subtree_max)
            for nid, t in mm.tree.items()}


class TestIncrementalEquivalence:
    @pytest.mark.parametrize("seed", [1, 2])
    def test_random_churn_matches_rebuild(self, seed):
        grid = _make_grid(90, seed)
        mm = grid.matchmaker
        rng = np.random.default_rng(seed + 100)
        ids = [n.node_id for n in grid.node_list]
        down: list[int] = []
        for step in range(120):
            if down and (rng.random() < 0.5 or len(down) > 60):
                grid.recover_node(down.pop(int(rng.integers(0, len(down)))))
            else:
                live = [i for i in ids if i not in down]
                victim = live[int(rng.integers(0, len(live)))]
                down.append(victim)
                grid.crash_node(victim)
            if step % 31 == 0:  # long incremental accumulation windows
                incremental = _snapshot(mm)
                mm._rebuild_tree()
                assert incremental == _snapshot(mm), f"diverged at {step}"
        incremental = _snapshot(mm)
        mm._rebuild_tree()
        assert incremental == _snapshot(mm)

    def test_probe_index_stays_consistent(self):
        grid = _make_grid(60, 3)
        mm = grid.matchmaker
        rng = np.random.default_rng(9)
        ids = [n.node_id for n in grid.node_list]
        down: list[int] = []
        for _ in range(60):
            if down and rng.random() < 0.5:
                grid.recover_node(down.pop())
            else:
                live = [i for i in ids if i not in down]
                victim = live[int(rng.integers(0, len(live)))]
                down.append(victim)
                grid.crash_node(victim)
        # The sorted probe list and the per-node reverse map must describe
        # the same set, and cover exactly the live tree members.
        flattened = sorted((pt, nid) for nid, pts in mm._probe_points.items()
                           for pt in pts)
        assert flattened == mm._probe_list
        assert set(mm._probe_points) == set(mm.tree)

    def test_deep_churn_then_total_recovery(self):
        grid = _make_grid(40, 5)
        mm = grid.matchmaker
        ids = [n.node_id for n in grid.node_list]
        for nid in ids[:-3]:  # crash down to a tiny ring (rebuild fallback)
            grid.crash_node(nid)
        for nid in ids[:-3]:
            grid.recover_node(nid)
        incremental = _snapshot(mm)
        mm._rebuild_tree()
        assert incremental == _snapshot(mm)
        assert len(mm.tree) == len(ids)
