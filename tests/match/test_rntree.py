"""RN-Tree: tree construction invariants, aggregation, extended search."""

import pytest

from repro.grid.job import Job, JobProfile
from repro.grid.resources import satisfies

from tests.conftest import make_small_grid


def job_with(req, name="rnt-job"):
    return Job(profile=JobProfile(name=name, client_id=1, requirements=req,
                                  work=10.0))


@pytest.fixture
def grid():
    return make_small_grid("rn-tree", n_nodes=40)


class TestTreeStructure:
    def test_single_root(self, grid):
        tree = grid.matchmaker.tree
        roots = [t for t in tree.values() if t.parent_id is None]
        assert len(roots) == 1
        # The root is successor(0) == the minimum live id.
        assert roots[0].node_id == min(tree)

    def test_parent_ids_strictly_decrease(self, grid):
        # This is what makes the structure a tree (no cycles).
        for tnode in grid.matchmaker.tree.values():
            if tnode.parent_id is not None:
                assert tnode.parent_id < tnode.node_id

    def test_children_lists_consistent(self, grid):
        tree = grid.matchmaker.tree
        for tnode in tree.values():
            for child_id in tnode.children:
                assert tree[child_id].parent_id == tnode.node_id

    def test_all_nodes_reach_root(self, grid):
        tree = grid.matchmaker.tree
        root_id = min(tree)
        for nid in tree:
            cur, steps = nid, 0
            while tree[cur].parent_id is not None:
                cur = tree[cur].parent_id
                steps += 1
                assert steps <= len(tree)
            assert cur == root_id

    def test_tree_depth_logarithmic(self, grid):
        tree = grid.matchmaker.tree

        def depth(nid):
            d = 0
            while tree[nid].parent_id is not None:
                nid = tree[nid].parent_id
                d += 1
            return d

        max_depth = max(depth(nid) for nid in tree)
        # Expected O(log N); allow a wide constant.
        assert max_depth <= 4 * max(1, (len(tree)).bit_length())


class TestAggregation:
    def test_subtree_max_dominates_every_descendant(self, grid):
        tree = grid.matchmaker.tree

        def descendants(nid):
            out = [nid]
            for child in tree[nid].children:
                out.extend(descendants(child))
            return out

        for nid, tnode in tree.items():
            for desc in descendants(nid):
                cap = grid.nodes[desc].capability
                assert all(m >= c for m, c in zip(tnode.subtree_max, cap))

    def test_root_aggregate_is_global_max(self, grid):
        tree = grid.matchmaker.tree
        root = tree[min(tree)]
        for d in range(3):
            global_max = max(n.capability[d] for n in grid.node_list)
            assert root.subtree_max[d] == global_max

    def test_aggregates_recomputed_after_crash(self, grid):
        # Crash the node holding the global max cpu; the root aggregate
        # must drop accordingly.
        best = max(grid.node_list, key=lambda n: n.capability[0])
        peak = best.capability[0]
        holders = [n for n in grid.node_list if n.capability[0] == peak]
        for node in holders:
            grid.crash_node(node.node_id)
        tree = grid.matchmaker.tree
        root = tree[min(tree)]
        remaining_max = max(n.capability[0] for n in grid.live_nodes())
        assert root.subtree_max[0] == remaining_max


class TestSearch:
    def test_finds_k_candidates_when_available(self, grid):
        mm = grid.matchmaker
        req = (0.0, 0.0, 0.0)
        candidates, hops = mm._extended_search(
            grid.node_list[0].node_id, req, mm.k)
        assert len(candidates) == mm.k
        assert hops > 0

    def test_all_candidates_satisfy(self, grid):
        mm = grid.matchmaker
        req = (6.0, 0.0, 5.0)
        candidates, _ = mm._extended_search(
            grid.node_list[0].node_id, req, mm.k)
        for nid in candidates:
            assert satisfies(grid.nodes[nid].capability, req)

    def test_unsatisfiable_returns_empty(self, grid):
        mm = grid.matchmaker
        caps = [n.capability for n in grid.node_list]
        if any(c == (10.0, 10.0, 10.0) for c in caps):
            pytest.skip("population happens to contain a maximal node")
        candidates, _ = mm._extended_search(
            grid.node_list[0].node_id, (10.0, 10.0, 10.0), mm.k)
        assert candidates == []

    def test_find_run_node_returns_satisfying_least_loaded(self, grid):
        mm = grid.matchmaker
        req = (5.0, 0.0, 0.0)
        result = mm.find_run_node(grid.node_list[0], job_with(req))
        assert result.node is not None
        assert satisfies(result.node.capability, req)
        assert result.probes >= 1
        assert result.hops >= 0

    def test_search_cost_scales_with_constraints(self, grid):
        # Heavier constraints prune more subtrees but must visit more of
        # the tree to find k candidates.
        mm = grid.matchmaker
        _, hops_easy = mm._extended_search(
            grid.node_list[0].node_id, (0.0, 0.0, 0.0), mm.k)
        _, hops_hard = mm._extended_search(
            grid.node_list[0].node_id, (9.0, 9.0, 0.0), mm.k)
        assert hops_easy <= hops_hard + len(grid.node_list)  # sanity ceiling


class TestOwnerMapping:
    def test_owner_is_chord_successor(self, grid):
        job = job_with((0.0, 0.0, 0.0), name="owner-map")
        owner, hops = grid.matchmaker.find_owner(job)
        assert owner is grid.nodes[
            grid.matchmaker.chord.successor_of(job.guid).node_id]
        assert hops >= 0

    def test_owner_mapping_survives_crash(self, grid):
        job = job_with((0.0, 0.0, 0.0), name="owner-map-2")
        owner, _ = grid.matchmaker.find_owner(job)
        grid.crash_node(owner.node_id)
        new_owner, _ = grid.matchmaker.find_owner(job)
        assert new_owner is not None
        assert new_owner.node_id != owner.node_id


class TestChurnMaintenance:
    def test_tree_rebuilt_after_crash(self, grid):
        victim = grid.node_list[5]
        grid.crash_node(victim.node_id)
        tree = grid.matchmaker.tree
        assert victim.node_id not in tree
        roots = [t for t in tree.values() if t.parent_id is None]
        assert len(roots) == 1

    def test_recovered_node_rejoins_tree(self, grid):
        victim = grid.node_list[5]
        grid.crash_node(victim.node_id)
        grid.recover_node(victim.node_id)
        assert victim.node_id in grid.matchmaker.tree
