"""Pushing CAN: load diffusion, push decisions, pathology repair."""

import math

import pytest

from repro.grid.job import Job, JobProfile
from repro.grid.resources import satisfies

from tests.conftest import make_small_grid


def job_with(req, name="push-job"):
    return Job(profile=JobProfile(name=name, client_id=1, requirements=req,
                                  work=10.0))


@pytest.fixture
def grid():
    return make_small_grid("can-push", n_nodes=40)


class TestLoadDiffusion:
    def test_estimates_exist_for_all_live_nodes(self, grid):
        mm = grid.matchmaker
        mm.refresh_load_info()
        for node in mm.can.live_nodes():
            ests = mm._up_load[node.node_id]
            assert len(ests) == grid.cfg.spec.dims

    def test_idle_system_estimates_near_zero(self, grid):
        mm = grid.matchmaker
        mm.refresh_load_info()
        for node in mm.can.live_nodes():
            for est in mm._up_load[node.node_id]:
                assert est == 0.0 or math.isinf(est)

    def test_estimates_see_loaded_neighbor(self, grid):
        mm = grid.matchmaker
        # Load one node heavily, then refresh: its below-neighbors' first
        # estimate along some dimension must reflect it.
        target = grid.node_list[0]
        for i in range(8):
            target.queue.append(job_with((0.0, 0.0, 0.0), name=f"ballast-{i}"))
        mm.refresh_load_info()
        can_target = mm.can.nodes[target.node_id]
        seen = False
        for nb in can_target.neighbors:
            for d in range(grid.cfg.spec.dims):
                if can_target in mm._above_neighbors(nb, d):
                    if mm._up_load[nb.node_id][d] > 0:
                        seen = True
        assert seen

    def test_top_boundary_has_infinite_estimate(self, grid):
        mm = grid.matchmaker
        mm.refresh_load_info()
        # Some node owns the top face along each dimension: no
        # above-neighbor there, so its estimate is +inf.
        infs = sum(1 for node in mm.can.live_nodes()
                   for est in mm._up_load[node.node_id] if math.isinf(est))
        assert infs > 0


class TestPushDecision:
    def test_no_push_on_idle_system(self, grid):
        job = job_with((0.0, 0.0, 0.0))
        owner, _ = grid.matchmaker.find_owner(job)
        result = grid.matchmaker.find_run_node(owner, job)
        assert result.pushes == 0

    def test_pushes_away_from_loaded_region(self):
        # A dense grid so the origin zone has a real upward region (with a
        # coarse tessellation the first above-neighbor may own the rest of
        # the space, making "up" exactly as loaded as "here").
        grid = make_small_grid("can-push", n_nodes=200)
        mm = grid.matchmaker
        job = job_with((0.0, 0.0, 0.0))
        # Pin the job to the origin corner: its owner is the bottom-most
        # zone, which is guaranteed to have upward neighbors to push into.
        job.extra["can_point"] = (0.0, 0.0, 0.0, 0.0)
        owner, _ = mm.find_owner(job)
        anchor_can = mm.can.nodes[owner.node_id]
        # Load the anchor and all its candidate neighbors.
        loaded = {anchor_can.node_id}
        for nb in anchor_can.neighbors:
            loaded.add(nb.node_id)
        for nid in loaded:
            node = grid.nodes[nid]
            for i in range(6):
                node.queue.append(job_with((0.0, 0.0, 0.0),
                                           name=f"bal-{nid}-{i}"))
        mm.refresh_load_info()
        mm.refresh_load_info()
        result = mm.find_run_node(owner, job)
        assert result.node is not None
        assert result.pushes >= 1
        assert result.node.queue_len < 6

    def test_pushed_job_still_satisfied(self, grid):
        # Pushing moves up in capability space, so satisfaction holds.
        req = (3.0, 0.0, 0.0)
        job = job_with(req)
        owner, _ = grid.matchmaker.find_owner(job)
        result = grid.matchmaker.find_run_node(owner, job)
        assert result.node is not None
        assert satisfies(result.node.capability, req)

    def test_push_capped(self):
        grid = make_small_grid("can-push", n_nodes=20, max_pushes=2)
        mm = grid.matchmaker
        # Saturate everything so pushing always looks attractive.
        for node in grid.node_list:
            for i in range(4):
                node.queue.append(job_with((0.0, 0.0, 0.0),
                                           name=f"sat-{node.name}-{i}"))
        mm.refresh_load_info()
        job = job_with((0.0, 0.0, 0.0), name="capped")
        owner, _ = mm.find_owner(job)
        result = mm.find_run_node(owner, job)
        assert result.pushes <= 2

    def test_bad_blend_rejected(self):
        from repro.match.can_push import PushingCANMatchmaker

        with pytest.raises(ValueError):
            PushingCANMatchmaker(blend=1.5)


class TestEndToEnd:
    def test_repairs_pathological_workload(self):
        """The paper's claim: pushing dramatically improves mixed/light."""
        from repro.experiments.runner import run_workload
        from repro.workloads.spec import FIGURE2_SCENARIOS

        wl = FIGURE2_SCENARIOS["mixed-light"].scaled(0.06)
        basic = run_workload(wl, "can", seed=3).summary
        push = run_workload(wl, "can-push", seed=3).summary
        assert push["wait_mean"] < basic["wait_mean"]
        assert push["pushes_mean"] > 0
