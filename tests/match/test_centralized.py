"""Centralized matchmaker: least-loaded selection, server mode."""

import pytest

from repro.grid.job import Job, JobProfile
from repro.match import make_matchmaker

from tests.conftest import make_small_grid


def job_with(req, name="j", client=1):
    return Job(profile=JobProfile(name=name, client_id=client,
                                  requirements=req, work=10.0))


class TestSelection:
    def test_picks_satisfying_node(self):
        grid = make_small_grid("centralized", n_nodes=20)
        from repro.grid.resources import satisfies

        req = (8.0, 0.0, 0.0)
        result = grid.matchmaker.find_run_node(grid.node_list[0], job_with(req))
        assert result.node is not None
        assert satisfies(result.node.capability, req)

    def test_picks_least_loaded(self):
        grid = make_small_grid("centralized", n_nodes=5)
        # Load every node except one.
        idle = grid.node_list[2]
        for node in grid.node_list:
            if node is not idle:
                node.queue.append(job_with((0.0, 0.0, 0.0)))
                grid.on_queue_change(node)
        result = grid.matchmaker.find_run_node(
            grid.node_list[0], job_with((0.0, 0.0, 0.0)))
        assert result.node is idle

    def test_zero_overlay_cost(self):
        grid = make_small_grid("centralized")
        result = grid.matchmaker.find_run_node(
            grid.node_list[0], job_with((0.0, 0.0, 0.0)))
        assert result.hops == 0 and result.probes == 0

    def test_impossible_requirement_returns_none(self):
        grid = make_small_grid("centralized")
        result = grid.matchmaker.find_run_node(
            grid.node_list[0], job_with((10.0, 10.0, 10.0)))
        # Only satisfiable if some node has max capability everywhere.
        if result.node is not None:
            assert result.node.capability == (10.0, 10.0, 10.0)

    def test_crashed_nodes_excluded(self):
        grid = make_small_grid("centralized", n_nodes=4)
        for node in grid.node_list[1:]:
            grid.crash_node(node.node_id)
        result = grid.matchmaker.find_run_node(
            grid.node_list[0], job_with((0.0, 0.0, 0.0)))
        assert result.node is grid.node_list[0]

    def test_ties_break_randomly_but_deterministically(self):
        grid = make_small_grid("centralized", n_nodes=10)
        choices = {grid.matchmaker.find_run_node(
            grid.node_list[0], job_with((0.0, 0.0, 0.0))).node.node_id
            for _ in range(30)}
        assert len(choices) > 1  # spread across equally idle nodes


class TestServerMode:
    def test_server_owns_every_job(self):
        grid = make_small_grid("centralized", n_nodes=8, server_mode=True)
        server = grid.matchmaker.server
        owner, hops = grid.matchmaker.find_owner(job_with((0.0, 0.0, 0.0)))
        assert owner is server
        assert hops == 1

    def test_server_never_runs_jobs(self):
        grid = make_small_grid("centralized", n_nodes=8, server_mode=True)
        server = grid.matchmaker.server
        for _ in range(20):
            result = grid.matchmaker.find_run_node(
                server, job_with((0.0, 0.0, 0.0)))
            assert result.node is not server

    def test_outage_blocks_matchmaking(self):
        grid = make_small_grid("centralized", n_nodes=8, server_mode=True)
        server = grid.matchmaker.server
        grid.partition_node(server.node_id)
        owner, _ = grid.matchmaker.find_owner(job_with((0.0, 0.0, 0.0)))
        assert owner is None
        result = grid.matchmaker.find_run_node(server, job_with((0.0, 0.0, 0.0)))
        assert result.node is None
        grid.heal_node(server.node_id)
        owner, _ = grid.matchmaker.find_owner(job_with((0.0, 0.0, 0.0)))
        assert owner is server

    def test_server_stays_out_of_pool_after_heal(self):
        grid = make_small_grid("centralized", n_nodes=8, server_mode=True)
        server = grid.matchmaker.server
        grid.partition_node(server.node_id)
        grid.heal_node(server.node_id)
        for _ in range(20):
            result = grid.matchmaker.find_run_node(
                server, job_with((0.0, 0.0, 0.0)))
            assert result.node is not server


class TestUnbound:
    def test_unbound_matchmaker_raises(self):
        mm = make_matchmaker("centralized")
        with pytest.raises(RuntimeError):
            mm.find_run_node(None, job_with((0.0, 0.0, 0.0)))

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_matchmaker("quantum")
