"""Span-tree reconstruction: retry chains, orphans, truncation, cells.

The unit tests drive :func:`build_timeline` with hand-written record
dicts (the exact shape a JSONL export produces); the end-to-end test
reconstructs a real RPC-mode run and checks that remote-node spans
landed under the submitting job's tree.
"""

from repro.experiments.runner import run_workload
from repro.telemetry import Telemetry, build_timeline, timeline_from_bus
from repro.telemetry.timeline import (
    render_anomalies,
    render_critical_path,
    render_job_timeline,
    render_phase_table,
    timeline_from_jsonl,
)
from repro.workloads.spec import FIGURE2_SCENARIOS


def _span(t, cat, span, parent, dur, trace, **detail):
    return {"t": t, "cat": cat, "span": span, "parent": parent,
            "dur": dur, "trace": trace, **detail}


#: One job with a retry chain: run node lost after the first dispatch,
#: matched again, then completed.  Spans appear in end order (children
#: before their parents), as the bus emits them.
RETRY_TRACE = [
    {"t": 0.0, "cat": "submit", "trace": 11, "job": "j-0"},
    _span(0.1, "job.insert", 2, 1, 0.4, 11, node="n0"),
    _span(0.5, "job.match", 3, 1, 0.2, 11),
    _span(0.7, "job.dispatch", 4, 1, 0.1, 11, run_node="n3"),
    _span(0.8, "job.queue", 5, 1, 2.0, 11, status="run-node-lost"),
    _span(3.0, "job.match", 6, 1, 0.3, 11, retry=True),
    _span(3.3, "job.dispatch", 7, 1, 0.1, 11, run_node="n5"),
    _span(3.4, "job.queue", 8, 1, 0.5, 11),
    _span(3.9, "job.run", 9, 1, 6.1, 11, node="n5"),
    _span(0.0, "job.lifecycle", 1, None, 10.0, 11,
          job="j-0", state="completed"),
]


class TestReconstruction:
    def test_retry_chain_accounted(self):
        tl = build_timeline(RETRY_TRACE)
        assert len(tl.jobs) == 1
        jt = tl.jobs[0]
        assert jt.name == "j-0"
        assert jt.terminal == "completed"
        assert jt.retries == 1
        totals = jt.phase_totals()
        # Both match and dispatch rounds are summed, not last-wins.
        assert totals["match"] == 0.2 + 0.3
        assert totals["dispatch"] == 0.1 + 0.1
        assert totals["queue"] == 2.0 + 0.5
        assert jt.makespan == 10.0
        assert tl.healthy

    def test_span_tree_shape(self):
        tl = build_timeline(RETRY_TRACE)
        jt = tl.jobs[0]
        life = jt.lifecycle
        assert [r is life for r in jt.roots] == [True]
        assert [c.category for c in life.children] == [
            "job.insert", "job.match", "job.dispatch", "job.queue",
            "job.match", "job.dispatch", "job.queue", "job.run"]
        assert jt.critical_path()[-1].category == "job.run"
        assert jt.events and jt.events[0]["cat"] == "submit"

    def test_orphan_span_flagged(self):
        records = RETRY_TRACE + [
            _span(4.0, "rpc.server", 20, 999, 0.0, 11, node="n9")]
        tl = build_timeline(records)
        jt = tl.jobs[0]
        assert len(jt.orphans) == 1
        assert jt.orphans[0].category == "rpc.server"
        assert jt.orphans[0].orphan
        assert not tl.healthy
        assert tl.anomalies()["orphan_spans"] == 1

    def test_cross_trace_parent_is_orphan(self):
        # A span whose parent id exists but belongs to another trace must
        # not be grafted into the wrong tree.
        records = RETRY_TRACE + [
            _span(0.0, "job.lifecycle", 30, None, 1.0, 12,
                  job="j-1", state="completed"),
            _span(0.2, "job.run", 31, 1, 0.5, 12),  # parent 1 is trace 11
        ]
        tl = build_timeline(records)
        other = tl.job(12)
        assert other is not None
        assert len(other.orphans) == 1

    def test_ring_truncation_reported(self):
        records = RETRY_TRACE + [
            {"t": 99.0, "cat": "trace.overflow", "dropped": 7, "kept": 3}]
        tl = build_timeline(records, dropped=0)
        assert tl.truncated == 7
        assert not tl.healthy
        tl2 = build_timeline(RETRY_TRACE, dropped=4)
        assert tl2.truncated == 4

    def test_job_without_terminal_event(self):
        # Lifecycle span never closed -> evicted/open at export.
        records = [r for r in RETRY_TRACE if r.get("span") != 1]
        tl = build_timeline(records)
        a = tl.anomalies()
        assert a["jobs_without_terminal"] == 1
        assert not tl.healthy

    def test_cell_segmentation_splits_repeated_guids(self):
        # Two sweep cells with the same seed produce the same job GUID;
        # the grid.bind marker keeps them apart.
        bind = {"t": 0.0, "cat": "grid.bind", "nodes": 4, "matchmaker": "x"}
        records = [bind, *RETRY_TRACE, bind, *RETRY_TRACE]
        tl = build_timeline(records)
        assert tl.cells == 2
        assert len(tl.jobs) == 2
        assert {j.cell for j in tl.jobs} == {1, 2}
        a, b = tl.job(11, cell=1), tl.job(11, cell=2)
        assert a is not b
        assert a.retries == b.retries == 1
        assert tl.healthy

    def test_untraced_spans_counted(self):
        records = RETRY_TRACE + [
            {"t": 1.0, "cat": "dht.lookup", "span": 40, "dur": 0.0}]
        tl = build_timeline(records)
        assert tl.untraced_spans == 1
        assert tl.healthy  # untraced is informational, not a failure

    def test_phase_percentiles_over_jobs(self):
        bind = {"t": 0.0, "cat": "grid.bind"}
        records = [bind, *RETRY_TRACE, bind, *RETRY_TRACE]
        tl = build_timeline(records)
        stats = tl.phase_percentiles(percentiles=(50,))
        assert stats["match"]["p50"] == 0.5
        assert stats["match"]["mean"] == 0.5
        assert stats["run"]["p50"] == 6.1

    def test_slowest_ordering(self):
        fast = [
            _span(0.0, "job.lifecycle", 50, None, 1.0, 77,
                  job="quick", state="completed"),
        ]
        tl = build_timeline(RETRY_TRACE + fast)
        assert [j.trace_id for j in tl.slowest(2)] == [11, 77]


class TestRendering:
    def test_renderers_are_total(self):
        tl = build_timeline(RETRY_TRACE)
        jt = tl.jobs[0]
        gantt = render_job_timeline(jt)
        assert "job j-0" in gantt and "[completed]" in gantt
        assert "retries=1" in gantt
        assert "@n5" in gantt
        assert "status=run-node-lost" in gantt
        assert "job.run" in render_critical_path(jt)
        table = render_phase_table(tl)
        assert "1 traced jobs" in table
        assert "verdict: clean" in render_anomalies(tl)

    def test_degraded_verdict(self):
        tl = build_timeline(RETRY_TRACE, dropped=3)
        assert "DEGRADED" in render_anomalies(tl)


class TestEndToEnd:
    def test_rpc_run_reconstructs_with_remote_spans(self, tmp_path):
        wl = FIGURE2_SCENARIOS["clustered-light"].scaled(0.04)
        tel = Telemetry(sample_interval=10.0)
        out = run_workload(wl, "rn-tree", seed=7, telemetry=tel,
                           grid_overrides={"probe_mode": "rpc",
                                           "dispatch_ack": True})
        assert out.finished
        tl = timeline_from_bus(tel.bus)
        assert tl.healthy
        assert tl.cells == 1
        assert len(tl.jobs) == out.summary["jobs_done"]
        # Every job reached a terminal state and has a full phase chain.
        jt = tl.slowest(1)[0]
        assert jt.terminal is not None
        cats = {s.category for s in jt.spans}
        assert {"job.lifecycle", "job.insert", "job.match", "job.queue",
                "job.run"} <= cats
        # Remote rpc.server spans are parented under the probe round that
        # caused them — the cross-node propagation at work.
        probed = [j for j in tl.jobs for s in j.spans
                  if s.category == "job.probe"]
        assert probed, "rpc probe mode should emit probe spans"
        some_probe = next(s for j in probed for s in j.spans
                          if s.category == "job.probe" and s.children)
        assert any(c.category == "rpc.server" for c in some_probe.children)
        # JSONL round trip reconstructs the same trees.
        path = tmp_path / "trace.jsonl"
        tel.export_jsonl(path)
        tl2 = timeline_from_jsonl(path)
        assert len(tl2.jobs) == len(tl.jobs)
        assert tl2.healthy
        a = tl.slowest(3)
        b = tl2.slowest(3)
        assert [(j.trace_id, j.makespan, j.retries) for j in a] \
            == [(j.trace_id, j.makespan, j.retries) for j in b]
