"""MetricsRegistry: counters, gauges, histogram binning and percentiles."""

import math

import pytest

from repro.telemetry import Histogram, MetricsRegistry


class TestCounterGauge:
    def test_counter_inc(self):
        reg = MetricsRegistry()
        reg.counter("net.sent.assign").inc()
        reg.counter("net.sent.assign").inc(4)
        assert reg.counter("net.sent.assign").value == 5

    def test_gauge_tracks_high_water_mark(self):
        reg = MetricsRegistry()
        g = reg.gauge("grid.queue_depth")
        g.set(3)
        g.set(9)
        g.set(2)
        assert g.value == 2
        assert g.hwm == 9

    def test_type_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")


class TestHistogramBinning:
    def test_small_ints_bin_exactly(self):
        h = Histogram("hops")
        for v in (0, 1, 1, 2, 3, 3, 3):
            h.observe(v)
        labels = dict(h.nonzero_buckets())
        assert labels == {"0": 1, "1": 2, "2": 1, "3": 3}

    def test_overflow_bucket(self):
        h = Histogram("hops", edges=(1, 2, 4))
        h.observe(3)
        h.observe(100)
        labels = dict(h.nonzero_buckets())
        assert labels["2..4"] == 1
        assert labels["> 4"] == 1
        assert h.max == 100

    def test_mean_min_max(self):
        h = Histogram("w")
        for v in (2.0, 4.0, 6.0):
            h.observe(v)
        assert h.mean == 4.0
        assert h.min == 2.0
        assert h.max == 6.0

    def test_percentiles_from_buckets(self):
        h = Histogram("hops")
        for v in [1] * 90 + [5] * 9 + [40]:
            h.observe(v)
        assert h.percentile(50) == 1
        assert h.percentile(95) == 5
        # p100 capped at the observed max, not the bucket edge (48).
        assert h.percentile(100) == 40

    def test_empty_histogram_is_nan(self):
        h = Histogram("empty")
        assert math.isnan(h.mean)
        assert math.isnan(h.percentile(50))
        assert h.nonzero_buckets() == []


class TestSnapshot:
    def test_nested_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("a.count").inc(2)
        reg.gauge("b.depth").set(7)
        reg.histogram("c.hops").observe(3)
        snap = reg.snapshot()
        assert snap["counters"] == {"a.count": 2}
        assert snap["gauges"]["b.depth"] == {"value": 7.0, "hwm": 7.0}
        hist = snap["histograms"]["c.hops"]
        assert hist["count"] == 1
        assert hist["p50"] == 3

    def test_prefix_views(self):
        reg = MetricsRegistry()
        reg.counter("net.sent.assign")
        reg.counter("net.sent.result")
        reg.counter("rpc.calls")
        assert reg.names("net.sent.") == ["net.sent.assign", "net.sent.result"]
        assert len(reg.counters("net.")) == 2
