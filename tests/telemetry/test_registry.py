"""MetricsRegistry: counters, gauges, histogram binning and percentiles."""

import math

import pytest

from repro.telemetry import Histogram, MetricsRegistry


class TestCounterGauge:
    def test_counter_inc(self):
        reg = MetricsRegistry()
        reg.counter("net.sent.assign").inc()
        reg.counter("net.sent.assign").inc(4)
        assert reg.counter("net.sent.assign").value == 5

    def test_gauge_tracks_high_water_mark(self):
        reg = MetricsRegistry()
        g = reg.gauge("grid.queue_depth")
        g.set(3)
        g.set(9)
        g.set(2)
        assert g.value == 2
        assert g.hwm == 9

    def test_type_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")


class TestHistogramBinning:
    def test_small_ints_bin_exactly(self):
        h = Histogram("hops")
        for v in (0, 1, 1, 2, 3, 3, 3):
            h.observe(v)
        labels = dict(h.nonzero_buckets())
        assert labels == {"0": 1, "1": 2, "2": 1, "3": 3}

    def test_overflow_bucket(self):
        h = Histogram("hops", edges=(1, 2, 4))
        h.observe(3)
        h.observe(100)
        labels = dict(h.nonzero_buckets())
        assert labels["2..4"] == 1
        assert labels["> 4"] == 1
        assert h.max == 100

    def test_mean_min_max(self):
        h = Histogram("w")
        for v in (2.0, 4.0, 6.0):
            h.observe(v)
        assert h.mean == 4.0
        assert h.min == 2.0
        assert h.max == 6.0

    def test_percentiles_from_buckets(self):
        h = Histogram("hops")
        for v in [1] * 90 + [5] * 9 + [40]:
            h.observe(v)
        assert h.percentile(50) == 1
        assert h.percentile(95) == 5
        # p100 capped at the observed max, not the bucket edge (48).
        assert h.percentile(100) == 40

    def test_empty_histogram_is_nan(self):
        h = Histogram("empty")
        assert math.isnan(h.mean)
        assert math.isnan(h.percentile(50))
        assert h.nonzero_buckets() == []


class TestSnapshot:
    def test_nested_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("a.count").inc(2)
        reg.gauge("b.depth").set(7)
        reg.histogram("c.hops").observe(3)
        snap = reg.snapshot()
        assert snap["counters"] == {"a.count": 2}
        assert snap["gauges"]["b.depth"] == {"value": 7.0, "hwm": 7.0}
        hist = snap["histograms"]["c.hops"]
        assert hist["count"] == 1
        assert hist["p50"] == 3

    def test_prefix_views(self):
        reg = MetricsRegistry()
        reg.counter("net.sent.assign")
        reg.counter("net.sent.result")
        reg.counter("rpc.calls")
        assert reg.names("net.sent.") == ["net.sent.assign", "net.sent.result"]
        assert len(reg.counters("net.")) == 2


class TestStateMerge:
    """Cross-process transfer: state() -> merge() must be lossless."""

    def test_counters_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("net.sent").inc(3)
        b.counter("net.sent").inc(4)
        b.counter("net.lost").inc()
        a.merge(b.state())
        assert a.counter("net.sent").value == 7
        assert a.counter("net.lost").value == 1

    def test_gauges_last_write_wins_hwm_folds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("depth").set(9)
        a.gauge("depth").set(2)
        b.gauge("depth").set(5)
        a.merge(b.state())
        assert a.gauge("depth").value == 5
        assert a.gauge("depth").hwm == 9

    def test_histogram_merge_equals_single_registry(self):
        xs = [0, 1, 1, 2, 5, 9, 40, 200, 3, 3]
        one = MetricsRegistry()
        for x in xs:
            one.histogram("hops").observe(x)
        parts = [MetricsRegistry() for _ in range(3)]
        for i, x in enumerate(xs):
            parts[i % 3].histogram("hops").observe(x)
        merged = MetricsRegistry()
        for part in parts:
            merged.merge(part.state())
        h1, h2 = one.histogram("hops"), merged.histogram("hops")
        assert h2.buckets == h1.buckets
        assert h2.count == h1.count
        assert (h2.min, h2.max) == (h1.min, h1.max)
        for q in (50, 95, 99, 100):
            assert h2.percentile(q) == h1.percentile(q)

    def test_histogram_edge_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", edges=(1, 2, 4)).observe(1)
        b.histogram("h", edges=(1, 2, 8)).observe(1)
        with pytest.raises(ValueError):
            a.merge(b.state())

    def test_direct_histogram_merge_edge_mismatch_raises(self):
        with pytest.raises(ValueError):
            Histogram("h", edges=(1, 2)).merge(Histogram("h", edges=(1, 3)))

    def test_state_round_trips_through_pickle(self):
        import pickle

        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(7)
        state = pickle.loads(pickle.dumps(reg.state()))
        fresh = MetricsRegistry()
        fresh.merge(state)
        assert fresh.state() == reg.state()

    def test_unknown_kind_raises(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.merge({"x": ("thermometer", 98.6)})
