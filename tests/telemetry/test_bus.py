"""TelemetryBus: ring buffer, spans, category filtering, JSONL round-trip."""

import json

from repro.telemetry import NULL_BUS, TelemetryBus, load_jsonl


class TestRingBuffer:
    def test_unbounded_by_default(self):
        bus = TelemetryBus()
        for i in range(1000):
            bus.record(float(i), "x", i=i)
        assert len(bus) == 1000
        assert bus.dropped == 0

    def test_maxlen_caps_memory(self):
        bus = TelemetryBus(maxlen=100)
        for i in range(250):
            bus.record(float(i), "x", i=i)
        assert len(bus) == 100
        assert bus.accepted == 250
        assert bus.dropped == 150
        # Oldest records evicted first.
        assert bus.records[0].time == 150.0
        assert bus.records[-1].time == 249.0

    def test_clear_resets_dropped(self):
        bus = TelemetryBus(maxlen=2)
        for i in range(5):
            bus.record(float(i), "x")
        bus.clear()
        assert len(bus) == 0
        assert bus.dropped == 0


class TestSpans:
    def test_begin_end_produces_duration(self):
        bus = TelemetryBus()
        span = bus.begin_span(1.0, "job.run", job="j1")
        assert len(bus) == 0  # spans land at end time (append-only stream)
        bus.end_span(span, 4.5, node="n1")
        (rec,) = bus.records
        assert rec.category == "job.run"
        assert rec.time == 1.0  # stamped at start; appended at end
        assert rec.duration == 3.5
        assert rec.detail["job"] == "j1"
        assert rec.detail["node"] == "n1"

    def test_parentage(self):
        bus = TelemetryBus()
        root = bus.begin_span(0.0, "job.lifecycle")
        child = bus.begin_span(1.0, "job.match", parent=root)
        bus.end_span(child, 2.0)
        bus.end_span(root, 3.0)
        child_rec, root_rec = bus.records
        assert child_rec.parent_id == root_rec.span_id
        assert root_rec.parent_id is None

    def test_end_span_none_is_noop(self):
        bus = TelemetryBus()
        bus.end_span(None, 5.0)
        assert len(bus) == 0

    def test_one_shot_span(self):
        bus = TelemetryBus()
        bus.span(2.0, "dht.lookup", duration=0.0, proto="chord", hops=3)
        (rec,) = bus.records
        assert rec.detail["hops"] == 3
        assert rec.span_id is not None


class TestFiltering:
    def test_category_filter_applies_to_spans(self):
        bus = TelemetryBus(categories=["job.run"])
        assert bus.wants("job.run")
        assert not bus.wants("net.msg")
        bus.record(0.0, "net.msg", kind="assign")
        span = bus.begin_span(0.0, "job.queue")
        assert span is None
        bus.end_span(span, 1.0)
        kept = bus.begin_span(1.0, "job.run")
        bus.end_span(kept, 2.0)
        assert [r.category for r in bus.records] == ["job.run"]

    def test_null_bus_is_disabled_noop(self):
        NULL_BUS.record(0.0, "x")
        assert NULL_BUS.begin_span(0.0, "x") is None
        assert len(NULL_BUS) == 0
        assert not NULL_BUS.enabled


class TestJsonl:
    def test_round_trip(self, tmp_path):
        bus = TelemetryBus()
        bus.record(1.0, "submit", job="j1", attempt=1)
        span = bus.begin_span(1.0, "job.run", job="j1")
        bus.end_span(span, 3.0, node="n3")
        path = tmp_path / "trace.jsonl"
        bus.export_jsonl(path, extra_records=[{"t": 3.0, "cat": "trailer"}])
        rows = load_jsonl(path)
        assert len(rows) == 3
        assert rows[0]["cat"] == "submit"
        assert rows[0]["job"] == "j1"
        assert rows[1]["dur"] == 2.0
        assert rows[2]["cat"] == "trailer"
        # Every line is standalone JSON.
        for line in path.read_text().splitlines():
            json.loads(line)
