"""Kernel event-loop profiling: opt-in, accurate, non-perturbing."""

import math

from repro.sim.kernel import Simulator
from repro.telemetry import KernelProfile


def _burn(sim, results, depth):
    results.append(sim.now)
    if depth > 0:
        sim.schedule(1.0, _burn, sim, results, depth - 1)


class TestKernelProfile:
    def test_default_is_unprofiled(self):
        sim = Simulator()
        assert sim.profile is None

    def test_profiled_run_matches_bare_run(self):
        bare, prof = [], []
        s1 = Simulator()
        s1.schedule(0.0, _burn, s1, bare, 10)
        s1.run()
        s2 = Simulator()
        s2.profile = KernelProfile()
        s2.schedule(0.0, _burn, s2, prof, 10)
        s2.run()
        assert bare == prof
        assert s1.now == s2.now

    def test_profile_accounting(self):
        sim = Simulator()
        sim.profile = KernelProfile()
        out = []
        sim.schedule(0.0, _burn, sim, out, 5)
        n = sim.run()
        assert sim.profile.events == n == 6
        assert sim.profile.runs == 1
        assert sim.profile.wall_seconds > 0
        assert sim.profile.events_per_second > 0
        assert sim.profile.heap_peak >= 1
        # The callback site is named after the function.
        (site, calls, cum), = sim.profile.top_sites()
        assert "_burn" in site
        assert calls == 6
        assert cum >= 0

    def test_profile_accumulates_across_runs(self):
        profile = KernelProfile()
        for _ in range(3):
            sim = Simulator()
            sim.profile = profile
            out = []
            sim.schedule(0.0, _burn, sim, out, 2)
            sim.run()
        assert profile.runs == 3
        assert profile.events == 9

    def test_empty_profile_summary(self):
        profile = KernelProfile()
        s = profile.summary()
        assert s["events"] == 0
        assert math.isnan(profile.events_per_second)
