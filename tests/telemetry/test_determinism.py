"""Telemetry must observe the simulation without perturbing it.

The contract: every instrumentation point only *reads* state, draws no
RNG, and adds nothing to virtual time, so a run with the full stack
attached is bit-identical to a bare run with the same seed.
"""

import numpy as np

from repro.experiments.runner import run_workload
from repro.telemetry import Telemetry, load_jsonl
from repro.workloads.spec import FIGURE2_SCENARIOS

SCALE = 0.04


def _outcome(telemetry=None, profile_kernel=False):
    wl = FIGURE2_SCENARIOS["clustered-light"].scaled(SCALE)
    return run_workload(wl, "rn-tree", seed=7, telemetry=telemetry)


class TestDeterminism:
    def test_telemetry_does_not_perturb_results(self):
        bare = _outcome()
        tel = Telemetry(profile_kernel=True, sample_interval=10.0)
        traced = _outcome(telemetry=tel)
        np.testing.assert_array_equal(bare.wait_times, traced.wait_times)
        np.testing.assert_array_equal(bare.match_costs, traced.match_costs)
        assert bare.node_exec_counts == traced.node_exec_counts
        assert bare.sim_time == traced.sim_time
        assert bare.summary == traced.summary

    def test_two_traced_runs_identical(self):
        t1, t2 = (Telemetry(sample_interval=10.0) for _ in range(2))
        a = _outcome(telemetry=t1)
        b = _outcome(telemetry=t2)
        np.testing.assert_array_equal(a.wait_times, b.wait_times)
        assert [r.to_dict() for r in t1.bus.records] \
            == [r.to_dict() for r in t2.bus.records]
        assert t1.metrics.snapshot() == t2.metrics.snapshot()

    def test_traced_rpc_run_bit_identical_to_bare(self):
        """Causal propagation rides real probe/dispatch RPCs — the mode
        with the most instrumentation sites must still be untouched."""
        wl = FIGURE2_SCENARIOS["clustered-light"].scaled(SCALE)
        overrides = {"heartbeats_enabled": True, "probe_mode": "rpc",
                     "dispatch_ack": True}
        bare = run_workload(wl, "rn-tree", seed=7,
                            grid_overrides=overrides)
        tel = Telemetry(sample_interval=10.0)
        traced = run_workload(wl, "rn-tree", seed=7, telemetry=tel,
                              grid_overrides=overrides)
        np.testing.assert_array_equal(bare.wait_times, traced.wait_times)
        np.testing.assert_array_equal(bare.match_costs, traced.match_costs)
        assert bare.node_exec_counts == traced.node_exec_counts
        assert bare.sim_time == traced.sim_time
        assert bare.summary == traced.summary
        # ... and the trace actually contains the remote-node spans the
        # propagation exists for.
        cats = {r.category for r in tel.bus.records}
        assert {"job.probe", "job.dispatch", "rpc.server"} <= cats


class TestEndToEnd:
    def test_jsonl_export_has_spans_and_trailers(self, tmp_path):
        tel = Telemetry(profile_kernel=True, sample_interval=10.0)
        out = _outcome(telemetry=tel)
        assert out.finished
        path = tmp_path / "trace.jsonl"
        tel.export_jsonl(path)
        rows = load_jsonl(path)
        cats = {r["cat"] for r in rows}
        # Span categories from every layer of the stack.
        assert {"job.lifecycle", "job.insert", "job.match", "job.queue",
                "job.run", "dht.lookup", "net.msg",
                "load.sample"} <= cats
        # DHT-hop spans carry protocol and hop count.
        lookup = next(r for r in rows if r["cat"] == "dht.lookup")
        assert lookup["proto"] == "chord"
        assert lookup["hops"] >= 0
        # Lifecycle spans have durations and parent the inner spans.
        job = next(r for r in rows if r["cat"] == "job.lifecycle")
        inner = next(r for r in rows if r["cat"] == "job.run")
        assert job["dur"] > 0
        assert inner["parent"] is not None
        # Trailers: one metrics snapshot and one kernel profile.
        assert cats >= {"metrics.snapshot", "kernel.profile"}
        profile = next(r for r in rows if r["cat"] == "kernel.profile")
        assert profile["events"] > 0
        assert profile["events_per_sec"] > 0

    def test_match_and_queue_metrics_populated(self):
        tel = Telemetry(sample_interval=10.0)
        _outcome(telemetry=tel)
        hops = tel.metrics.histogram("match.rn-tree.search_hops")
        assert hops.count > 0
        assert tel.metrics.counter("jobs.submitted").value > 0
        assert tel.metrics.counter("jobs.completed").value > 0
        depth = tel.metrics.gauge("grid.queue_depth.total")
        assert depth.hwm >= 0
