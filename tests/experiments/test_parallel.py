"""The parallel sweep engine: fan-out determinism and telemetry fold-back.

The load-bearing claim is that ``jobs=N`` produces *bit-identical*
per-cell outcomes to the serial loop — every cell re-derives its RNG from
(seed, stream-name), so process boundaries cannot change a single draw.
"""

import logging
import math

import pytest

from repro.experiments.parallel import call, map_cells, resolve_jobs
from repro.experiments.runner import (
    aggregate_outcomes,
    run_replicates,
    run_workload,
)
from repro.workloads.spec import FIGURE2_SCENARIOS

#: Tiny but non-trivial: ~30 nodes / 150 jobs per cell.
WL = FIGURE2_SCENARIOS["mixed-light"].scaled(0.03)


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs() == 5

    def test_zero_means_all_cores(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(0) >= 1

    def test_garbage_env_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        assert resolve_jobs() == 1


class TestMapCells:
    def test_preserves_submission_order(self):
        out = map_cells(_square, [call(i) for i in range(8)], jobs=1)
        assert out == [i * i for i in range(8)]

    def test_parallel_preserves_submission_order(self):
        out = map_cells(_square, [call(i) for i in range(8)], jobs=4)
        assert out == [i * i for i in range(8)]

    def test_parallel_cells_bit_identical_to_serial(self):
        calls = [call(WL, "rn-tree", seed=s) for s in (1, 2, 3, 4)]
        serial = map_cells(run_workload, calls, jobs=1)
        fanned = map_cells(run_workload, calls, jobs=4)
        for a, b in zip(serial, fanned):
            assert a.summary == b.summary
            assert a.finished == b.finished
            assert a.events == b.events

    def test_run_replicates_jobs_matches_serial(self):
        a = run_replicates(WL, "centralized", seeds=(1, 2), jobs=1)
        b = run_replicates(WL, "centralized", seeds=(1, 2), jobs=2)
        assert a == b

    def test_worker_bus_traces_merge_identical_to_serial(self):
        """The acceptance bar for parallel tracing: the merged span
        stream — ids, parents, trace ids, order — is byte-for-byte the
        stream a single serial bus would have recorded."""
        from repro.telemetry.core import Telemetry

        t_serial, t_fan = Telemetry(), Telemetry()
        overrides = {"probe_mode": "rpc", "dispatch_ack": True}
        calls = [call(WL, "rn-tree", seed=s, grid_overrides=overrides)
                 for s in (1, 2, 3)]
        map_cells(run_workload, calls, jobs=1, telemetry=t_serial)
        map_cells(run_workload, calls, jobs=3, telemetry=t_fan)
        a = [r.to_dict() for r in t_serial.bus.records]
        b = [r.to_dict() for r in t_fan.bus.records]
        assert a == b
        assert t_serial.bus.dropped == t_fan.bus.dropped
        # Sanity: the stream is non-trivial and has cross-node spans.
        cats = {r["cat"] for r in a}
        assert {"grid.bind", "job.lifecycle", "rpc.server"} <= cats

    def test_worker_metrics_fold_into_parent(self):
        from repro.telemetry.core import Telemetry

        t_serial, t_fan = Telemetry(), Telemetry()
        calls = [call(WL, "centralized", seed=s) for s in (1, 2)]
        map_cells(run_workload, calls, jobs=1, telemetry=t_serial)
        map_cells(run_workload, calls, jobs=2, telemetry=t_fan)
        a, b = t_serial.metrics.state(), t_fan.metrics.state()
        assert set(a) == set(b)
        for name in a:
            if a[name][0] == "histogram":
                # buckets/count/min/max exact; the running total is a
                # float sum whose grouping differs across workers.
                assert a[name][1:4] == b[name][1:4]
                assert a[name][4] == pytest.approx(b[name][4])
                assert a[name][5:] == b[name][5:]
            else:
                assert a[name] == b[name]


class TestAggregation:
    def test_truncated_replicates_warn_and_flag(self, caplog):
        outcomes = [run_workload(WL, "rn-tree", seed=1, max_time=30.0)]
        assert not outcomes[0].finished
        with caplog.at_level(logging.WARNING, logger="repro.experiments"):
            agg = aggregate_outcomes(outcomes)
        assert agg["all_finished"] == 0.0
        assert any("hit max_time" in r.getMessage() for r in caplog.records)

    def test_drained_replicates_do_not_warn(self, caplog):
        outcomes = [run_workload(WL, "centralized", seed=1)]
        assert outcomes[0].finished
        with caplog.at_level(logging.WARNING, logger="repro.experiments"):
            agg = aggregate_outcomes(outcomes)
        assert agg["all_finished"] == 1.0
        assert not caplog.records
        assert not math.isnan(agg["wait_mean"])


def _square(x):
    return x * x
