"""Tuning sweeps and the message-level protocol experiment (small scale)."""

from repro.experiments import (
    run_heartbeat_sweep,
    run_latency_sensitivity,
    run_protocol_experiment,
    run_walk_length_sweep,
)
from repro.experiments.protocol import ProtocolConfig


class TestHeartbeatSweep:
    def test_traffic_and_recovery_tradeoff(self):
        result = run_heartbeat_sweep(intervals=(2.0, 10.0),
                                     n_nodes=50, n_jobs=100)
        checks = result.shape_checks()
        assert checks["dense_heartbeats_cost_messages"]
        assert checks["all_settings_complete"]
        assert "Heartbeat cadence" in result.report()

    def test_messages_scale_inversely_with_interval(self):
        result = run_heartbeat_sweep(intervals=(2.0, 4.0, 8.0),
                                     n_nodes=40, n_jobs=80)
        msgs = [result.by_interval[i]["msgs_per_job"] for i in (2.0, 4.0, 8.0)]
        assert msgs[0] > msgs[1] > msgs[2]


class TestWalkLengthSweep:
    def test_cost_monotone_in_length(self):
        result = run_walk_length_sweep(lengths=(0, 4), scale=0.08)
        assert result.by_len[4]["match_cost_mean"] > \
            result.by_len[0]["match_cost_mean"]
        assert result.shape_checks()["walk_does_not_destroy_balance"]


class TestLatencySensitivity:
    def test_queueing_dominates(self):
        result = run_latency_sensitivity(latencies_ms=(10.0, 200.0),
                                         scale=0.08)
        assert result.shape_checks()["queueing_dominates_latency"]
        assert "latency" in result.report().lower()


class TestProtocolExperiment:
    def test_tradeoff_shapes(self):
        result = run_protocol_experiment(
            ProtocolConfig(n_nodes=24, intervals=(2.0, 16.0), measure=200.0))
        checks = result.shape_checks()
        assert checks["traffic_scales_with_interval"]
        assert checks["fast_repair_reliable"]
        assert checks["fast_repair_ring_converges"]
        assert "maintenance traffic" in result.report()
